//! Native Rust code generation: compiles a verified [`PregelProgram`] into
//! the source of a monomorphized [`gm_pregel::VertexProgram`] implementation.
//!
//! Where `gm-interp` executes the PIR by dispatching on tagged
//! [`crate::value::Value`]s per expression node, this backend emits a Rust
//! module with:
//!
//! * a `VertexValue` struct holding one **native field per node property**
//!   (`i64`/`f64`/`bool`/`u32`), plus the in-neighbor array;
//! * a `Msg` enum with one **monomorphized variant per message tag** and
//!   native payload fields — no `Arc<[Value]>`, no tag byte at runtime;
//! * vertex/master state functions with all expressions **inlined at their
//!   native types**, combiners and aggregator folds included;
//! * the pullability contract (`pull_supported`/`pull_mode`/`pull_message`)
//!   baked in from the compiler's per-state verdicts, so `Schedule::Pull`
//!   and `Schedule::Auto` keep working natively;
//! * a `run` entry with the same signature semantics as
//!   `gm_interp::run_compiled`, returning the same `CompiledOutcome`.
//!
//! **Bit-exactness contract.** The generated program must be bit-for-bit
//! identical to the interpreter: same values, same per-superstep structural
//! metrics (active vertices, messages, bytes), same checkpoints-and-resume
//! behavior, same `G.PickRandom()` stream. Every arithmetic choice below
//! mirrors `gm_core::value::{apply_bin, apply_un, apply_reduce}` and
//! `Value::coerce` exactly: `i64` arithmetic wraps, mixed numeric widens to
//! `f64`, `f64` comparisons are IEEE (false on NaN), `f64 as i64` saturates,
//! min/max on node ids are `u32` min/max. Where the interpreter's dynamic
//! typing would *panic* (e.g. `%` on floats), this backend instead rejects
//! the program at generation time with a [`RustgenError`].
//!
//! The output is deterministic: identical programs emit identical source,
//! which lets golden-file tests diff against checked-in modules and lets
//! `gmc run --backend native` match user-compiled programs against the
//! built-in registry by source equality.

use crate::ast::{AssignOp, BinOp, Expr, ExprKind, UnOp};
use crate::pir::{
    MInstr, PregelProgram, RecvAction, RecvHandler, State, Transition, VInstr, VertexKernel, EDGE,
    IN_NBRS_TAG, PAYLOAD_PREFIX, SELF,
};
use crate::pullability::{self, Pullability};
use crate::types::Ty;
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// A program this backend cannot compile faithfully (the interpreter would
/// panic at runtime on the same construct, or the construct has no native
/// monomorphization).
#[derive(Debug, Clone)]
pub struct RustgenError {
    /// Human-readable reason.
    pub message: String,
}

impl fmt::Display for RustgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rustgen: {}", self.message)
    }
}

impl Error for RustgenError {}

type R<T> = Result<T, RustgenError>;

fn err<T>(message: impl Into<String>) -> R<T> {
    Err(RustgenError {
        message: message.into(),
    })
}

/// Native runtime representation of a Green-Marl value. `Int`/`Long` share
/// `i64` and `Float`/`Double` share `f64`, exactly like [`crate::value::Value`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Repr {
    I64,
    F64,
    Bool,
    Node,
    Edge,
}

impl Repr {
    fn of_ty(ty: &Ty) -> R<Repr> {
        Ok(match ty {
            Ty::Int | Ty::Long => Repr::I64,
            Ty::Float | Ty::Double => Repr::F64,
            Ty::Bool => Repr::Bool,
            Ty::Node => Repr::Node,
            Ty::Edge => Repr::Edge,
            other => return err(format!("type {other} has no native representation")),
        })
    }

    fn rust(self) -> &'static str {
        match self {
            Repr::I64 => "i64",
            Repr::F64 => "f64",
            Repr::Bool => "bool",
            Repr::Node | Repr::Edge => "u32",
        }
    }

    /// The native rendering of [`crate::value::Value::default_for`].
    fn default_expr(self) -> &'static str {
        match self {
            Repr::I64 => "0i64",
            Repr::F64 => "0.0f64",
            Repr::Bool => "false",
            Repr::Node => "u32::MAX",
            Repr::Edge => "0u32",
        }
    }

    fn is_numeric(self) -> bool {
        matches!(self, Repr::I64 | Repr::F64)
    }

    fn name(self) -> &'static str {
        match self {
            Repr::I64 => "Int",
            Repr::F64 => "Double",
            Repr::Bool => "Bool",
            Repr::Node => "Node",
            Repr::Edge => "Edge",
        }
    }
}

/// A rendered expression together with its native representation. The
/// rendering is always safe to embed as an operand (atoms stay bare,
/// everything composite is parenthesized).
#[derive(Clone, Debug)]
struct TE {
    s: String,
    repr: Repr,
}

impl TE {
    fn new(s: impl Into<String>, repr: Repr) -> TE {
        TE { s: s.into(), repr }
    }
}

fn fmt_i64(v: i64) -> String {
    if v == i64::MIN {
        "i64::MIN".to_owned()
    } else if v == i64::MAX {
        "i64::MAX".to_owned()
    } else if v < 0 {
        format!("({v}i64)")
    } else {
        format!("{v}i64")
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "f64::NAN".to_owned()
    } else if v == f64::INFINITY {
        "f64::INFINITY".to_owned()
    } else if v == f64::NEG_INFINITY {
        "f64::NEG_INFINITY".to_owned()
    } else if v < 0.0 || (v == 0.0 && v.is_sign_negative()) {
        // `{:?}` round-trips f64 exactly.
        format!("({v:?}f64)")
    } else {
        format!("{v:?}f64")
    }
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "static", "struct", "super", "trait", "true", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// Deterministically turns an arbitrary Green-Marl identifier into a unique
/// valid Rust identifier within one namespace (`used`).
fn sanitize(name: &str, used: &mut HashSet<String>) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() || s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        s.insert(0, 'x');
    }
    if KEYWORDS.contains(&s.as_str()) {
        s.push('_');
    }
    let mut candidate = s.clone();
    let mut n = 2usize;
    while !used.insert(candidate.clone()) {
        candidate = format!("{s}_{n}");
        n += 1;
    }
    candidate
}

/// CamelCase type name from a procedure name.
fn camel(name: &str) -> String {
    let mut out = String::new();
    let mut upper = true;
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            if upper {
                out.extend(c.to_uppercase());
                upper = false;
            } else {
                out.push(c);
            }
        } else {
            upper = true;
        }
    }
    if out.is_empty() || out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'P');
    }
    out
}

/// An indentation-tracking output buffer.
struct Buf {
    s: String,
    ind: usize,
}

impl Buf {
    fn new(ind: usize) -> Buf {
        Buf {
            s: String::new(),
            ind,
        }
    }

    fn line(&mut self, text: &str) {
        if text.is_empty() {
            self.s.push('\n');
            return;
        }
        for _ in 0..self.ind {
            self.s.push_str("    ");
        }
        self.s.push_str(text);
        self.s.push('\n');
    }

    fn open(&mut self, text: &str) {
        self.line(text);
        self.ind += 1;
    }

    fn close(&mut self, text: &str) {
        self.ind -= 1;
        self.line(text);
    }

    fn push_buf(&mut self, other: &Buf) {
        self.s.push_str(&other.s);
    }
}

/// One kernel's single neighbor-broadcast site (mirrors the interpreter's
/// `CSendSite`), recorded so `pull_message` can re-emit the payload.
enum SendSite<'a> {
    Tagged(u8, &'a [Expr]),
    InNbrsId,
}

/// The generator: name tables plus state collected while emitting kernels
/// (broadcast-global order, aggregate representations, helper usage).
struct Gen<'a> {
    p: &'a PregelProgram,
    struct_name: String,
    /// Per node property (aligned with `p.node_props`): field name, repr.
    prop_fields: Vec<(String, Repr)>,
    prop_by_name: HashMap<String, usize>,
    /// Per edge property (aligned with `p.edge_props`): field name, repr.
    edge_fields: Vec<(String, Repr)>,
    edge_by_name: HashMap<String, usize>,
    /// Per global (aligned with `p.globals`): field name (sans `g_`), repr.
    global_fields: Vec<(String, Repr)>,
    global_by_name: HashMap<String, usize>,
    /// Per message tag: variant name, fields (sanitized name, repr).
    msg_variants: Vec<(String, Vec<(String, Repr)>)>,
    ret_repr: Option<Repr>,
    pullable: Vec<Pullability>,
    /// Per state: broadcast-global indices in first-use order (vertex
    /// states only), filled while emitting kernels.
    reads_globals: Vec<Vec<usize>>,
    /// Aggregate key → the repr every vertex-side `ReduceGlobal` pushes.
    agg_repr: HashMap<String, Repr>,
    /// Per state: neighbor-broadcast sites found in the body.
    sites: Vec<Vec<SendSite<'a>>>,
    uses_div: bool,
    uses_mod: bool,
    temp: usize,
}

impl<'a> Gen<'a> {
    fn new(p: &'a PregelProgram) -> R<Gen<'a>> {
        let mut prop_used: HashSet<String> = HashSet::new();
        prop_used.insert("in_nbrs".to_owned());
        let mut prop_fields = Vec::new();
        let mut prop_by_name = HashMap::new();
        for (i, (name, ty)) in p.node_props.iter().enumerate() {
            let repr = Repr::of_ty(ty).map_err(|e| RustgenError {
                message: format!("node property `{name}`: {}", e.message),
            })?;
            prop_fields.push((sanitize(name, &mut prop_used), repr));
            prop_by_name.insert(name.clone(), i);
        }

        let mut edge_used = HashSet::new();
        let mut edge_fields = Vec::new();
        let mut edge_by_name = HashMap::new();
        for (i, (name, ty)) in p.edge_props.iter().enumerate() {
            let repr = Repr::of_ty(ty).map_err(|e| RustgenError {
                message: format!("edge property `{name}`: {}", e.message),
            })?;
            edge_fields.push((sanitize(name, &mut edge_used), repr));
            edge_by_name.insert(name.clone(), i);
        }

        let mut global_used = HashSet::new();
        let mut global_fields = Vec::new();
        let mut global_by_name = HashMap::new();
        for (i, (name, ty)) in p.globals.iter().enumerate() {
            let repr = Repr::of_ty(ty).map_err(|e| RustgenError {
                message: format!("global `{name}`: {}", e.message),
            })?;
            global_fields.push((sanitize(name, &mut global_used), repr));
            global_by_name.insert(name.clone(), i);
        }
        for (name, _) in &p.scalar_params {
            if !global_by_name.contains_key(name) {
                return err(format!("scalar parameter `{name}` is not a master global"));
            }
        }

        let mut msg_variants = Vec::new();
        for m in &p.messages {
            let mut field_used = HashSet::new();
            let mut fields = Vec::new();
            for (fname, fty) in &m.fields {
                let repr = Repr::of_ty(fty).map_err(|e| RustgenError {
                    message: format!("message {} field `{fname}`: {}", m.tag, e.message),
                })?;
                fields.push((sanitize(fname, &mut field_used), repr));
            }
            msg_variants.push((format!("M{}", m.tag), fields));
        }

        let ret_repr = match &p.ret {
            Some(ty) => Some(Repr::of_ty(ty)?),
            None => None,
        };

        let pullable = if p.pullable.len() == p.states.len() {
            p.pullable.clone()
        } else {
            pullability::analyze(p)
        };

        Ok(Gen {
            struct_name: camel(&p.name),
            prop_fields,
            prop_by_name,
            edge_fields,
            edge_by_name,
            global_fields,
            global_by_name,
            msg_variants,
            ret_repr,
            pullable,
            reads_globals: vec![Vec::new(); p.states.len()],
            agg_repr: HashMap::new(),
            sites: (0..p.states.len()).map(|_| Vec::new()).collect(),
            uses_div: false,
            uses_mod: false,
            temp: 0,
            p,
        })
    }

    fn fresh_temp(&mut self) -> String {
        self.temp += 1;
        format!("v{}", self.temp)
    }

    fn global_te(&self, idx: usize) -> TE {
        let (f, repr) = &self.global_fields[idx];
        TE::new(format!("self.g_{f}"), *repr)
    }

    // ---- shared operation rendering (mirrors gm_core::value) ----

    /// Renders `Value::coerce(te, ty)` when the target repr comes from a
    /// declared type. Int↔float convert; everything else must match.
    fn coerce_te(&self, te: TE, target: Repr) -> R<TE> {
        match (te.repr, target) {
            (a, b) if a == b => Ok(te),
            (Repr::I64, Repr::F64) => Ok(TE::new(format!("({} as f64)", te.s), Repr::F64)),
            (Repr::F64, Repr::I64) => Ok(TE::new(format!("({} as i64)", te.s), Repr::I64)),
            (a, b) => err(format!(
                "cannot coerce {} to {} (the interpreter would panic here)",
                a.name(),
                b.name()
            )),
        }
    }

    /// Renders `apply_bin(op, l, r)`.
    fn bin_te(&mut self, op: BinOp, l: TE, r: TE) -> R<TE> {
        use BinOp::*;
        match op {
            Add | Sub | Mul | Div => {
                if !l.repr.is_numeric() || !r.repr.is_numeric() {
                    return err(format!(
                        "arithmetic on {}/{} (the interpreter would panic here)",
                        l.repr.name(),
                        r.repr.name()
                    ));
                }
                if l.repr == Repr::I64 && r.repr == Repr::I64 {
                    Ok(match op {
                        Add => TE::new(format!("{}.wrapping_add({})", l.s, r.s), Repr::I64),
                        Sub => TE::new(format!("{}.wrapping_sub({})", l.s, r.s), Repr::I64),
                        Mul => TE::new(format!("{}.wrapping_mul({})", l.s, r.s), Repr::I64),
                        Div => {
                            self.uses_div = true;
                            TE::new(format!("gm_div_i64({}, {})", l.s, r.s), Repr::I64)
                        }
                        _ => unreachable!(),
                    })
                } else {
                    let l = self.coerce_te(l, Repr::F64)?;
                    let r = self.coerce_te(r, Repr::F64)?;
                    let sym = match op {
                        Add => "+",
                        Sub => "-",
                        Mul => "*",
                        Div => "/",
                        _ => unreachable!(),
                    };
                    Ok(TE::new(format!("({} {} {})", l.s, sym, r.s), Repr::F64))
                }
            }
            Mod => {
                if l.repr == Repr::I64 && r.repr == Repr::I64 {
                    self.uses_mod = true;
                    Ok(TE::new(format!("gm_mod_i64({}, {})", l.s, r.s), Repr::I64))
                } else {
                    err("% on non-integers (the interpreter would panic here)")
                }
            }
            Eq | Ne => {
                let sym = if op == Eq { "==" } else { "!=" };
                let same_native = l.repr == r.repr
                    && matches!(l.repr, Repr::I64 | Repr::Bool | Repr::Node | Repr::Edge);
                if same_native {
                    Ok(TE::new(format!("({} {} {})", l.s, sym, r.s), Repr::Bool))
                } else if l.repr.is_numeric() && r.repr.is_numeric() {
                    let l = self.coerce_te(l, Repr::F64)?;
                    let r = self.coerce_te(r, Repr::F64)?;
                    Ok(TE::new(format!("({} {} {})", l.s, sym, r.s), Repr::Bool))
                } else {
                    err(format!(
                        "equality between {}/{} (the interpreter would panic here)",
                        l.repr.name(),
                        r.repr.name()
                    ))
                }
            }
            Lt | Le | Gt | Ge => {
                let sym = match op {
                    Lt => "<",
                    Le => "<=",
                    Gt => ">",
                    Ge => ">=",
                    _ => unreachable!(),
                };
                if l.repr == Repr::I64 && r.repr == Repr::I64 {
                    Ok(TE::new(format!("({} {} {})", l.s, sym, r.s), Repr::Bool))
                } else if l.repr.is_numeric() && r.repr.is_numeric() {
                    // Native f64 comparisons are false on NaN, matching the
                    // interpreter's partial_cmp-None-is-false rule.
                    let l = self.coerce_te(l, Repr::F64)?;
                    let r = self.coerce_te(r, Repr::F64)?;
                    Ok(TE::new(format!("({} {} {})", l.s, sym, r.s), Repr::Bool))
                } else {
                    err(format!(
                        "ordering between {}/{} (the interpreter would panic here)",
                        l.repr.name(),
                        r.repr.name()
                    ))
                }
            }
            And | Or => {
                if l.repr != Repr::Bool || r.repr != Repr::Bool {
                    return err("logical operator on non-booleans");
                }
                let sym = if op == And { "&&" } else { "||" };
                Ok(TE::new(format!("({} {} {})", l.s, sym, r.s), Repr::Bool))
            }
        }
    }

    /// Renders `apply_un(op, v)`.
    fn un_te(&self, op: UnOp, v: TE) -> R<TE> {
        match (op, v.repr) {
            (UnOp::Neg, Repr::I64 | Repr::F64) => Ok(TE::new(format!("(-({}))", v.s), v.repr)),
            (UnOp::Not, Repr::Bool) => Ok(TE::new(format!("(!({}))", v.s), Repr::Bool)),
            (UnOp::Abs, Repr::I64 | Repr::F64) => Ok(TE::new(format!("{}.abs()", v.s), v.repr)),
            (op, r) => err(format!("unary {op:?} not applicable to {}", r.name())),
        }
    }

    /// Renders `apply_reduce(op, cur, inc)` where both sides share `repr`
    /// (call sites coerce `inc` first, exactly like the interpreter's
    /// coerce-then-reduce order for typed targets, and like `as_f64`
    /// widening for mixed aggregate folds).
    fn reduce_expr(&self, op: AssignOp, cur: &str, inc: &str, repr: Repr) -> R<String> {
        Ok(match op {
            AssignOp::Assign | AssignOp::Defer => inc.to_owned(),
            AssignOp::Add => match repr {
                Repr::I64 => format!("{cur}.wrapping_add({inc})"),
                Repr::F64 => format!("({cur} + {inc})"),
                r => return err(format!("+= on {}", r.name())),
            },
            AssignOp::Sub => match repr {
                Repr::I64 => format!("{cur}.wrapping_sub({inc})"),
                Repr::F64 => format!("({cur} - {inc})"),
                r => return err(format!("-= on {}", r.name())),
            },
            AssignOp::Mul => match repr {
                Repr::I64 => format!("{cur}.wrapping_mul({inc})"),
                Repr::F64 => format!("({cur} * {inc})"),
                r => return err(format!("*= on {}", r.name())),
            },
            AssignOp::Min => match repr {
                Repr::I64 | Repr::F64 | Repr::Node => format!("{cur}.min({inc})"),
                r => return err(format!("min= on {}", r.name())),
            },
            AssignOp::Max => match repr {
                Repr::I64 | Repr::F64 | Repr::Node => format!("{cur}.max({inc})"),
                r => return err(format!("max= on {}", r.name())),
            },
            AssignOp::And => match repr {
                Repr::Bool => format!("({cur} && {inc})"),
                r => return err(format!("&= on {}", r.name())),
            },
            AssignOp::Or => match repr {
                Repr::Bool => format!("({cur} || {inc})"),
                r => return err(format!("|= on {}", r.name())),
            },
        })
    }

    /// Renders `to_g(v)` — wrapping a native value as a `GlobalValue`.
    fn gv_wrap(&self, te: &TE) -> String {
        match te.repr {
            Repr::I64 => format!("GlobalValue::Int({})", te.s),
            Repr::F64 => format!("GlobalValue::Double({})", te.s),
            Repr::Bool => format!("GlobalValue::Bool({})", te.s),
            Repr::Node => format!("GlobalValue::Node({})", te.s),
            Repr::Edge => format!("GlobalValue::Int(({}) as i64)", te.s),
        }
    }

    /// Renders a native value wrapped back into a tagged [`Value`].
    fn value_wrap(&self, expr: &str, repr: Repr) -> String {
        match repr {
            Repr::I64 => format!("Value::Int({expr})"),
            Repr::F64 => format!("Value::Double({expr})"),
            Repr::Bool => format!("Value::Bool({expr})"),
            Repr::Node => format!("Value::Node({expr})"),
            Repr::Edge => format!("Value::Edge({expr})"),
        }
    }

    fn reduce_op_name(&self, op: AssignOp) -> R<&'static str> {
        Ok(match op {
            AssignOp::Add => "ReduceOp::Sum",
            AssignOp::Min => "ReduceOp::Min",
            AssignOp::Max => "ReduceOp::Max",
            AssignOp::Or => "ReduceOp::Or",
            AssignOp::And => "ReduceOp::And",
            other => {
                return err(format!(
                    "global reduction operator {other:?} not supported by the runtime"
                ))
            }
        })
    }

    /// Records (and consistency-checks) the repr pushed into an aggregate.
    fn record_agg(&mut self, key: &str, repr: Repr) -> R<()> {
        match self.agg_repr.get(key) {
            Some(&r) if r != repr => err(format!(
                "aggregate `{key}` reduced at both {} and {}",
                r.name(),
                repr.name()
            )),
            Some(_) => Ok(()),
            None => {
                self.agg_repr.insert(key.to_owned(), repr);
                Ok(())
            }
        }
    }
}

// ---- master-side emission (mirrors gm_interp::eval::MasterEnv) ----

impl<'a> Gen<'a> {
    fn master_expr(&mut self, e: &Expr) -> R<TE> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(TE::new(fmt_i64(*v), Repr::I64)),
            ExprKind::FloatLit(v) => Ok(TE::new(fmt_f64(*v), Repr::F64)),
            ExprKind::BoolLit(v) => Ok(TE::new(if *v { "true" } else { "false" }, Repr::Bool)),
            ExprKind::Inf { negative } => self.inf_te(e, *negative),
            ExprKind::Nil => Ok(TE::new("u32::MAX", Repr::Node)),
            ExprKind::Var(name) => match self.global_by_name.get(name) {
                Some(&i) => Ok(self.global_te(i)),
                None => err(format!("unknown master global `{name}`")),
            },
            ExprKind::Unary { op, expr } => {
                let v = self.master_expr(expr)?;
                self.un_te(*op, v)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.master_expr(lhs)?;
                let r = self.master_expr(rhs)?;
                self.bin_te(*op, l, r)
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                let c = self.master_expr(cond)?;
                let t = self.master_expr(then_val)?;
                let f = self.master_expr(else_val)?;
                self.ternary_te(e, c, t, f)
            }
            ExprKind::Call { method, .. } => match method.as_str() {
                "NumNodes" => Ok(TE::new("(self.graph.num_nodes() as i64)", Repr::I64)),
                "NumEdges" => Ok(TE::new("(self.graph.num_edges() as i64)", Repr::I64)),
                "PickRandom" => Ok(TE::new(
                    "({ let n = self.graph.num_nodes(); \
                     assert!(n > 0, \"PickRandom on an empty graph\"); self.rng.pick(n) })",
                    Repr::Node,
                )),
                other => err(format!("master built-in `{other}` not supported")),
            },
            ExprKind::Prop { .. } | ExprKind::Agg(_) => {
                err("vertex-context expression reached the master")
            }
        }
    }

    fn inf_te(&self, e: &Expr, negative: bool) -> R<TE> {
        match &e.ty {
            Some(Ty::Int | Ty::Long) => Ok(TE::new(
                if negative { "i64::MIN" } else { "i64::MAX" },
                Repr::I64,
            )),
            Some(Ty::Float | Ty::Double) => Ok(TE::new(
                if negative {
                    "f64::NEG_INFINITY"
                } else {
                    "f64::INFINITY"
                },
                Repr::F64,
            )),
            Some(other) => err(format!("INF has no meaning at type {other}")),
            None => err("INF expression lacks a type annotation"),
        }
    }

    /// Shared ternary assembly: branch-wise coercion when the checker
    /// annotated a value type (the interpreter coerces the taken branch),
    /// identical branch reprs otherwise. Only the taken branch evaluates.
    fn ternary_te(&mut self, e: &Expr, c: TE, t: TE, f: TE) -> R<TE> {
        if c.repr != Repr::Bool {
            return err("ternary condition is not boolean");
        }
        let coerce = match &e.ty {
            Some(ty) if ty.is_value() => Some(Repr::of_ty(ty)?),
            _ => None,
        };
        match coerce {
            Some(target) => {
                let t = self.coerce_te(t, target)?;
                let f = self.coerce_te(f, target)?;
                Ok(TE::new(
                    format!("(if {} {{ {} }} else {{ {} }})", c.s, t.s, f.s),
                    target,
                ))
            }
            None => {
                if t.repr != f.repr {
                    return err(format!(
                        "ternary branches have reprs {}/{} and no coercion annotation",
                        t.repr.name(),
                        f.repr.name()
                    ));
                }
                Ok(TE::new(
                    format!("(if {} {{ {} }} else {{ {} }})", c.s, t.s, f.s),
                    t.repr,
                ))
            }
        }
    }

    /// Emits a master instruction list. `has_agg` is true inside `post_N`
    /// functions, whose `agg` parameter carries the vertex aggregates; in
    /// plain master blocks the interpreter passes `None`, making `FoldAgg`
    /// a no-op, so none is emitted there.
    fn emit_minstrs(&mut self, instrs: &[MInstr], buf: &mut Buf, has_agg: bool) -> R<()> {
        for m in instrs {
            buf.line("if self.finished {");
            buf.line("    return;");
            buf.line("}");
            match m {
                MInstr::Assign { name, op, value } => {
                    let Some(&gi) = self.global_by_name.get(name) else {
                        return err(format!("assignment to unknown global `{name}`"));
                    };
                    let (field, repr) = self.global_fields[gi].clone();
                    let te = self.master_expr(value)?;
                    let te = self.coerce_te(te, repr)?;
                    let tmp = self.fresh_temp();
                    buf.line(&format!("let {tmp}: {} = {};", repr.rust(), te.s));
                    let red = self.reduce_expr(*op, &format!("self.g_{field}"), &tmp, repr)?;
                    buf.line(&format!("self.g_{field} = {red};"));
                }
                MInstr::FoldAgg { name, op, agg_key } => {
                    if !has_agg {
                        continue;
                    }
                    let Some(&arepr) = self.agg_repr.get(agg_key) else {
                        // No vertex ever reduces this key, so `ctx.agg`
                        // always returns None at runtime: fold is dead.
                        continue;
                    };
                    let Some(&gi) = self.global_by_name.get(name) else {
                        return err(format!("aggregate fold into unknown global `{name}`"));
                    };
                    let (field, grepr) = self.global_fields[gi].clone();
                    if arepr != grepr && !(arepr == Repr::I64 && grepr == Repr::F64) {
                        return err(format!(
                            "aggregate `{agg_key}` ({}) folds into `{name}` ({}) — \
                             narrowing fold not representable natively",
                            arepr.name(),
                            grepr.name()
                        ));
                    }
                    let (variant, bind_repr) = match arepr {
                        Repr::I64 => ("GlobalValue::Int(x)", Repr::I64),
                        Repr::F64 => ("GlobalValue::Double(x)", Repr::F64),
                        Repr::Bool => ("GlobalValue::Bool(x)", Repr::Bool),
                        Repr::Node => ("GlobalValue::Node(x)", Repr::Node),
                        Repr::Edge => return err(format!("aggregate `{agg_key}` has edge repr")),
                    };
                    buf.open("if let Some(ctx) = agg {");
                    buf.open(&format!("if let Some(gv) = ctx.agg(\"{agg_key}\") {{"));
                    buf.line(&format!(
                        "let inc: {} = match gv {{ {variant} => x, \
                         other => panic!(\"aggregate `{agg_key}` holds {{other:?}}\") }};",
                        bind_repr.rust()
                    ));
                    let inc = self.coerce_te(TE::new("inc", arepr), grepr)?;
                    let red = self.reduce_expr(*op, &format!("self.g_{field}"), &inc.s, grepr)?;
                    buf.line(&format!("self.g_{field} = {red};"));
                    buf.close("}");
                    buf.close("}");
                }
                MInstr::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let c = self.master_expr(cond)?;
                    if c.repr != Repr::Bool {
                        return err("master If condition is not boolean");
                    }
                    buf.open(&format!("if {} {{", c.s));
                    self.emit_minstrs(then_branch, buf, has_agg)?;
                    if else_branch.is_empty() {
                        buf.close("}");
                    } else {
                        buf.close("} else {");
                        buf.ind += 1;
                        self.emit_minstrs(else_branch, buf, has_agg)?;
                        buf.close("}");
                    }
                }
                MInstr::SetReturn(e) => {
                    match e {
                        Some(e) => {
                            let te = self.master_expr(e)?;
                            let te =
                                match self.ret_repr {
                                    Some(r) => self.coerce_te(te, r)?,
                                    None => return err(
                                        "Return with a value in a procedure with no return type",
                                    ),
                                };
                            buf.line(&format!("self.ret = Some({});", te.s));
                        }
                        None => {
                            if self.ret_repr.is_some() {
                                buf.line("self.ret = None;");
                            }
                        }
                    }
                    buf.line("self.finished = true;");
                    buf.line("return;");
                }
            }
        }
        Ok(())
    }

    /// Emits the per-state master/post/transition functions and their
    /// dispatchers, as inherent methods (indent level 1).
    fn emit_master_state_fns(&mut self) -> R<Buf> {
        let mut b = Buf::new(1);
        let states: Vec<&State> = self.p.states.iter().collect();

        for (i, s) in states.iter().enumerate() {
            if !s.master.is_empty() {
                b.open(&format!("fn master_{i}(&mut self) {{"));
                self.emit_minstrs(&s.master, &mut b, false)?;
                b.close("}");
                b.line("");
            }
            if !s.post.is_empty() {
                b.open(&format!(
                    "fn post_{i}(&mut self, agg: Option<&MasterContext<'_>>) {{"
                ));
                self.emit_minstrs(&s.post, &mut b, true)?;
                b.close("}");
                b.line("");
            }
            match &s.transition {
                Transition::Goto(t) => {
                    b.open(&format!("fn transition_{i}(&mut self) -> Option<usize> {{"));
                    b.line(&format!("Some({t}usize)"));
                    b.close("}");
                }
                Transition::Branch {
                    cond,
                    then_to,
                    else_to,
                } => {
                    let c = self.master_expr(cond)?;
                    if c.repr != Repr::Bool {
                        return err("transition condition is not boolean");
                    }
                    b.open(&format!("fn transition_{i}(&mut self) -> Option<usize> {{"));
                    b.open(&format!("if {} {{", c.s));
                    b.line(&format!("Some({then_to}usize)"));
                    b.close("} else {");
                    b.ind += 1;
                    b.line(&format!("Some({else_to}usize)"));
                    b.close("}");
                    b.close("}");
                }
                Transition::Halt => {
                    b.open(&format!("fn transition_{i}(&mut self) -> Option<usize> {{"));
                    b.line("None");
                    b.close("}");
                }
            }
            b.line("");
        }

        b.open("fn run_master(&mut self, state: usize) {");
        b.open("match state {");
        for (i, s) in states.iter().enumerate() {
            if !s.master.is_empty() {
                b.line(&format!("{i} => self.master_{i}(),"));
            }
        }
        b.line("_ => {}");
        b.close("}");
        b.close("}");
        b.line("");

        b.open("fn run_post(&mut self, state: usize, agg: Option<&MasterContext<'_>>) {");
        b.open("match state {");
        for (i, s) in states.iter().enumerate() {
            if !s.post.is_empty() {
                b.line(&format!("{i} => self.post_{i}(agg),"));
            }
        }
        b.line("_ => {}");
        b.close("}");
        b.close("}");
        b.line("");

        b.open("fn run_transition(&mut self, state: usize) -> Option<usize> {");
        b.open("match state {");
        for i in 0..states.len() {
            b.line(&format!("{i} => self.transition_{i}(),"));
        }
        b.line("_ => None,");
        b.close("}");
        b.close("}");
        Ok(b)
    }
}

// ---- vertex-side emission (mirrors gm_interp::{precompile, exec}) ----

/// Where a vertex-context expression is being evaluated, which decides how
/// leaves render (snapshot vs. live property reads, pull-side renames).
#[derive(Clone, Copy, PartialEq)]
enum VPlace {
    /// Receive handler: property reads go to the snapshot bindings when the
    /// kernel needs one; payload bindings are in scope.
    Recv { snap: bool },
    /// Filter or body (filter simply has no locals registered yet).
    Body,
    /// `pull_message`: the *sender's* row via `src_value`, no locals.
    Pull,
}

/// Per-kernel emission state. Replicates the interpreter's `precompile::Cx`
/// name-resolution rules exactly: payload fields shadow globals inside
/// their handler, and a variable resolves to a local only once the `Local`
/// instruction introducing it has been lowered.
struct KernelCx<'a, 'g> {
    g: &'g mut Gen<'a>,
    /// Payload bindings for the current handler: field → (binding, repr).
    payload: HashMap<String, (String, Repr)>,
    /// Registered locals: name → (field, repr).
    locals: HashMap<String, (String, Repr)>,
    local_used: HashSet<String>,
    /// Declaration order of locals (field, repr).
    local_order: Vec<(String, Repr)>,
    /// Broadcast globals read by this kernel, in first-use order.
    globals_order: Vec<usize>,
    globals_seen: HashSet<usize>,
}

impl<'a, 'g> KernelCx<'a, 'g> {
    fn new(g: &'g mut Gen<'a>) -> Self {
        KernelCx {
            g,
            payload: HashMap::new(),
            locals: HashMap::new(),
            local_used: HashSet::new(),
            local_order: Vec::new(),
            globals_order: Vec::new(),
            globals_seen: HashSet::new(),
        }
    }

    fn global(&mut self, name: &str) -> R<TE> {
        let Some(&i) = self.g.global_by_name.get(name) else {
            return err(format!("unknown broadcast global `{name}`"));
        };
        if self.globals_seen.insert(i) {
            self.globals_order.push(i);
        }
        Ok(self.g.global_te(i))
    }

    fn prop_te(&self, name: &str, place: VPlace) -> R<TE> {
        let Some(&i) = self.g.prop_by_name.get(name) else {
            return err(format!("unknown property `{name}`"));
        };
        let (field, repr) = self.g.prop_fields[i].clone();
        let s = match place {
            VPlace::Recv { snap: true } => format!("snap_{field}"),
            VPlace::Recv { snap: false } | VPlace::Body => format!("value.{field}"),
            VPlace::Pull => format!("src_value.{field}"),
        };
        Ok(TE::new(s, repr))
    }

    fn expr(&mut self, e: &Expr, place: VPlace, edge: Option<&str>) -> R<TE> {
        match &e.kind {
            ExprKind::IntLit(v) => Ok(TE::new(fmt_i64(*v), Repr::I64)),
            ExprKind::FloatLit(v) => Ok(TE::new(fmt_f64(*v), Repr::F64)),
            ExprKind::BoolLit(v) => Ok(TE::new(if *v { "true" } else { "false" }, Repr::Bool)),
            ExprKind::Inf { negative } => self.g.inf_te(e, *negative),
            ExprKind::Nil => Ok(TE::new("u32::MAX", Repr::Node)),
            ExprKind::Var(name) if name == SELF => Ok(TE::new(
                if place == VPlace::Pull {
                    "src.0"
                } else {
                    "self_id"
                },
                Repr::Node,
            )),
            ExprKind::Var(name) if name.starts_with(PAYLOAD_PREFIX) => {
                let field = name.trim_start_matches(PAYLOAD_PREFIX);
                match self.payload.get(field) {
                    Some((binding, repr)) => Ok(TE::new(binding.clone(), *repr)),
                    None => err(format!("unknown payload field `{field}`")),
                }
            }
            ExprKind::Var(name) => {
                if let Some((field, repr)) = self.locals.get(name) {
                    if place == VPlace::Pull {
                        return err(format!(
                            "pull payload reads kernel local `{name}` — pullability bug"
                        ));
                    }
                    return Ok(TE::new(format!("l_{field}"), *repr));
                }
                self.global(name)
            }
            ExprKind::Prop { obj, prop } if obj == SELF => self.prop_te(prop, place),
            ExprKind::Prop { obj, prop } if obj == EDGE => {
                let Some(&i) = self.g.edge_by_name.get(prop) else {
                    return err(format!("unknown edge property `{prop}`"));
                };
                let Some(edge) = edge else {
                    return err(format!(
                        "edge property `{prop}` read outside a neighbor-send payload"
                    ));
                };
                let (field, repr) = self.g.edge_fields[i].clone();
                Ok(TE::new(format!("self.ep_{field}[{edge}]"), repr))
            }
            ExprKind::Prop { obj, .. } => err(format!("unresolved property base `{obj}`")),
            ExprKind::Unary { op, expr } => {
                let v = self.expr(expr, place, edge)?;
                self.g.un_te(*op, v)
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let l = self.expr(lhs, place, edge)?;
                let r = self.expr(rhs, place, edge)?;
                self.g.bin_te(*op, l, r)
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                let c = self.expr(cond, place, edge)?;
                let t = self.expr(then_val, place, edge)?;
                let f = self.expr(else_val, place, edge)?;
                self.g.ternary_te(e, c, t, f)
            }
            ExprKind::Call { obj, method, .. } => match method.as_str() {
                "NumNodes" => Ok(TE::new("(self.graph.num_nodes() as i64)", Repr::I64)),
                "NumEdges" => Ok(TE::new("(self.graph.num_edges() as i64)", Repr::I64)),
                "Degree" | "OutDegree" | "NumNbrs" if obj == SELF => Ok(TE::new(
                    if place == VPlace::Pull {
                        "(graph.out_degree(src) as i64)"
                    } else {
                        "(out_degree as i64)"
                    },
                    Repr::I64,
                )),
                "InDegree" if obj == SELF => Ok(match place {
                    VPlace::Recv { .. } => TE::new("in_deg", Repr::I64),
                    VPlace::Body => TE::new("(value.in_nbrs.len() as i64)", Repr::I64),
                    VPlace::Pull => TE::new("(src_value.in_nbrs.len() as i64)", Repr::I64),
                }),
                other => err(format!("vertex built-in `{obj}.{other}()` not supported")),
            },
            ExprKind::Agg(_) => err("aggregate expression reached code generation"),
        }
    }

    /// Renders a message construction `Msg::Mk { f: <expr>, ... }` with
    /// struct-literal field order equal to payload evaluation order.
    fn msg_literal(
        &mut self,
        tag: u8,
        payload: &[Expr],
        place: VPlace,
        edge: Option<&str>,
    ) -> R<String> {
        let (variant, fields) = self.g.msg_variants[tag as usize].clone();
        if fields.len() != payload.len() {
            return err(format!(
                "message {tag} has {} fields but {} payload expressions",
                fields.len(),
                payload.len()
            ));
        }
        let mut parts = Vec::new();
        for (e, (fname, frepr)) in payload.iter().zip(&fields) {
            let te = self.expr(e, place, edge)?;
            if te.repr != *frepr {
                return err(format!(
                    "message {tag} field `{fname}` declared {} but payload expression is {}",
                    frepr.name(),
                    te.repr.name()
                ));
            }
            parts.push(format!("{fname}: {}", te.s));
        }
        Ok(format!("Msg::{variant} {{ {} }}", parts.join(", ")))
    }

    /// Registers (or checks) the local introduced by a `Local` instruction.
    /// Must be called *after* its value expression has been emitted, to
    /// match the interpreter's resolution order.
    fn register_local(&mut self, name: &str, repr: Repr) -> R<String> {
        if let Some((field, r)) = self.locals.get(name) {
            if *r != repr {
                return err(format!(
                    "local `{name}` written at both {} and {}",
                    r.name(),
                    repr.name()
                ));
            }
            return Ok(field.clone());
        }
        let field = sanitize(name, &mut self.local_used);
        self.locals.insert(name.to_owned(), (field.clone(), repr));
        self.local_order.push((field.clone(), repr));
        Ok(field)
    }

    fn emit_vinstrs(
        &mut self,
        instrs: &[VInstr],
        buf: &mut Buf,
        deferred: &HashMap<usize, String>,
    ) -> R<()> {
        for i in instrs {
            match i {
                VInstr::Local {
                    name,
                    op,
                    value,
                    ty,
                } => {
                    let repr = Repr::of_ty(ty)?;
                    let te = self.expr(value, VPlace::Body, None)?;
                    let te = self.g.coerce_te(te, repr)?;
                    let field = self.register_local(name, repr)?;
                    let tmp = self.g.fresh_temp();
                    buf.line(&format!("let {tmp}: {} = {};", repr.rust(), te.s));
                    let red = match op {
                        AssignOp::Assign => tmp.clone(),
                        op => self.g.reduce_expr(*op, &format!("l_{field}"), &tmp, repr)?,
                    };
                    buf.line(&format!("l_{field} = {red};"));
                }
                VInstr::WriteOwn { prop, op, value } => {
                    let Some(&pi) = self.g.prop_by_name.get(prop) else {
                        return err(format!("write to unknown property `{prop}`"));
                    };
                    let (field, repr) = self.g.prop_fields[pi].clone();
                    let te = self.expr(value, VPlace::Body, None)?;
                    let te = self.g.coerce_te(te, repr)?;
                    let tmp = self.g.fresh_temp();
                    buf.line(&format!("let {tmp}: {} = {};", repr.rust(), te.s));
                    if *op == AssignOp::Defer {
                        let d = deferred
                            .get(&pi)
                            .expect("deferred targets are pre-collected");
                        buf.line(&format!("{d} = Some({tmp});"));
                    } else {
                        let red = self
                            .g
                            .reduce_expr(*op, &format!("value.{field}"), &tmp, repr)?;
                        buf.line(&format!("value.{field} = {red};"));
                    }
                }
                VInstr::ReduceGlobal { name, op, value } => {
                    let te = self.expr(value, VPlace::Body, None)?;
                    self.g.record_agg(name, te.repr)?;
                    let opname = self.g.reduce_op_name(*op)?;
                    let gv = self.g.gv_wrap(&te);
                    buf.line(&format!("ctx.reduce_global(\"{name}\", {opname}, {gv});"));
                }
                VInstr::SendToNbrs { tag, payload } => {
                    if payload.iter().any(reads_edge_prop) {
                        buf.open("if !ctx.mark_send() {");
                        buf.open("for (t, e) in ctx.out_neighbors() {");
                        let m = self.msg_literal(*tag, payload, VPlace::Body, Some("e.index()"))?;
                        buf.line(&format!("ctx.send(t, {m});"));
                        buf.close("}");
                        buf.close("}");
                    } else {
                        let m = self.msg_literal(*tag, payload, VPlace::Body, None)?;
                        buf.line(&format!("ctx.send_to_nbrs({m});"));
                    }
                }
                VInstr::SendToInNbrs { tag, payload } => {
                    let m = self.msg_literal(*tag, payload, VPlace::Body, None)?;
                    let tmp = self.g.fresh_temp();
                    buf.line(&format!("let {tmp}: Msg = {m};"));
                    buf.open("for &nbr in value.in_nbrs.iter() {");
                    buf.line(&format!("ctx.send(NodeId(nbr), {tmp});"));
                    buf.close("}");
                }
                VInstr::SendTo { dst, tag, payload } => {
                    let d = self.expr(dst, VPlace::Body, None)?;
                    if d.repr != Repr::Node {
                        return err("SendTo destination is not a node");
                    }
                    let tmp = self.g.fresh_temp();
                    buf.line(&format!("let {tmp}: u32 = {};", d.s));
                    let m = self.msg_literal(*tag, payload, VPlace::Body, None)?;
                    buf.line(&format!("ctx.send(NodeId({tmp}), {m});"));
                }
                VInstr::SendIdToNbrs => {
                    buf.line("ctx.send_to_nbrs(Msg::InNbr { sender: self_id });");
                }
                VInstr::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let c = self.expr(cond, VPlace::Body, None)?;
                    if c.repr != Repr::Bool {
                        return err("vertex If condition is not boolean");
                    }
                    buf.open(&format!("if {} {{", c.s));
                    self.emit_vinstrs(then_branch, buf, deferred)?;
                    if else_branch.is_empty() {
                        buf.close("}");
                    } else {
                        buf.close("} else {");
                        buf.ind += 1;
                        self.emit_vinstrs(else_branch, buf, deferred)?;
                        buf.close("}");
                    }
                }
            }
        }
        Ok(())
    }
}

/// Whether a payload expression reads the connecting edge (decides the
/// shared-vs-per-edge send path, like `precompile::reads_edge`).
fn reads_edge_prop(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Prop { obj, .. } => obj == EDGE,
        ExprKind::Unary { expr, .. } => reads_edge_prop(expr),
        ExprKind::Binary { lhs, rhs, .. } => reads_edge_prop(lhs) || reads_edge_prop(rhs),
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => reads_edge_prop(cond) || reads_edge_prop(then_val) || reads_edge_prop(else_val),
        _ => false,
    }
}

/// Whether an expression reads the executing vertex's own properties
/// (decides receive-phase snapshotting, like `precompile::reads_prop`).
fn reads_self_prop(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Prop { obj, .. } => obj == SELF,
        ExprKind::Unary { expr, .. } => reads_self_prop(expr),
        ExprKind::Binary { lhs, rhs, .. } => reads_self_prop(lhs) || reads_self_prop(rhs),
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => reads_self_prop(cond) || reads_self_prop(then_val) || reads_self_prop(else_val),
        _ => false,
    }
}

fn collect_deferred(instrs: &[VInstr], out: &mut Vec<String>) {
    for i in instrs {
        match i {
            VInstr::WriteOwn { prop, op, .. } if *op == AssignOp::Defer && !out.contains(prop) => {
                out.push(prop.clone());
            }
            VInstr::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_deferred(then_branch, out);
                collect_deferred(else_branch, out);
            }
            _ => {}
        }
    }
}

fn collect_sites<'e>(instrs: &'e [VInstr], out: &mut Vec<SendSite<'e>>) {
    for i in instrs {
        match i {
            VInstr::SendToNbrs { tag, payload } => out.push(SendSite::Tagged(*tag, payload)),
            VInstr::SendIdToNbrs => out.push(SendSite::InNbrsId),
            VInstr::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_sites(then_branch, out);
                collect_sites(else_branch, out);
            }
            _ => {}
        }
    }
}

impl<'a> Gen<'a> {
    /// Emits all `vertex_{i}` inherent methods (indent level 1), filling
    /// `reads_globals`, `agg_repr`, and `sites` along the way.
    fn emit_vertex_fns(&mut self) -> R<Buf> {
        let mut b = Buf::new(1);
        let p = self.p;
        for (i, s) in p.states.iter().enumerate() {
            let Some(kernel) = s.vertex.as_ref() else {
                continue;
            };
            let mut sites = Vec::new();
            collect_sites(&kernel.body, &mut sites);
            self.sites[i] = sites;

            b.line(&format!("fn vertex_{i}("));
            b.line("    &self,");
            b.line("    ctx: &mut VertexContext<'_, '_, Msg>,");
            b.line("    value: &mut VertexValue,");
            b.line("    messages: &[Msg],");
            b.open(") {");
            b.line("let self_id: u32 = ctx.id().0;");
            b.line("let out_degree: u32 = ctx.out_degree();");
            self.emit_kernel(i, kernel, &mut b)?;
            b.close("}");
            b.line("");
        }
        Ok(b)
    }

    /// Emits one kernel's receive phase + body, mirroring the interpreter's
    /// `vertex_compute` structure statement for statement.
    fn emit_kernel(&mut self, state: usize, kernel: &'a VertexKernel, b: &mut Buf) -> R<()> {
        let reads = |o: &Option<Expr>| o.as_ref().is_some_and(reads_self_prop);
        let snapshot_needed = kernel
            .recvs
            .iter()
            .filter(|h| h.tag != IN_NBRS_TAG)
            .any(|h| {
                reads(&h.guard)
                    || h.steps.iter().any(|st| {
                        reads(&st.guard)
                            || match &st.action {
                                RecvAction::WriteOwn { value, .. }
                                | RecvAction::ReduceGlobal { value, .. } => reads_self_prop(value),
                                RecvAction::StoreInNbr => false,
                            }
                    })
            });
        let stores_in_nbrs = kernel.recvs.iter().any(|h| h.tag == IN_NBRS_TAG);
        let handlers: Vec<&'a RecvHandler> = kernel
            .recvs
            .iter()
            .filter(|h| h.tag != IN_NBRS_TAG)
            .collect();

        let mut cx = KernelCx::new(self);
        let place = VPlace::Recv {
            snap: snapshot_needed,
        };

        // ---- receive phase ----
        if !handlers.is_empty() || stores_in_nbrs {
            b.open("if !messages.is_empty() {");
            if snapshot_needed {
                for (field, repr) in cx.g.prop_fields.clone() {
                    b.line(&format!(
                        "let snap_{field}: {} = value.{field};",
                        repr.rust()
                    ));
                }
            }
            b.open("for msg in messages.iter() {");
            b.line("let in_deg: i64 = value.in_nbrs.len() as i64;");
            b.open("match *msg {");
            for h in &handlers {
                let (variant, vfields) = cx.g.msg_variants[h.tag as usize].clone();
                let orig_fields: Vec<String> = cx.g.p.messages[h.tag as usize]
                    .fields
                    .iter()
                    .map(|(n, _)| n.clone())
                    .collect();
                cx.payload.clear();
                for (orig, (fname, frepr)) in orig_fields.iter().zip(&vfields) {
                    cx.payload
                        .insert(orig.clone(), (format!("p_{fname}"), *frepr));
                }
                let pattern = if vfields.is_empty() {
                    format!("Msg::{variant} {{}}")
                } else {
                    format!(
                        "Msg::{variant} {{ {} }}",
                        vfields
                            .iter()
                            .map(|(f, _)| format!("{f}: p_{f}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                b.open(&format!("{pattern} => {{"));
                if let Some(g) = &h.guard {
                    let gte = cx.expr(g, place, None)?;
                    if gte.repr != Repr::Bool {
                        return err("receive guard is not boolean");
                    }
                    b.open(&format!("if !({}) {{", gte.s));
                    b.line("continue;");
                    b.close("}");
                }
                for st in &h.steps {
                    let guard = match &st.guard {
                        Some(g) => {
                            let gte = cx.expr(g, place, None)?;
                            if gte.repr != Repr::Bool {
                                return err("receive step guard is not boolean");
                            }
                            Some(gte.s)
                        }
                        None => None,
                    };
                    if let Some(g) = &guard {
                        b.open(&format!("if {g} {{"));
                    }
                    match &st.action {
                        RecvAction::WriteOwn { prop, op, value } => {
                            let Some(&pi) = cx.g.prop_by_name.get(prop) else {
                                return err(format!("receive writes unknown property `{prop}`"));
                            };
                            let (field, repr) = cx.g.prop_fields[pi].clone();
                            let te = cx.expr(value, place, None)?;
                            let te = cx.g.coerce_te(te, repr)?;
                            let tmp = cx.g.fresh_temp();
                            b.line(&format!("let {tmp}: {} = {};", repr.rust(), te.s));
                            let red =
                                cx.g.reduce_expr(*op, &format!("value.{field}"), &tmp, repr)?;
                            b.line(&format!("value.{field} = {red};"));
                        }
                        RecvAction::ReduceGlobal { name, op, value } => {
                            let te = cx.expr(value, place, None)?;
                            cx.g.record_agg(name, te.repr)?;
                            let opname = cx.g.reduce_op_name(*op)?;
                            let gv = cx.g.gv_wrap(&te);
                            b.line(&format!("ctx.reduce_global(\"{name}\", {opname}, {gv});"));
                        }
                        RecvAction::StoreInNbr => {
                            let Some((fname, frepr)) = vfields.first() else {
                                return err("StoreInNbr on a message with no payload");
                            };
                            if *frepr != Repr::Node {
                                return err("StoreInNbr payload is not a node id");
                            }
                            b.line(&format!("value.in_nbrs.push(p_{fname});"));
                        }
                    }
                    if guard.is_some() {
                        b.close("}");
                    }
                }
                b.close("}");
            }
            if stores_in_nbrs {
                b.open("Msg::InNbr { sender: p_sender } => {");
                b.line("value.in_nbrs.push(p_sender);");
                b.close("}");
            }
            b.line("_ => {}");
            b.close("}");
            b.close("}");
            b.close("}");
        }
        cx.payload.clear();

        // ---- body phase (filter is lowered before the body, so its
        // variables resolve to globals, never to body locals) ----
        let filter_te = match &kernel.filter {
            Some(f) => {
                let te = cx.expr(f, VPlace::Body, None)?;
                if te.repr != Repr::Bool {
                    return err("vertex filter is not boolean");
                }
                Some(te.s)
            }
            None => None,
        };

        let mut deferred_props = Vec::new();
        collect_deferred(&kernel.body, &mut deferred_props);
        let mut deferred: HashMap<usize, String> = HashMap::new();
        let mut deferred_fields: Vec<(String, Repr)> = Vec::new();
        for prop in &deferred_props {
            let Some(&pi) = cx.g.prop_by_name.get(prop) else {
                return err(format!("deferred write to unknown property `{prop}`"));
            };
            let (field, repr) = cx.g.prop_fields[pi].clone();
            deferred.insert(pi, format!("d_{field}"));
            deferred_fields.push((field, repr));
        }

        let body_ind = b.ind + usize::from(filter_te.is_some());
        let mut body_buf = Buf::new(body_ind);
        cx.emit_vinstrs(&kernel.body, &mut body_buf, &deferred)?;

        for (field, repr) in &deferred_fields {
            b.line(&format!(
                "let mut d_{field}: Option<{}> = None;",
                repr.rust()
            ));
        }
        let locals = cx.local_order.clone();
        match &filter_te {
            Some(f) => {
                b.line(&format!("let filter_ok: bool = {f};"));
                b.open("if filter_ok {");
                for (field, repr) in &locals {
                    b.line(&format!(
                        "let mut l_{field}: {} = {};",
                        repr.rust(),
                        repr.default_expr()
                    ));
                }
                b.push_buf(&body_buf);
                b.close("}");
            }
            None => {
                for (field, repr) in &locals {
                    b.line(&format!(
                        "let mut l_{field}: {} = {};",
                        repr.rust(),
                        repr.default_expr()
                    ));
                }
                b.push_buf(&body_buf);
            }
        }
        for (field, _) in &deferred_fields {
            b.open(&format!("if let Some(x) = d_{field} {{"));
            b.line(&format!("value.{field} = x;"));
            b.close("}");
        }

        let order = cx.globals_order.clone();
        drop(cx);
        self.reads_globals[state] = order;
        Ok(())
    }

    /// Emits the `match self.cur_state` arms of `pull_message` for every
    /// `Recomputed`-pullable state. Returns `None` when no state needs one.
    fn emit_pull_arms(&mut self) -> R<Option<Buf>> {
        let mut b = Buf::new(3);
        let mut any = false;
        for i in 0..self.p.states.len() {
            if !matches!(
                self.pullable[i],
                Pullability::Pullable {
                    edge_dependent: true
                }
            ) {
                continue;
            }
            any = true;
            let site: Option<(u8, &'a [Expr])> = match self.sites[i].as_slice() {
                [SendSite::Tagged(t, payload)] => Some((*t, *payload)),
                [SendSite::InNbrsId] => None,
                sites => {
                    return err(format!(
                        "state {i} is Recomputed-pullable but has {} send sites",
                        sites.len()
                    ))
                }
            };
            match site {
                Some((tag, payload)) => {
                    let mut cx = KernelCx::new(self);
                    let m = cx.msg_literal(tag, payload, VPlace::Pull, Some("edge.index()"))?;
                    drop(cx);
                    b.line(&format!("{i}usize => {m},"));
                }
                None => {
                    b.line(&format!("{i}usize => Msg::InNbr {{ sender: src.0 }},"));
                }
            }
        }
        Ok(any.then_some(b))
    }
}

// ---- whole-module assembly ----

fn repr_suffix(repr: Repr) -> &'static str {
    match repr {
        Repr::I64 => "i64",
        Repr::F64 => "f64",
        Repr::Bool => "bool",
        Repr::Node => "node",
        Repr::Edge => "edge",
    }
}

const ALL_REPRS: [Repr; 5] = [Repr::I64, Repr::F64, Repr::Bool, Repr::Node, Repr::Edge];

impl<'a> Gen<'a> {
    fn emit(mut self) -> R<String> {
        if self.p.states.is_empty() {
            return err("program has no states");
        }
        // Kernel emission first: it fills `agg_repr` (consulted when
        // lowering master-side `FoldAgg`), `sites` (pull arms), and
        // `reads_globals` (the broadcast list in `master_compute`).
        let vertex_fns = self.emit_vertex_fns()?;
        let master_fns = self.emit_master_state_fns()?;
        let pull_arms = self.emit_pull_arms()?;
        if matches!(
            self.struct_name.as_str(),
            "Msg" | "VertexValue" | "Graph" | "Value" | "PickRng"
        ) {
            self.struct_name.push_str("Prog");
        }
        let name = self.struct_name.clone();
        let p = self.p;

        let mut out = Buf::new(0);
        out.line(&format!(
            "//! @generated by `gm-core::rustgen` from the Green-Marl procedure `{}`.",
            p.name
        ));
        out.line("//! DO NOT EDIT: regenerate with `gmc emit-rust` (goldens: rerun the");
        out.line("//! `rustgen_golden` test with `GM_UPDATE_GOLDEN=1`).");
        out.line("#![allow(clippy::all)]");
        out.line("#![allow(dead_code, non_snake_case, unreachable_patterns, unused_assignments, unused_imports, unused_mut, unused_parens, unused_variables)]");
        out.line("");
        out.line("use gm_core::seqinterp::ArgValue;");
        out.line("use gm_core::value::Value;");
        out.line("use gm_graph::{EdgeId, Graph, NodeId};");
        out.line("use gm_interp::{CompiledOutcome, PickRng, RunError, TraceStep};");
        out.line("use gm_pregel::{");
        out.line("    run_with_recovery, ByteReader, CkptError, GlobalValue, MasterContext, MasterDecision,");
        out.line("    Persist, PregelConfig, PullMode, ReduceOp, VertexContext, VertexProgram,");
        out.line("};");
        out.line("use std::collections::HashMap;");
        out.line("");

        let flags: Vec<&str> = p
            .states
            .iter()
            .map(|s| if s.vertex.is_some() { "true" } else { "false" })
            .collect();
        out.line(&format!(
            "const IS_VERTEX_STATE: [bool; {}] = [{}];",
            p.states.len(),
            flags.join(", ")
        ));
        out.line("");

        self.emit_vertex_value(&mut out);
        self.emit_msg_enum(&mut out);
        self.emit_struct(&mut out, &name);

        out.open(&format!("impl {name}<'_> {{"));
        out.push_buf(&master_fns);
        out.line("");
        out.push_buf(&vertex_fns);
        out.close("}");
        out.line("");

        self.emit_trait_impl(&mut out, &name, pull_arms.as_ref())?;
        out.line("");
        self.emit_run_fn(&mut out, &name)?;
        self.emit_helpers(&mut out);

        let mut s = out.s;
        while s.ends_with("\n\n") {
            s.pop();
        }
        Ok(s)
    }

    fn emit_vertex_value(&self, out: &mut Buf) {
        out.line("/// Per-vertex state: one native field per node property.");
        out.line("#[derive(Clone, Debug)]");
        out.open("pub struct VertexValue {");
        for (field, repr) in &self.prop_fields {
            out.line(&format!("pub {field}: {},", repr.rust()));
        }
        out.line("pub in_nbrs: Vec<u32>,");
        out.close("}");
        out.line("");
        out.open("impl Persist for VertexValue {");
        out.open("fn persist(&self, out: &mut Vec<u8>) {");
        for (field, _) in &self.prop_fields {
            out.line(&format!("self.{field}.persist(out);"));
        }
        out.line("self.in_nbrs.persist(out);");
        out.close("}");
        out.line("");
        out.open("fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {");
        out.open("Ok(VertexValue {");
        for (field, _) in &self.prop_fields {
            out.line(&format!("{field}: Persist::restore(r)?,"));
        }
        out.line("in_nbrs: Persist::restore(r)?,");
        out.close("})");
        out.close("}");
        out.close("}");
        out.line("");
    }

    fn emit_msg_enum(&self, out: &mut Buf) {
        let has_msgs = !self.msg_variants.is_empty() || self.p.uses_in_nbrs;
        out.line("/// Messages: one monomorphized variant per tag.");
        out.line("#[derive(Clone, Copy, Debug)]");
        if has_msgs {
            out.open("pub enum Msg {");
            for (variant, fields) in &self.msg_variants {
                if fields.is_empty() {
                    out.line(&format!("{variant} {{}},"));
                } else {
                    let list = fields
                        .iter()
                        .map(|(f, r)| format!("{f}: {}", r.rust()))
                        .collect::<Vec<_>>()
                        .join(", ");
                    out.line(&format!("{variant} {{ {list} }},"));
                }
            }
            if self.p.uses_in_nbrs {
                out.line("InNbr { sender: u32 },");
            }
            out.close("}");
        } else {
            out.line("pub enum Msg {}");
        }
        out.line("");
        out.open("impl Persist for Msg {");
        if has_msgs {
            out.open("fn persist(&self, out: &mut Vec<u8>) {");
            out.open("match *self {");
            for (tag, (variant, fields)) in self.msg_variants.iter().enumerate() {
                if fields.is_empty() {
                    out.open(&format!("Msg::{variant} {{}} => {{"));
                } else {
                    let binds = fields
                        .iter()
                        .map(|(f, _)| f.as_str())
                        .collect::<Vec<_>>()
                        .join(", ");
                    out.open(&format!("Msg::{variant} {{ {binds} }} => {{"));
                }
                out.line(&format!("{tag}u8.persist(out);"));
                for (f, _) in fields {
                    out.line(&format!("{f}.persist(out);"));
                }
                out.close("}");
            }
            if self.p.uses_in_nbrs {
                out.open("Msg::InNbr { sender } => {");
                out.line("255u8.persist(out);");
                out.line("sender.persist(out);");
                out.close("}");
            }
            out.close("}");
            out.close("}");
            out.line("");
            out.open("fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {");
            out.open("Ok(match u8::restore(r)? {");
            for (tag, (variant, fields)) in self.msg_variants.iter().enumerate() {
                if fields.is_empty() {
                    out.line(&format!("{tag}u8 => Msg::{variant} {{}},"));
                } else {
                    let inits = fields
                        .iter()
                        .map(|(f, _)| format!("{f}: Persist::restore(r)?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    out.line(&format!("{tag}u8 => Msg::{variant} {{ {inits} }},"));
                }
            }
            if self.p.uses_in_nbrs {
                out.line("255u8 => Msg::InNbr { sender: Persist::restore(r)? },");
            }
            out.line("t => return Err(CkptError::Decode(format!(\"invalid Msg tag {t:#04x}\"))),");
            out.close("})");
            out.close("}");
        } else {
            out.open("fn persist(&self, _out: &mut Vec<u8>) {");
            out.line("match *self {}");
            out.close("}");
            out.line("");
            out.open("fn restore(_r: &mut ByteReader<'_>) -> Result<Self, CkptError> {");
            out.line("Err(CkptError::Decode(\"Msg has no variants\".to_owned()))");
            out.close("}");
        }
        out.close("}");
        out.line("");
    }

    fn emit_struct(&self, out: &mut Buf, name: &str) {
        out.line("/// The compiled program: master-side state plus edge columns.");
        out.open(&format!("pub struct {name}<'a> {{"));
        out.line("graph: &'a Graph,");
        for (field, repr) in &self.edge_fields {
            out.line(&format!("ep_{field}: Vec<{}>,", repr.rust()));
        }
        for (field, repr) in &self.global_fields {
            out.line(&format!("g_{field}: {},", repr.rust()));
        }
        out.line("seed: u64,");
        out.line("rng: PickRng,");
        out.line("prev_state: Option<usize>,");
        out.line("cur_state: usize,");
        out.line("state_log: Vec<usize>,");
        if let Some(r) = self.ret_repr {
            out.line(&format!("ret: Option<{}>,", r.rust()));
        }
        out.line("finished: bool,");
        out.close("}");
        out.line("");
    }

    fn emit_trait_impl(&self, out: &mut Buf, name: &str, pull_arms: Option<&Buf>) -> R<()> {
        let p = self.p;
        let has_msgs = !self.msg_variants.is_empty() || p.uses_in_nbrs;
        out.open(&format!("impl VertexProgram for {name}<'_> {{"));
        out.line("type VertexValue = VertexValue;");
        out.line("type Message = Msg;");
        out.line("");
        out.open("fn message_bytes(&self, m: &Msg) -> u64 {");
        if has_msgs {
            out.open("match *m {");
            for (tag, (variant, _)) in self.msg_variants.iter().enumerate() {
                out.line(&format!(
                    "Msg::{variant} {{ .. }} => {}u64,",
                    p.message_bytes(tag as u8)
                ));
            }
            if p.uses_in_nbrs {
                out.line(&format!(
                    "Msg::InNbr {{ .. }} => {}u64,",
                    p.in_nbrs_message_bytes()
                ));
            }
            out.close("}");
        } else {
            out.line("match *m {}");
        }
        out.close("}");

        let combinable: Vec<(usize, AssignOp)> = p
            .combinable
            .iter()
            .copied()
            .enumerate()
            .filter_map(|(t, op)| op.map(|o| (t, o)))
            .collect();
        if !combinable.is_empty() {
            out.line("");
            out.open("fn has_combiner(&self) -> bool {");
            out.line("true");
            out.close("}");
            out.line("");
            out.open("fn combine(&self, a: &Msg, b: &Msg) -> Option<Msg> {");
            out.open("match (*a, *b) {");
            for &(t, op) in &combinable {
                let (variant, fields) = &self.msg_variants[t];
                if fields.len() != 1 {
                    return err(format!(
                        "combinable message {t} has {} payload fields",
                        fields.len()
                    ));
                }
                let (f, r) = &fields[0];
                let red = self.reduce_expr(op, "x", "y", *r)?;
                out.open(&format!(
                    "(Msg::{variant} {{ {f}: x }}, Msg::{variant} {{ {f}: y }}) => {{"
                ));
                out.line(&format!("Some(Msg::{variant} {{ {f}: {red} }})"));
                out.close("}");
            }
            out.line("_ => None,");
            out.close("}");
            out.close("}");
        }

        let any_pullable = self
            .pullable
            .iter()
            .any(|x| matches!(x, Pullability::Pullable { .. }));
        if any_pullable {
            out.line("");
            out.open("fn pull_supported(&self) -> bool {");
            out.line("true");
            out.close("}");
            out.line("");
            out.open("fn pull_mode(&self) -> PullMode {");
            out.open("match self.cur_state {");
            for (i, x) in self.pullable.iter().enumerate() {
                match x {
                    Pullability::Pullable {
                        edge_dependent: false,
                    } => out.line(&format!("{i}usize => PullMode::Captured,")),
                    Pullability::Pullable {
                        edge_dependent: true,
                    } => out.line(&format!("{i}usize => PullMode::Recomputed,")),
                    _ => {}
                }
            }
            out.line("_ => PullMode::Unsupported,");
            out.close("}");
            out.close("}");
        }
        if let Some(arms) = pull_arms {
            out.line("");
            out.line("fn pull_message(");
            out.line("    &self,");
            out.line("    graph: &Graph,");
            out.line("    src: NodeId,");
            out.line("    edge: EdgeId,");
            out.line("    src_value: &VertexValue,");
            out.open(") -> Msg {");
            out.open("match self.cur_state {");
            out.push_buf(arms);
            out.line("s => panic!(\"pull_message called in push-only state {s}\"),");
            out.close("}");
            out.close("}");
        }

        out.line("");
        out.open("fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {");
        out.open("if self.finished {");
        out.line("return MasterDecision::Halt;");
        out.close("}");
        out.open("let mut current: usize = match self.prev_state {");
        out.line("None => 0,");
        out.open("Some(prev) => {");
        out.line("self.run_post(prev, Some(&*ctx));");
        out.open("if self.finished {");
        out.line("return MasterDecision::Halt;");
        out.close("}");
        out.open("match self.run_transition(prev) {");
        out.line("Some(next) => next,");
        out.line("None => return MasterDecision::Halt,");
        out.close("}");
        out.close("}");
        out.close("};");
        out.line("let mut steps: u64 = 0;");
        out.open("loop {");
        out.line("steps += 1;");
        out.open("assert!(");
        out.line("steps < 10_000_000,");
        out.line("\"master state machine did not reach a vertex state\"");
        out.close(");");
        out.line("self.run_master(current);");
        out.open("if self.finished {");
        out.line("return MasterDecision::Halt;");
        out.close("}");
        out.open("if IS_VERTEX_STATE[current] {");
        out.line("break;");
        out.close("}");
        out.line("self.run_post(current, None);");
        out.open("match self.run_transition(current) {");
        out.line("Some(next) => current = next,");
        out.line("None => return MasterDecision::Halt,");
        out.close("}");
        out.close("}");
        out.line("ctx.put_global(\"_state\", GlobalValue::Int(current as i64));");
        let any_broadcast = p
            .states
            .iter()
            .enumerate()
            .any(|(i, s)| s.vertex.is_some() && !self.reads_globals[i].is_empty());
        if any_broadcast {
            out.open("match current {");
            for (i, s) in p.states.iter().enumerate() {
                if s.vertex.is_none() || self.reads_globals[i].is_empty() {
                    continue;
                }
                out.open(&format!("{i}usize => {{"));
                for &gi in &self.reads_globals[i] {
                    let orig = &p.globals[gi].0;
                    let te = self.global_te(gi);
                    out.line(&format!("ctx.put_global({orig:?}, {});", self.gv_wrap(&te)));
                }
                out.close("}");
            }
            out.line("_ => {}");
            out.close("}");
        }
        out.line("self.cur_state = current;");
        out.line("self.prev_state = Some(current);");
        out.line("self.state_log.push(current);");
        out.line("MasterDecision::Continue");
        out.close("}");

        out.line("");
        out.line("fn vertex_compute(");
        out.line("    &self,");
        out.line("    ctx: &mut VertexContext<'_, '_, Msg>,");
        out.line("    value: &mut VertexValue,");
        out.line("    messages: &[Msg],");
        out.open(") {");
        out.open("match self.cur_state {");
        for (i, s) in p.states.iter().enumerate() {
            if s.vertex.is_some() {
                out.line(&format!(
                    "{i}usize => self.vertex_{i}(ctx, value, messages),"
                ));
            }
        }
        out.line("_ => {}");
        out.close("}");
        out.close("}");

        let mut sorted_globals: Vec<usize> = (0..p.globals.len()).collect();
        sorted_globals.sort_by(|&x, &y| p.globals[x].0.cmp(&p.globals[y].0));
        out.line("");
        out.open("fn save_master_state(&self, out: &mut Vec<u8>) {");
        out.line("self.rng.draws().persist(out);");
        out.line("self.prev_state.map(|s| s as u64).persist(out);");
        out.line("self.finished.persist(out);");
        if self.ret_repr.is_some() {
            out.line("self.ret.is_some().persist(out);");
            out.open("if let Some(v) = self.ret {");
            out.line("v.persist(out);");
            out.close("}");
        }
        for &gi in &sorted_globals {
            out.line(&format!(
                "self.g_{}.persist(out);",
                self.global_fields[gi].0
            ));
        }
        out.line("self.state_log.len().persist(out);");
        out.open("for &s in &self.state_log {");
        out.line("(s as u64).persist(out);");
        out.close("}");
        out.close("}");
        out.line("");
        out.open(
            "fn restore_master_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CkptError> {",
        );
        out.line("let draws = u64::restore(r)?;");
        out.line("self.rng = PickRng::replay(self.seed, draws, self.graph.num_nodes());");
        out.line("let prev: Option<u64> = Persist::restore(r)?;");
        out.line("self.prev_state = prev.map(|s| s as usize);");
        out.line("self.finished = Persist::restore(r)?;");
        if self.ret_repr.is_some() {
            out.open("self.ret = if bool::restore(r)? {");
            out.line("Some(Persist::restore(r)?)");
            out.close("} else {");
            out.ind += 1;
            out.line("None");
            out.close("};");
        }
        for &gi in &sorted_globals {
            out.line(&format!(
                "self.g_{} = Persist::restore(r)?;",
                self.global_fields[gi].0
            ));
        }
        out.line("let n = usize::restore(r)?;");
        out.line("let mut log = Vec::with_capacity(n.min(1 << 20));");
        out.open("for _ in 0..n {");
        out.line("log.push(u64::restore(r)? as usize);");
        out.close("}");
        out.line("self.state_log = log;");
        out.line("Ok(())");
        out.close("}");
        out.close("}");
        Ok(())
    }

    fn emit_run_fn(&self, out: &mut Buf, name: &str) -> R<()> {
        let p = self.p;
        out.line("/// Entry point: argument conventions, error strings, and outcome shape");
        out.line("/// are identical to `gm_interp::run_compiled` for this program.");
        out.line("pub fn run(");
        out.line("    graph: &Graph,");
        out.line("    args: &HashMap<String, ArgValue>,");
        out.line("    seed: u64,");
        out.line("    config: &PregelConfig,");
        out.open(") -> Result<CompiledOutcome, RunError> {");
        for ((field, repr), (orig, _)) in self.prop_fields.iter().zip(&p.node_props) {
            let elem = format!("elem_{}", repr_suffix(*repr));
            out.open(&format!(
                "let col_{field}: Option<Vec<{}>> = match args.get({orig:?}) {{",
                repr.rust()
            ));
            out.open("Some(ArgValue::NodeProp(v)) => {");
            out.open("if v.len() != graph.num_nodes() as usize {");
            out.line(&format!(
                "return Err(RunError::BadArgument(\"node property `{orig}` has wrong length\".to_owned()));"
            ));
            out.close("}");
            out.line(&format!("Some(v.iter().map({elem}).collect())"));
            out.close("}");
            out.open("Some(_) => {");
            out.line(&format!(
                "return Err(RunError::BadArgument(\"`{orig}` must be a node property\".to_owned()));"
            ));
            out.close("}");
            out.line("None => None,");
            out.close("};");
        }
        for ((field, repr), (orig, _)) in self.edge_fields.iter().zip(&p.edge_props) {
            let elem = format!("elem_{}", repr_suffix(*repr));
            out.open(&format!(
                "let ep_{field}: Vec<{}> = match args.get({orig:?}) {{",
                repr.rust()
            ));
            out.open("Some(ArgValue::EdgeProp(v)) => {");
            out.open("if v.len() != graph.num_edges() as usize {");
            out.line(&format!(
                "return Err(RunError::BadArgument(\"edge property `{orig}` has wrong length\".to_owned()));"
            ));
            out.close("}");
            out.line(&format!("v.iter().map({elem}).collect()"));
            out.close("}");
            out.open("Some(_) => {");
            out.line(&format!(
                "return Err(RunError::BadArgument(\"`{orig}` must be an edge property\".to_owned()));"
            ));
            out.close("}");
            out.line(&format!(
                "None => vec![{}; graph.num_edges() as usize],",
                repr.default_expr()
            ));
            out.close("};");
        }
        for (field, repr) in &self.global_fields {
            out.line(&format!(
                "let mut g_{field}: {} = {};",
                repr.rust(),
                repr.default_expr()
            ));
        }
        for (pname, pty) in &p.scalar_params {
            let gi = self.global_by_name[pname];
            let (field, grepr) = &self.global_fields[gi];
            let prepr = Repr::of_ty(pty)?;
            if prepr != *grepr {
                return err(format!(
                    "scalar parameter `{pname}` has type {pty} but its global is {}",
                    grepr.name()
                ));
            }
            out.open(&format!("match args.get({pname:?}) {{"));
            out.line(&format!(
                "Some(ArgValue::Scalar(v)) => g_{field} = scalar_{}(*v, \"{pty}\"),",
                repr_suffix(prepr)
            ));
            out.line(&format!(
                "Some(_) => return Err(RunError::BadArgument(\"`{pname}` must be a scalar\".to_owned())),"
            ));
            out.line(&format!(
                "None => return Err(RunError::BadArgument(\"missing scalar argument `{pname}`\".to_owned())),"
            ));
            out.close("}");
        }
        out.open(&format!("let mut prog = {name} {{"));
        out.line("graph,");
        for (field, _) in &self.edge_fields {
            out.line(&format!("ep_{field},"));
        }
        for (field, _) in &self.global_fields {
            out.line(&format!("g_{field},"));
        }
        out.line("seed,");
        out.line("rng: PickRng::seed_from_u64(seed),");
        out.line("prev_state: None,");
        out.line("cur_state: 0,");
        out.line("state_log: Vec::new(),");
        if self.ret_repr.is_some() {
            out.line("ret: None,");
        }
        out.line("finished: false,");
        out.close("};");
        out.open("let init = |n: NodeId| VertexValue {");
        for (field, repr) in &self.prop_fields {
            out.open(&format!("{field}: match &col_{field} {{"));
            out.line("Some(c) => c[n.index()],");
            out.line(&format!("None => {},", repr.default_expr()));
            out.close("},");
        }
        out.line("in_nbrs: Vec::new(),");
        out.close("};");
        out.line("let result = run_with_recovery(graph, &mut prog, init, config)?;");
        out.line("let mut node_props: HashMap<String, Vec<Value>> = HashMap::new();");
        for ((field, repr), (orig, _)) in self.prop_fields.iter().zip(&p.node_props) {
            out.line(&format!(
                "node_props.insert({orig:?}.to_owned(), result.values.iter().map(|v| {}).collect());",
                self.value_wrap(&format!("v.{field}"), *repr)
            ));
        }
        out.line("let mut globals: HashMap<String, Value> = HashMap::new();");
        for ((field, repr), (orig, _)) in self.global_fields.iter().zip(&p.globals) {
            out.line(&format!(
                "globals.insert({orig:?}.to_owned(), {});",
                self.value_wrap(&format!("prog.g_{field}"), *repr)
            ));
        }
        out.line("let supersteps = &result.metrics.per_superstep;");
        out.open("let trace: Vec<TraceStep> = prog.state_log.iter().zip(supersteps).map(|(&state, m)| TraceStep {");
        out.line("state,");
        out.line("active_vertices: m.active_vertices,");
        out.line("messages_sent: m.messages_sent,");
        out.line("message_bytes: m.message_bytes,");
        out.close("}).collect();");
        out.open("Ok(CompiledOutcome {");
        match self.ret_repr {
            Some(r) => out.line(&format!("ret: prog.ret.map(Value::{}),", r.name())),
            None => out.line("ret: None,"),
        }
        out.line("node_props,");
        out.line("globals,");
        out.line("metrics: result.metrics,");
        out.line("trace,");
        out.close("})");
        out.close("}");
        out.line("");
        Ok(())
    }

    fn emit_helpers(&self, out: &mut Buf) {
        if self.uses_div {
            out.open("fn gm_div_i64(x: i64, y: i64) -> i64 {");
            out.open("if y == 0 {");
            out.line("panic!(\"integer division by zero\");");
            out.close("}");
            out.line("x / y");
            out.close("}");
            out.line("");
        }
        if self.uses_mod {
            out.open("fn gm_mod_i64(x: i64, y: i64) -> i64 {");
            out.open("if y == 0 {");
            out.line("panic!(\"integer modulo by zero\");");
            out.close("}");
            out.line("x % y");
            out.close("}");
            out.line("");
        }
        let mut elem_needed: Vec<Repr> = Vec::new();
        for (_, r) in self.prop_fields.iter().chain(&self.edge_fields) {
            if !elem_needed.contains(r) {
                elem_needed.push(*r);
            }
        }
        for repr in ALL_REPRS {
            if elem_needed.contains(&repr) {
                self.emit_elem_helper(out, repr);
            }
        }
        let mut scalar_needed: Vec<Repr> = Vec::new();
        for (_, ty) in &self.p.scalar_params {
            if let Ok(r) = Repr::of_ty(ty) {
                if !scalar_needed.contains(&r) {
                    scalar_needed.push(r);
                }
            }
        }
        for repr in ALL_REPRS {
            if scalar_needed.contains(&repr) {
                self.emit_scalar_helper(out, repr);
            }
        }
    }

    fn emit_elem_helper(&self, out: &mut Buf, repr: Repr) {
        out.open(&format!(
            "fn elem_{}(v: &Value) -> {} {{",
            repr_suffix(repr),
            repr.rust()
        ));
        out.open("match v {");
        match repr {
            Repr::I64 => out.line("Value::Int(x) => *x,"),
            Repr::F64 => {
                out.line("Value::Int(x) => *x as f64,");
                out.line("Value::Double(x) => *x,");
            }
            Repr::Bool => out.line("Value::Bool(x) => *x,"),
            Repr::Node => out.line("Value::Node(x) => *x,"),
            Repr::Edge => out.line("Value::Edge(x) => *x,"),
        }
        out.line(&format!(
            "other => panic!(\"expected {} column element, got {{other:?}}\"),",
            repr.name()
        ));
        out.close("}");
        out.close("}");
        out.line("");
    }

    fn emit_scalar_helper(&self, out: &mut Buf, repr: Repr) {
        out.open(&format!(
            "fn scalar_{}(v: Value, ty: &str) -> {} {{",
            repr_suffix(repr),
            repr.rust()
        ));
        out.open("match v {");
        match repr {
            Repr::I64 => {
                out.line("Value::Int(x) => x,");
                out.line("Value::Double(x) => x as i64,");
            }
            Repr::F64 => {
                out.line("Value::Int(x) => x as f64,");
                out.line("Value::Double(x) => x,");
            }
            Repr::Bool => out.line("Value::Bool(x) => x,"),
            Repr::Node => out.line("Value::Node(x) => x,"),
            Repr::Edge => out.line("Value::Edge(x) => x,"),
        }
        out.line("other => panic!(\"cannot coerce {other:?} to {ty}\"),");
        out.close("}");
        out.close("}");
        out.line("");
    }
}

/// Compiles a verified [`PregelProgram`] into the source text of a
/// standalone Rust module implementing the runtime's `VertexProgram`
/// trait natively — monomorphized message enum, native property fields,
/// inlined combiners — plus a `run` entry point whose argument handling
/// and outcome shape mirror `gm_interp::run_compiled` bit for bit.
pub fn emit_rust(program: &PregelProgram) -> Result<String, RustgenError> {
    Gen::new(program)?.emit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile, CompileOptions};

    fn rust_of(src: &str) -> String {
        let compiled = compile(src, &CompileOptions::default()).expect("compiles");
        emit_rust(&compiled.program).expect("emits")
    }

    const NBR_SUM: &str = "Procedure f(G: Graph, foo: N_P<Int>, bar: N_P<Int>) {
        Foreach (n: G.Nodes) {
            Foreach (t: n.Nbrs) {
                t.foo += n.bar;
            }
        }
    }";

    #[test]
    fn emits_the_full_module_shape() {
        let rs = rust_of(NBR_SUM);
        assert!(rs.contains("pub struct VertexValue"), "{rs}");
        assert!(rs.contains("pub enum Msg"), "{rs}");
        assert!(rs.contains("impl VertexProgram for F<'_>"), "{rs}");
        assert!(rs.contains("pub fn run("), "{rs}");
        assert!(rs.contains("impl Persist for VertexValue"), "{rs}");
        assert!(rs.contains("impl Persist for Msg"), "{rs}");
    }

    #[test]
    fn emission_is_deterministic() {
        assert_eq!(rust_of(NBR_SUM), rust_of(NBR_SUM));
    }

    #[test]
    fn combiner_is_inlined_for_reducible_messages() {
        let options = CompileOptions {
            combiners: true,
            ..Default::default()
        };
        let compiled = compile(NBR_SUM, &options).expect("compiles");
        let rs = emit_rust(&compiled.program).expect("emits");
        assert!(rs.contains("fn has_combiner"), "{rs}");
        assert!(rs.contains("wrapping_add"), "{rs}");
    }

    #[test]
    fn master_broadcast_aggregate_and_scalar_args_are_generated() {
        let rs = rust_of(
            "Procedure f(G: Graph, age: N_P<Int>, K: Int) : Int {
                Int s = 0;
                Foreach (n: G.Nodes)(n.age > K) {
                    s += n.age;
                }
                Return s;
            }",
        );
        assert!(rs.contains("ctx.put_global(\"K\""), "{rs}");
        assert!(rs.contains("ctx.reduce_global(\"s\""), "{rs}");
        assert!(rs.contains("missing scalar argument `K`"), "{rs}");
        assert!(rs.contains("scalar_i64("), "{rs}");
        assert!(rs.contains("ret: prog.ret.map(Value::Int),"), "{rs}");
    }
}
