//! The §4.2 performance optimizations: State Merging and Intra-Loop State
//! Merging. Both reduce the number of timesteps (supersteps) a generated
//! program takes; the Pregel framework pays a global synchronization
//! barrier per timestep, so fewer states means less overhead.

use crate::ast::Expr;
use crate::pir::RecvAction;
use crate::pir::*;
use crate::report::{Step, TransformReport};
use std::collections::HashSet;

/// Runs both optimizations (honoring the flags) and compacts unreachable
/// states afterwards.
pub fn optimize(
    program: &mut PregelProgram,
    state_merging: bool,
    intra_loop: bool,
    report: &mut TransformReport,
) {
    if state_merging && merge_states(program) {
        report.record(Step::StateMerging);
    }
    if intra_loop && intra_loop_merge(program) {
        report.record(Step::IntraLoopMerge);
    }
    compact(program);
}

/// [`optimize`] with PIR verification after every pass (translation
/// validation, [`crate::CompileOptions::verify`]). Between the merge
/// passes the verifier tolerates unreachable states — a merged-away state
/// lingers with a neutralized transition until `compact` removes it — and
/// goes fully strict after `compact`.
///
/// # Errors
///
/// The verifier's diagnostics, prefixed with the pass that broke the
/// program.
pub fn optimize_verified(
    program: &mut PregelProgram,
    state_merging: bool,
    intra_loop: bool,
    report: &mut TransformReport,
) -> Result<(), crate::diag::Diagnostics> {
    use crate::verify::{verify_stage, VerifyOptions};
    let relaxed = VerifyOptions::mid_optimization();
    if state_merging && merge_states(program) {
        report.record(Step::StateMerging);
        verify_stage(program, "merge_states", &relaxed)?;
    }
    if intra_loop && intra_loop_merge(program) {
        report.record(Step::IntraLoopMerge);
        verify_stage(program, "intra_loop_merge", &relaxed)?;
    }
    compact(program);
    verify_stage(program, "compact", &VerifyOptions::strict())
}

// ---- Combiners (extension; Pregel's combiner API) ----

/// Marks message tags whose receive handling is a single unguarded
/// commutative reduction of a single payload field — those messages can be
/// combined sender-side without changing results. This is an extension
/// beyond the paper (its compiler leaves combiners unused, like
/// `voteToHalt`); it is off by default and enabled by
/// [`crate::CompileOptions::combiners`].
pub fn mark_combiners(program: &mut PregelProgram) {
    use crate::ast::ExprKind;
    use crate::pir::PAYLOAD_PREFIX;
    for tag in 0..program.messages.len() {
        if program.messages[tag].fields.len() != 1 {
            continue;
        }
        let field = format!("{PAYLOAD_PREFIX}{}", program.messages[tag].fields[0].0);
        let mut op: Option<crate::ast::AssignOp> = None;
        let mut ok = true;
        let mut seen = false;
        for state in &program.states {
            let Some(k) = &state.vertex else { continue };
            for r in &k.recvs {
                if r.tag as usize != tag {
                    continue;
                }
                seen = true;
                let single = r.guard.is_none() && r.steps.len() == 1 && r.steps[0].guard.is_none();
                if !single {
                    ok = false;
                    continue;
                }
                match &r.steps[0].action {
                    RecvAction::WriteOwn {
                        op: write_op,
                        value,
                        ..
                    } if write_op.is_reduction()
                        && !matches!(write_op, crate::ast::AssignOp::Sub)
                        && matches!(&value.kind, ExprKind::Var(v) if *v == field) =>
                    {
                        match op {
                            None => op = Some(*write_op),
                            Some(prev) if prev == *write_op => {}
                            Some(_) => ok = false,
                        }
                    }
                    _ => ok = false,
                }
            }
        }
        if seen && ok {
            program.combinable[tag] = op;
        }
    }
}

// ---- State Merging ----

/// Merges consecutive vertex states `A → B` when `B` can execute in the
/// same timestep (no message boundary and no master-side dependency).
/// Returns whether anything merged.
pub fn merge_states(program: &mut PregelProgram) -> bool {
    let mut changed_any = false;
    while let Some((a, b)) = find_mergeable(program) {
        do_merge(program, a, b);
        changed_any = true;
    }
    changed_any
}

fn find_mergeable(program: &PregelProgram) -> Option<(StateId, StateId)> {
    let indeg = in_degrees(program);
    for (a_id, a) in program.states.iter().enumerate() {
        let Transition::Goto(b_id) = a.transition else {
            continue;
        };
        if b_id == a_id {
            continue;
        }
        let b = &program.states[b_id];
        let (Some(ka), Some(kb)) = (&a.vertex, &b.vertex) else {
            continue;
        };
        if indeg[b_id] != 1 {
            continue;
        }
        // Message boundary: if A sends, B's receive handlers consume those
        // messages one superstep later — cannot merge.
        if kernel_sends(&ka.body) || !kb.recvs.is_empty() {
            continue;
        }
        // A deferred write in A applies at A's kernel end; fusing B's code
        // in front of that application would change what B reads.
        if kernel_has_defer(&ka.body) {
            continue;
        }
        // Master-side dependencies.
        let fold_targets: HashSet<&str> = a
            .post
            .iter()
            .filter_map(|m| match m {
                MInstr::FoldAgg { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        let b_master_writes = master_writes(&b.master);
        let b_master_reads = master_reads(&b.master);
        if b_master_writes
            .iter()
            .any(|w| ka.reads_globals.iter().any(|r| r == w))
        {
            continue;
        }
        if b_master_writes
            .iter()
            .chain(b_master_reads.iter())
            .any(|n| fold_targets.contains(n.as_str()))
        {
            continue;
        }
        return Some((a_id, b_id));
    }
    None
}

fn do_merge(program: &mut PregelProgram, a_id: StateId, b_id: StateId) {
    let b = program.states[b_id].clone();
    let kb = b.vertex.expect("checked");
    let a = &mut program.states[a_id];
    let ka = a.vertex.as_mut().expect("checked");

    // Guard each half with its own filter.
    let a_body = wrap_filter(ka.filter.take(), std::mem::take(&mut ka.body));
    let b_body = wrap_filter(kb.filter, kb.body);
    ka.body = a_body.into_iter().chain(b_body).collect();
    ka.reads_globals.extend(kb.reads_globals);
    ka.reads_globals.sort();
    ka.reads_globals.dedup();

    a.master.extend(b.master);
    // Recompute folds: union (keys are distinct global names).
    let mut post = std::mem::take(&mut a.post);
    for f in b.post {
        let dup = matches!(
            (&f, &post[..]),
            (MInstr::FoldAgg { name, .. }, _) if post.iter().any(
                |p| matches!(p, MInstr::FoldAgg { name: n2, .. } if n2 == name)
            )
        );
        if !dup {
            post.push(f);
        }
    }
    a.post = post;
    a.transition = b.transition;
    // b becomes unreachable; neutralize it completely (its master/post
    // now live in a — a stale copy here would fold aggregates no kernel
    // reduces) and let compact() remove it.
    program.states[b_id].transition = Transition::Halt;
    program.states[b_id].vertex = None;
    program.states[b_id].master.clear();
    program.states[b_id].post.clear();
}

fn wrap_filter(filter: Option<Expr>, body: Vec<VInstr>) -> Vec<VInstr> {
    match filter {
        Some(cond) if !body.is_empty() => vec![VInstr::If {
            cond,
            then_branch: body,
            else_branch: vec![],
        }],
        _ => body,
    }
}

// ---- Intra-Loop State Merging ----

/// Merges the last vertex state of a `While` body with the first vertex
/// state of the *next* iteration, so a steady-state iteration costs
/// `n - 1` timesteps instead of `n` (one for the common two-state loop).
/// Dangling messages sent by the speculative final execution are dropped by
/// the runtime, as in the paper. Returns whether anything merged.
pub fn intra_loop_merge(program: &mut PregelProgram) -> bool {
    let mut changed = false;
    let heads: Vec<StateId> = program
        .states
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.transition, Transition::Branch { .. }))
        .map(|(i, _)| i)
        .collect();
    for head in heads {
        changed |= try_merge_loop(program, head);
    }
    changed
}

/// Attempts the merge for the loop rooted at junction `head`.
fn try_merge_loop(program: &mut PregelProgram, head: StateId) -> bool {
    let (cond, body_entry, exit) = match &program.states[head].transition {
        Transition::Branch {
            cond,
            then_to,
            else_to,
        } => (cond.clone(), *then_to, *else_to),
        _ => return false,
    };

    // Walk the body chain; collect vertex states and trailing master code.
    let mut chain: Vec<StateId> = Vec::new();
    let mut cur = body_entry;
    loop {
        if cur == head {
            break; // closed the loop
        }
        if chain.contains(&cur) || chain.len() > program.states.len() {
            return false; // not a simple chain
        }
        chain.push(cur);
        match &program.states[cur].transition {
            Transition::Goto(next) => cur = *next,
            _ => return false, // nested control flow — bail
        }
    }
    let vertex_states: Vec<StateId> = chain
        .iter()
        .copied()
        .filter(|&s| program.states[s].vertex.is_some())
        .collect();
    if vertex_states.len() < 2 {
        return false;
    }
    let b1 = vertex_states[0];
    let vn = *vertex_states.last().expect("nonempty");
    if chain.first() != Some(&b1) {
        return false; // master-only state before the first vertex state
    }
    // Only trailing master-only states after Vn are allowed.
    let vn_pos = chain.iter().position(|&s| s == vn).expect("in chain");
    if chain[..vn_pos]
        .iter()
        .any(|&s| program.states[s].vertex.is_none())
    {
        return false;
    }
    let trailing: Vec<StateId> = chain[vn_pos + 1..].to_vec();

    // B1 must be re-executable speculatively: receive nothing, reduce no
    // globals, and write only loop-private properties.
    let kb1 = program.states[b1].vertex.as_ref().expect("vertex");
    if !kb1.recvs.is_empty() {
        return false;
    }
    // A still-deferred write in Vn (or B1) would apply after the fused
    // B1-half has already read the property — reject.
    let kvn = program.states[vn].vertex.as_ref().expect("vertex");
    if kernel_has_defer(&kvn.body) || kernel_has_defer(&kb1.body) {
        return false;
    }
    let outside: HashSet<StateId> = (0..program.states.len())
        .filter(|s| !chain.contains(s) && *s != head)
        .collect();
    let props_read_outside = props_read_in_states(program, &outside);
    if !speculation_safe(&kb1.body, &props_read_outside) {
        return false;
    }

    // SEQ 0 (B1.master) moves before SEQ N (trailing master code): check
    // commutation and that SEQ-0 writes are loop-private.
    let seq0_writes = master_writes(&program.states[b1].master);
    let seqn: Vec<MInstr> = trailing
        .iter()
        .flat_map(|&s| program.states[s].master.clone())
        .collect();
    let seqn_reads = master_reads(&seqn);
    let seqn_writes = master_writes(&seqn);
    let vn_fold_targets: Vec<String> = program.states[vn]
        .post
        .iter()
        .filter_map(|m| match m {
            MInstr::FoldAgg { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect();
    // Exception: the reset-before-reduce pattern. A SEQ-0 write of a
    // constant to a global that Vn's kernel folds (e.g. PageRank's
    // `diff = 0` before the `diff += ...` reduction) commutes with SEQ N:
    // the reset lands before the vertex phase and the fold lands after,
    // with the same constant every iteration.
    let const_reset = |g: &String| -> bool {
        vn_fold_targets.contains(g) && writes_are_const_assign(&program.states[b1].master, g)
    };
    if seq0_writes
        .iter()
        .any(|w| (seqn_reads.contains(w) || seqn_writes.contains(w)) && !const_reset(w))
    {
        return false;
    }
    for &v in &vertex_states[1..] {
        let k = program.states[v].vertex.as_ref().expect("vertex");
        if seq0_writes.iter().any(|w| k.reads_globals.contains(w)) {
            return false;
        }
    }
    // Conversely, B1's speculative re-execution moves *before* SEQ N and
    // before Vn's aggregate folds. Anything B1 reads that SEQ N writes or
    // Vn folds would be stale (e.g. a level counter advanced at the end of
    // each iteration), so reject those loops.
    let b1_master_reads = master_reads(&program.states[b1].master);
    let kb1 = program.states[b1].vertex.as_ref().expect("vertex");
    let b1_reads = kb1.reads_globals.iter().chain(b1_master_reads.iter());
    for r in b1_reads {
        if seqn_writes.contains(r) || vn_fold_targets.contains(r) {
            return false;
        }
    }

    // Build the merged state in place of Vn.
    let b1_state = program.states[b1].clone();
    let kb1 = b1_state.vertex.expect("vertex");
    let next_after_b1 = if vertex_states.len() == 2 {
        vn // self-loop
    } else {
        // The chain state following B1.
        chain[1]
    };
    {
        let vn_state = &mut program.states[vn];
        let kvn = vn_state.vertex.as_mut().expect("vertex");
        let vn_body = wrap_filter(kvn.filter.take(), std::mem::take(&mut kvn.body));
        let b1_body = wrap_filter(kb1.filter, kb1.body);
        kvn.body = vn_body.into_iter().chain(b1_body).collect();
        kvn.reads_globals.extend(kb1.reads_globals);
        kvn.reads_globals.sort();
        kvn.reads_globals.dedup();
        vn_state.master.extend(b1_state.master);
        vn_state.post.extend(seqn);
        vn_state.transition = Transition::Branch {
            cond,
            then_to: next_after_b1,
            else_to: exit,
        };
    }
    true
}

/// Whether B1's body can run one extra (speculative) time: sends are fine
/// (dangling messages are dropped), per-vertex locals are fine, own writes
/// are fine only to properties never read outside the loop.
fn speculation_safe(body: &[VInstr], props_read_outside: &HashSet<String>) -> bool {
    body.iter().all(|i| match i {
        VInstr::SendToNbrs { .. }
        | VInstr::SendToInNbrs { .. }
        | VInstr::SendTo { .. }
        | VInstr::SendIdToNbrs
        | VInstr::Local { .. } => true,
        VInstr::WriteOwn { prop, .. } => !props_read_outside.contains(prop),
        VInstr::ReduceGlobal { .. } => false,
        VInstr::If {
            then_branch,
            else_branch,
            ..
        } => {
            speculation_safe(then_branch, props_read_outside)
                && speculation_safe(else_branch, props_read_outside)
        }
    })
}

/// Properties read by the kernels (and master code cannot read props) of
/// the given states.
fn props_read_in_states(program: &PregelProgram, states: &HashSet<StateId>) -> HashSet<String> {
    let mut out = HashSet::new();
    for &s in states {
        if let Some(k) = &program.states[s].vertex {
            let mut push = |e: &Expr| collect_prop_reads(e, &mut out);
            if let Some(f) = &k.filter {
                push(f);
            }
            collect_instr_prop_reads(&k.body, &mut out);
            for r in &k.recvs {
                if let Some(g) = &r.guard {
                    collect_prop_reads(g, &mut out);
                }
                for step in &r.steps {
                    if let Some(g) = &step.guard {
                        collect_prop_reads(g, &mut out);
                    }
                    match &step.action {
                        RecvAction::WriteOwn { value, .. }
                        | RecvAction::ReduceGlobal { value, .. } => {
                            collect_prop_reads(value, &mut out)
                        }
                        RecvAction::StoreInNbr => {}
                    }
                }
            }
        }
    }
    out
}

fn collect_instr_prop_reads(instrs: &[VInstr], out: &mut HashSet<String>) {
    for i in instrs {
        match i {
            VInstr::Local { value, .. }
            | VInstr::WriteOwn { value, .. }
            | VInstr::ReduceGlobal { value, .. } => collect_prop_reads(value, out),
            VInstr::SendToNbrs { payload, .. } | VInstr::SendToInNbrs { payload, .. } => {
                for p in payload {
                    collect_prop_reads(p, out);
                }
            }
            VInstr::SendTo { dst, payload, .. } => {
                collect_prop_reads(dst, out);
                for p in payload {
                    collect_prop_reads(p, out);
                }
            }
            VInstr::SendIdToNbrs => {}
            VInstr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                collect_prop_reads(cond, out);
                collect_instr_prop_reads(then_branch, out);
                collect_instr_prop_reads(else_branch, out);
            }
        }
    }
}

fn collect_prop_reads(e: &Expr, out: &mut HashSet<String>) {
    use crate::ast::ExprKind;
    match &e.kind {
        ExprKind::Prop { prop, .. } => {
            out.insert(prop.clone());
        }
        ExprKind::Unary { expr, .. } => collect_prop_reads(expr, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_prop_reads(lhs, out);
            collect_prop_reads(rhs, out);
        }
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            collect_prop_reads(cond, out);
            collect_prop_reads(then_val, out);
            collect_prop_reads(else_val, out);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                collect_prop_reads(a, out);
            }
        }
        _ => {}
    }
}

// ---- shared helpers ----

/// Whether every write to `g` in `instrs` is a plain assignment of a
/// constant expression (no variable or call reads).
fn writes_are_const_assign(instrs: &[MInstr], g: &str) -> bool {
    fn expr_is_const(e: &Expr) -> bool {
        use crate::ast::ExprKind;
        match &e.kind {
            ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::BoolLit(_)
            | ExprKind::Inf { .. }
            | ExprKind::Nil => true,
            ExprKind::Unary { expr, .. } => expr_is_const(expr),
            ExprKind::Binary { lhs, rhs, .. } => expr_is_const(lhs) && expr_is_const(rhs),
            _ => false,
        }
    }
    fn rec(instrs: &[MInstr], g: &str) -> bool {
        instrs.iter().all(|i| match i {
            MInstr::Assign { name, op, value } if name == g => {
                *op == crate::ast::AssignOp::Assign && expr_is_const(value)
            }
            MInstr::FoldAgg { name, .. } => name != g,
            MInstr::If {
                then_branch,
                else_branch,
                ..
            } => rec(then_branch, g) && rec(else_branch, g),
            _ => true,
        })
    }
    rec(instrs, g)
}

/// Whether the body contains a (still) deferred own-write.
fn kernel_has_defer(body: &[VInstr]) -> bool {
    use crate::ast::AssignOp;
    body.iter().any(|i| match i {
        VInstr::WriteOwn {
            op: AssignOp::Defer,
            ..
        } => true,
        VInstr::If {
            then_branch,
            else_branch,
            ..
        } => kernel_has_defer(then_branch) || kernel_has_defer(else_branch),
        _ => false,
    })
}

fn kernel_sends(body: &[VInstr]) -> bool {
    body.iter().any(|i| match i {
        VInstr::SendToNbrs { .. }
        | VInstr::SendToInNbrs { .. }
        | VInstr::SendTo { .. }
        | VInstr::SendIdToNbrs => true,
        VInstr::If {
            then_branch,
            else_branch,
            ..
        } => kernel_sends(then_branch) || kernel_sends(else_branch),
        _ => false,
    })
}

fn master_writes(instrs: &[MInstr]) -> Vec<String> {
    let mut out = Vec::new();
    fn rec(instrs: &[MInstr], out: &mut Vec<String>) {
        for i in instrs {
            match i {
                MInstr::Assign { name, .. } | MInstr::FoldAgg { name, .. } => {
                    out.push(name.clone())
                }
                MInstr::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    rec(then_branch, out);
                    rec(else_branch, out);
                }
                MInstr::SetReturn(_) => {}
            }
        }
    }
    rec(instrs, &mut out);
    out
}

fn master_reads(instrs: &[MInstr]) -> Vec<String> {
    let mut out = Vec::new();
    fn expr_vars(e: &Expr, out: &mut Vec<String>) {
        use crate::ast::ExprKind;
        match &e.kind {
            ExprKind::Var(n) => out.push(n.clone()),
            ExprKind::Unary { expr, .. } => expr_vars(expr, out),
            ExprKind::Binary { lhs, rhs, .. } => {
                expr_vars(lhs, out);
                expr_vars(rhs, out);
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                expr_vars(cond, out);
                expr_vars(then_val, out);
                expr_vars(else_val, out);
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    expr_vars(a, out);
                }
            }
            _ => {}
        }
    }
    fn rec(instrs: &[MInstr], out: &mut Vec<String>) {
        for i in instrs {
            match i {
                MInstr::Assign { name, op, value } => {
                    if op.is_reduction() {
                        out.push(name.clone());
                    }
                    expr_vars(value, out);
                }
                MInstr::FoldAgg { name, .. } => out.push(name.clone()),
                MInstr::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    expr_vars(cond, out);
                    rec(then_branch, out);
                    rec(else_branch, out);
                }
                MInstr::SetReturn(Some(e)) => expr_vars(e, out),
                MInstr::SetReturn(None) => {}
            }
        }
    }
    rec(instrs, &mut out);
    out
}

fn in_degrees(program: &PregelProgram) -> Vec<usize> {
    let mut deg = vec![0usize; program.states.len()];
    deg[0] += 1; // entry
    for s in &program.states {
        match &s.transition {
            Transition::Goto(t) => deg[*t] += 1,
            Transition::Branch {
                then_to, else_to, ..
            } => {
                deg[*then_to] += 1;
                deg[*else_to] += 1;
            }
            Transition::Halt => {}
        }
    }
    deg
}

/// Removes unreachable states and renumbers ids densely.
pub fn compact(program: &mut PregelProgram) {
    let n = program.states.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(s) = stack.pop() {
        if reachable[s] {
            continue;
        }
        reachable[s] = true;
        match &program.states[s].transition {
            Transition::Goto(t) => stack.push(*t),
            Transition::Branch {
                then_to, else_to, ..
            } => {
                stack.push(*then_to);
                stack.push(*else_to);
            }
            Transition::Halt => {}
        }
    }
    let mut remap = vec![usize::MAX; n];
    let mut next = 0;
    for i in 0..n {
        if reachable[i] {
            remap[i] = next;
            next += 1;
        }
    }
    let old = std::mem::take(&mut program.states);
    for (i, mut s) in old.into_iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        match &mut s.transition {
            Transition::Goto(t) => *t = remap[*t],
            Transition::Branch {
                then_to, else_to, ..
            } => {
                *then_to = remap[*then_to];
                *else_to = remap[*else_to];
            }
            Transition::Halt => {}
        }
        program.states.push(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::report::TransformReport;
    use crate::translate::translate;

    fn compiled(src: &str, state_merging: bool, intra: bool) -> PregelProgram {
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        let mut report = TransformReport::new();
        let mut prog = translate(&p.procedures[0], &infos[0], &mut report).unwrap();
        optimize(&mut prog, state_merging, intra, &mut report);
        prog
    }

    const TWO_LOOP_SRC: &str = "Procedure f(G: Graph, a: N_P<Int>, b: N_P<Int>) {
        Foreach (n: G.Nodes) {
            n.a = 0;
        }
        Foreach (n: G.Nodes)(n.a == 0) {
            n.b = 1;
        }
    }";

    #[test]
    fn consecutive_local_states_merge() {
        let unopt = compiled(TWO_LOOP_SRC, false, false);
        let opt = compiled(TWO_LOOP_SRC, true, false);
        assert_eq!(unopt.num_vertex_kernels(), 2);
        assert_eq!(opt.num_vertex_kernels(), 1, "{opt}");
    }

    #[test]
    fn send_boundary_blocks_merging() {
        let src = "Procedure f(G: Graph, a: N_P<Int>) {
            Foreach (n: G.Nodes) {
                Foreach (t: n.Nbrs) {
                    t.a += 1;
                }
            }
            Foreach (n: G.Nodes) {
                n.a += 1;
            }
        }";
        let opt = compiled(src, true, false);
        // Send state cannot merge with the recv-bearing state after it.
        assert_eq!(opt.num_vertex_kernels(), 2, "{opt}");
    }

    const LOOP_SRC: &str = "Procedure f(G: Graph, x: N_P<Int>, x2: N_P<Int>) {
        Int k = 0;
        While (k < 5) {
            Foreach (n: G.Nodes) {
                Foreach (t: n.Nbrs) {
                    t.x2 += n.x;
                }
            }
            Foreach (n: G.Nodes) {
                n.x = n.x2;
                n.x2 = 0;
            }
            k += 1;
        }
    }";

    #[test]
    fn intra_loop_merging_collapses_two_state_loop() {
        let unopt = compiled(LOOP_SRC, true, false);
        let opt = compiled(LOOP_SRC, true, true);
        // Before: send state + recv/update state per iteration. After: the
        // steady-state loop is a single self-looping state.
        let self_loop = opt.states.iter().enumerate().any(
            |(i, s)| matches!(s.transition, Transition::Branch { then_to, .. } if then_to == i),
        );
        assert!(self_loop, "expected a self-looping merged state:\n{opt}");
        assert!(opt.num_vertex_kernels() <= unopt.num_vertex_kernels());
    }

    #[test]
    fn compact_removes_unreachable() {
        let mut prog = compiled(TWO_LOOP_SRC, true, false);
        let before = prog.states.len();
        compact(&mut prog);
        assert!(prog.states.len() <= before);
        // Entry is preserved and all transitions are in range.
        for s in &prog.states {
            match s.transition {
                Transition::Goto(t) => assert!(t < prog.states.len()),
                Transition::Branch {
                    then_to, else_to, ..
                } => {
                    assert!(then_to < prog.states.len());
                    assert!(else_to < prog.states.len());
                }
                Transition::Halt => {}
            }
        }
    }

    #[test]
    fn reduction_loops_still_merge_when_reset_is_safe() {
        // The reset `_ag = False`-style master write rides into the merged
        // state; folds happen the following superstep.
        let src = "Procedure f(G: Graph, u: N_P<Bool>) : Bool {
            Foreach (n: G.Nodes) {
                n.u = True;
            }
            Bool any = False;
            Foreach (n: G.Nodes)(n.u) {
                any ||= True;
            }
            Return any;
        }";
        let opt = compiled(src, true, false);
        assert_eq!(opt.num_vertex_kernels(), 1, "{opt}");
    }
}
