//! Semantic analysis: scoping, name uniquification, and type checking.
//!
//! The checker walks a procedure, resolves every name against lexical
//! scopes, renames shadowed binders so that names are globally unique within
//! the procedure (later passes can then treat names as identities), and
//! annotates every expression with its [`Ty`].
//!
//! It also enforces the structural constraints the paper assumes: exactly
//! one `Graph` parameter, `UpNbrs`/`DownNbrs` only inside BFS bodies, and
//! `ToEdge()` only on neighborhood iterators.

use crate::ast::*;
use crate::diag::{Diagnostics, Span};
use crate::types::Ty;
use std::collections::HashMap;
use std::collections::HashSet;

/// What kind of binding a name is.
#[derive(Clone, Debug, PartialEq)]
pub enum SymKind {
    /// Procedure parameter.
    Param,
    /// Locally declared variable or property.
    Local,
    /// A `Foreach`/`For`/aggregate iterator together with its source.
    Iterator {
        /// What it iterates.
        source: IterSource,
    },
    /// An `InBFS` traversal iterator.
    BfsIter,
}

/// Resolved information about one (uniquified) name.
#[derive(Clone, Debug, PartialEq)]
pub struct SymbolInfo {
    /// The declared or inferred type.
    pub ty: Ty,
    /// Binding kind.
    pub kind: SymKind,
}

/// Per-procedure results of semantic analysis.
#[derive(Clone, Debug, Default)]
pub struct ProcInfo {
    /// The unique graph parameter's name.
    pub graph: String,
    /// Every binding in the procedure, keyed by its unique name.
    pub symbols: HashMap<String, SymbolInfo>,
}

impl ProcInfo {
    /// Looks up a symbol.
    pub fn symbol(&self, name: &str) -> Option<&SymbolInfo> {
        self.symbols.get(name)
    }

    /// The type of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown — sema guarantees all names resolve.
    pub fn ty(&self, name: &str) -> &Ty {
        &self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("unknown symbol {name:?}"))
            .ty
    }
}

/// Checks and annotates a whole program in place.
///
/// # Errors
///
/// Returns all semantic errors found.
pub fn check(program: &mut Program) -> Result<Vec<ProcInfo>, Diagnostics> {
    let mut infos = Vec::new();
    let mut diags = Diagnostics::new();
    for proc in &mut program.procedures {
        match check_procedure(proc) {
            Ok(info) => infos.push(info),
            Err(d) => diags.errors.extend(d.errors),
        }
    }
    if diags.has_errors() {
        Err(diags)
    } else {
        Ok(infos)
    }
}

/// Checks and annotates one procedure in place.
///
/// # Errors
///
/// Returns all semantic errors found in the procedure.
pub fn check_procedure(proc: &mut Procedure) -> Result<ProcInfo, Diagnostics> {
    let mut cx = Checker {
        diags: Diagnostics::new(),
        scopes: vec![HashMap::new()],
        used_names: HashSet::new(),
        info: ProcInfo::default(),
        ret: proc.ret.clone(),
        bfs_iters: Vec::new(),
    };

    let graphs: Vec<&Param> = proc.params.iter().filter(|p| p.ty == Ty::Graph).collect();
    if graphs.len() != 1 {
        cx.diags.error(
            proc.span,
            format!(
                "procedure `{}` must take exactly one Graph parameter, found {}",
                proc.name,
                graphs.len()
            ),
        );
        return Err(cx.diags);
    }
    cx.info.graph = graphs[0].name.clone();

    for param in &mut proc.params {
        let unique = cx.bind(&param.name, param.ty.clone(), SymKind::Param, param.span);
        param.name = unique;
    }
    cx.info.graph = cx.resolve_quiet(&cx.info.graph.clone()).unwrap_or_default();
    cx.check_block(&mut proc.body, false);

    if cx.diags.has_errors() {
        Err(cx.diags)
    } else {
        Ok(cx.info)
    }
}

struct Checker {
    diags: Diagnostics,
    /// Lexical scopes mapping source name → unique name.
    scopes: Vec<HashMap<String, String>>,
    /// All unique names handed out so far.
    used_names: HashSet<String>,
    info: ProcInfo,
    ret: Option<Ty>,
    /// BFS iterator names currently in scope (for Up/DownNbrs checks).
    bfs_iters: Vec<String>,
}

impl Checker {
    fn bind(&mut self, name: &str, ty: Ty, kind: SymKind, _span: Span) -> String {
        let unique = if self.used_names.contains(name) {
            let mut k = 2;
            loop {
                let candidate = format!("{name}_{k}");
                if !self.used_names.contains(&candidate) {
                    break candidate;
                }
                k += 1;
            }
        } else {
            name.to_owned()
        };
        self.used_names.insert(unique.clone());
        self.scopes
            .last_mut()
            .expect("at least one scope")
            .insert(name.to_owned(), unique.clone());
        self.info
            .symbols
            .insert(unique.clone(), SymbolInfo { ty, kind });
        unique
    }

    fn resolve_quiet(&self, name: &str) -> Option<String> {
        for scope in self.scopes.iter().rev() {
            if let Some(u) = scope.get(name) {
                return Some(u.clone());
            }
        }
        // Post-transform re-checking: names are already unique and may be
        // referenced before this walk re-binds them only if undeclared —
        // treat an exact symbol-table hit as resolved.
        if self.info.symbols.contains_key(name) {
            return Some(name.to_owned());
        }
        None
    }

    fn resolve(&mut self, name: &str, span: Span) -> Option<(String, SymbolInfo)> {
        match self.resolve_quiet(name) {
            Some(u) => {
                let info = self.info.symbols.get(&u).cloned();
                info.map(|i| (u, i))
            }
            None => {
                self.diags
                    .error(span, format!("undeclared variable `{name}`"));
                None
            }
        }
    }

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn check_block(&mut self, block: &mut Block, new_scope: bool) {
        if new_scope {
            self.push_scope();
        }
        for stmt in &mut block.stmts {
            self.check_stmt(stmt);
        }
        if new_scope {
            self.pop_scope();
        }
    }

    fn check_stmt(&mut self, stmt: &mut Stmt) {
        let span = stmt.span;
        match &mut stmt.kind {
            StmtKind::VarDecl { ty, name, init } => {
                if matches!(ty, Ty::Graph) {
                    self.diags
                        .error(span, "local Graph variables are not supported");
                }
                if let Some(init) = init {
                    if matches!(ty, Ty::NodeProp(_) | Ty::EdgeProp(_)) {
                        self.diags
                            .error(span, "property declarations cannot have initializers");
                    }
                    self.check_expr(init, Some(&ty.clone()));
                }
                let unique = self.bind(name, ty.clone(), SymKind::Local, span);
                *name = unique;
            }
            StmtKind::Assign { target, op, value } => {
                let target_ty = self.check_target(target, span);
                if let Some(tty) = &target_ty {
                    self.check_expr(value, Some(tty));
                    self.check_assign_op(*op, tty, span);
                } else {
                    self.check_expr(value, None);
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expect_bool(cond);
                self.check_block(then_branch, true);
                if let Some(eb) = else_branch {
                    self.check_block(eb, true);
                }
            }
            StmtKind::While { cond, body, .. } => {
                self.expect_bool(cond);
                self.check_block(body, true);
            }
            StmtKind::Foreach(f) => {
                let source = f.source.clone();
                self.check_iter_source(&mut f.source, span);
                self.push_scope();
                let unique = self.bind(
                    &f.iter,
                    Ty::Node,
                    SymKind::Iterator {
                        source: f.source.clone(),
                    },
                    span,
                );
                f.iter = unique;
                let _ = source;
                if let Some(filter) = &mut f.filter {
                    self.expect_bool(filter);
                }
                self.check_block(&mut f.body, false);
                self.pop_scope();
            }
            StmtKind::InBfs(b) => {
                match self.resolve(&b.graph.clone(), span) {
                    Some((unique, info)) if info.ty == Ty::Graph => b.graph = unique,
                    Some(_) => self
                        .diags
                        .error(span, format!("`{}` is not a Graph", b.graph)),
                    None => {}
                }
                self.check_expr(&mut b.root, Some(&Ty::Node));
                self.push_scope();
                let unique = self.bind(&b.iter, Ty::Node, SymKind::BfsIter, span);
                b.iter = unique.clone();
                self.bfs_iters.push(unique);
                self.check_block(&mut b.body, false);
                if let Some(rb) = &mut b.reverse_body {
                    self.check_block(rb, false);
                }
                self.bfs_iters.pop();
                self.pop_scope();
            }
            StmtKind::Return(value) => {
                let expected = self.ret.clone();
                match (value, &expected) {
                    (Some(v), Some(ty)) => {
                        self.check_expr(v, Some(ty));
                    }
                    (Some(v), None) => {
                        self.check_expr(v, None);
                        self.diags
                            .error(span, "procedure has no return type but returns a value");
                    }
                    (None, Some(_)) => {
                        self.diags
                            .error(span, "procedure must return a value of its return type");
                    }
                    (None, None) => {}
                }
            }
            StmtKind::Block(b) => self.check_block(b, true),
        }
    }

    fn check_assign_op(&mut self, op: AssignOp, target_ty: &Ty, span: Span) {
        let ok = match op {
            AssignOp::Assign | AssignOp::Defer => true,
            AssignOp::Add | AssignOp::Sub | AssignOp::Mul => target_ty.is_numeric(),
            AssignOp::Min | AssignOp::Max => target_ty.is_numeric() || *target_ty == Ty::Node,
            AssignOp::And | AssignOp::Or => *target_ty == Ty::Bool,
        };
        if !ok {
            self.diags.error(
                span,
                format!("reduction operator not applicable to target of type {target_ty}"),
            );
        }
    }

    /// Resolves an assignment target, returning the type being written.
    fn check_target(&mut self, target: &mut Target, span: Span) -> Option<Ty> {
        match target {
            Target::Scalar(name) => {
                let (unique, info) = self.resolve(&name.clone(), span)?;
                *name = unique;
                match info.kind {
                    SymKind::Iterator { .. } | SymKind::BfsIter => {
                        self.diags
                            .error(span, format!("cannot assign to iterator `{name}`"));
                        None
                    }
                    _ if matches!(info.ty, Ty::NodeProp(_) | Ty::EdgeProp(_)) => {
                        self.diags.error(
                            span,
                            "cannot assign a property wholesale; use `G.prop = value`",
                        );
                        None
                    }
                    _ => Some(info.ty),
                }
            }
            Target::Prop { obj, prop } => {
                let (obj_unique, obj_info) = self.resolve(&obj.clone(), span)?;
                *obj = obj_unique;
                let (prop_unique, prop_info) = self.resolve(&prop.clone(), span)?;
                *prop = prop_unique;
                match (&obj_info.ty, &prop_info.ty) {
                    (Ty::Node, Ty::NodeProp(inner)) => Some((**inner).clone()),
                    (Ty::Edge, Ty::EdgeProp(inner)) => Some((**inner).clone()),
                    (Ty::Graph, Ty::NodeProp(inner)) => {
                        // Bulk assignment target (desugared by normalize;
                        // still typed here for pre-normalize checking).
                        Some((**inner).clone())
                    }
                    (obj_ty, prop_ty) => {
                        self.diags.error(
                            span,
                            format!("cannot access property of type {prop_ty} through {obj_ty}"),
                        );
                        None
                    }
                }
            }
        }
    }

    fn check_iter_source(&mut self, source: &mut IterSource, span: Span) {
        match source {
            IterSource::Nodes { graph } => {
                if let Some((unique, info)) = self.resolve(&graph.clone(), span) {
                    if info.ty != Ty::Graph {
                        self.diags.error(span, format!("`{graph}` is not a Graph"));
                    }
                    *graph = unique;
                }
            }
            IterSource::OutNbrs { of } | IterSource::InNbrs { of } => {
                if let Some((unique, info)) = self.resolve(&of.clone(), span) {
                    if info.ty != Ty::Node {
                        self.diags.error(span, format!("`{of}` is not a Node"));
                    }
                    *of = unique;
                }
            }
            IterSource::UpNbrs { of } | IterSource::DownNbrs { of } => {
                if let Some((unique, info)) = self.resolve(&of.clone(), span) {
                    if info.ty != Ty::Node {
                        self.diags.error(span, format!("`{of}` is not a Node"));
                    }
                    if info.kind != SymKind::BfsIter || !self.bfs_iters.contains(&unique) {
                        self.diags
                            .error(span, "UpNbrs/DownNbrs require the enclosing InBFS iterator");
                    }
                    *of = unique;
                }
            }
        }
    }

    fn expect_bool(&mut self, e: &mut Expr) {
        if let Some(ty) = self.check_expr(e, Some(&Ty::Bool)) {
            if ty != Ty::Bool {
                self.diags
                    .error(e.span, format!("expected Bool condition, found {ty}"));
            }
        }
    }

    /// Type-checks `e`, annotating `e.ty`. `expected` guides the typing of
    /// context-dependent literals (`INF`, `NIL`).
    fn check_expr(&mut self, e: &mut Expr, expected: Option<&Ty>) -> Option<Ty> {
        let span = e.span;
        let ty: Option<Ty> = match &mut e.kind {
            ExprKind::IntLit(_) => Some(Ty::Int),
            ExprKind::FloatLit(_) => Some(Ty::Double),
            ExprKind::BoolLit(_) => Some(Ty::Bool),
            ExprKind::Inf { .. } => match expected {
                Some(t) if t.is_numeric() => Some(t.clone()),
                _ => {
                    self.diags
                        .error(span, "cannot infer the numeric type of INF here");
                    None
                }
            },
            ExprKind::Nil => Some(Ty::Node),
            ExprKind::Var(name) => {
                let resolved = self.resolve(&name.clone(), span);
                match resolved {
                    Some((unique, info)) => {
                        *name = unique;
                        Some(info.ty)
                    }
                    None => None,
                }
            }
            ExprKind::Prop { obj, prop } => {
                let obj_r = self.resolve(&obj.clone(), span);
                let prop_r = self.resolve(&prop.clone(), span);
                match (obj_r, prop_r) {
                    (Some((ou, oi)), Some((pu, pi))) => {
                        *obj = ou;
                        *prop = pu;
                        match (&oi.ty, &pi.ty) {
                            (Ty::Node, Ty::NodeProp(inner)) => Some((**inner).clone()),
                            (Ty::Edge, Ty::EdgeProp(inner)) => Some((**inner).clone()),
                            (ot, pt) => {
                                self.diags.error(
                                    span,
                                    format!("cannot read property of type {pt} through {ot}"),
                                );
                                None
                            }
                        }
                    }
                    _ => None,
                }
            }
            ExprKind::Unary { op, expr } => {
                let op = *op;
                let inner_expected = match op {
                    UnOp::Not => Some(Ty::Bool),
                    UnOp::Neg | UnOp::Abs => expected.cloned().filter(|t| t.is_numeric()),
                };
                let t = self.check_expr(expr, inner_expected.as_ref())?;
                match op {
                    UnOp::Not if t == Ty::Bool => Some(Ty::Bool),
                    UnOp::Neg | UnOp::Abs if t.is_numeric() => Some(t),
                    _ => {
                        self.diags
                            .error(span, format!("unary operator not applicable to {t}"));
                        None
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let op = *op;
                let operand_expected: Option<Ty> = match op {
                    BinOp::And | BinOp::Or => Some(Ty::Bool),
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => None,
                    _ => expected.cloned().filter(|t| t.is_numeric()),
                };
                // For comparisons with INF/NIL on one side, type the other
                // side first and use it as the expectation.
                let lt;
                let rt;
                if matches!(lhs.kind, ExprKind::Inf { .. } | ExprKind::Nil)
                    && !matches!(rhs.kind, ExprKind::Inf { .. } | ExprKind::Nil)
                {
                    rt = self.check_expr(rhs, operand_expected.as_ref());
                    lt = self.check_expr(lhs, rt.as_ref().or(operand_expected.as_ref()));
                } else {
                    lt = self.check_expr(lhs, operand_expected.as_ref());
                    rt = self.check_expr(rhs, lt.as_ref().or(operand_expected.as_ref()));
                }
                let (lt, rt) = (lt?, rt?);
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        match lt.join_numeric(&rt) {
                            Some(t) => Some(t),
                            None => {
                                self.diags.error(
                                    span,
                                    format!(
                                        "arithmetic requires numeric operands, found {lt} and {rt}"
                                    ),
                                );
                                None
                            }
                        }
                    }
                    BinOp::Mod => {
                        if lt.is_integer() && rt.is_integer() {
                            Some(lt)
                        } else {
                            self.diags.error(span, "% requires integer operands");
                            None
                        }
                    }
                    BinOp::Eq | BinOp::Ne => {
                        let compatible = lt.join_numeric(&rt).is_some()
                            || (lt == rt && matches!(lt, Ty::Bool | Ty::Node | Ty::Edge));
                        if !compatible {
                            self.diags
                                .error(span, format!("cannot compare {lt} with {rt}"));
                        }
                        Some(Ty::Bool)
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if lt.join_numeric(&rt).is_none() {
                            self.diags.error(
                                span,
                                format!("ordering requires numeric operands, found {lt} and {rt}"),
                            );
                        }
                        Some(Ty::Bool)
                    }
                    BinOp::And | BinOp::Or => {
                        if lt != Ty::Bool || rt != Ty::Bool {
                            self.diags
                                .error(span, "logical operators require Bool operands");
                        }
                        Some(Ty::Bool)
                    }
                }
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                self.expect_bool(cond);
                let tt = self.check_expr(then_val, expected);
                let et = self.check_expr(else_val, expected.or(tt.as_ref()));
                match (tt, et) {
                    (Some(a), Some(b)) => {
                        if a == b {
                            Some(a)
                        } else if let Some(j) = a.join_numeric(&b) {
                            Some(j)
                        } else {
                            self.diags.error(
                                span,
                                format!("ternary branches have incompatible types {a} and {b}"),
                            );
                            None
                        }
                    }
                    _ => None,
                }
            }
            ExprKind::Agg(agg) => {
                self.check_iter_source(&mut agg.source, span);
                self.push_scope();
                let unique = self.bind(
                    &agg.iter.clone(),
                    Ty::Node,
                    SymKind::Iterator {
                        source: agg.source.clone(),
                    },
                    span,
                );
                agg.iter = unique;
                if let Some(f) = &mut agg.filter {
                    self.expect_bool(f);
                }
                let body_ty = agg.body.as_mut().map(|b| self.check_expr(b, None));
                self.pop_scope();
                match agg.kind {
                    AggKind::Count => Some(Ty::Int),
                    AggKind::Exist | AggKind::All => {
                        // The condition may live in the body slot.
                        if let Some(Some(t)) = &body_ty {
                            if *t != Ty::Bool {
                                self.diags.error(span, "Exist/All condition must be Bool");
                            }
                        } else if agg.filter.is_none() {
                            self.diags.error(span, "Exist/All require a condition");
                        }
                        Some(Ty::Bool)
                    }
                    AggKind::Avg => Some(Ty::Double),
                    AggKind::Sum | AggKind::Product | AggKind::Max | AggKind::Min => {
                        match body_ty {
                            Some(Some(t)) if t.is_numeric() => Some(t),
                            Some(Some(t)) => {
                                self.diags.error(
                                    span,
                                    format!(
                                        "{} requires a numeric body, found {t}",
                                        agg.kind.name()
                                    ),
                                );
                                None
                            }
                            _ => None,
                        }
                    }
                }
            }
            ExprKind::Call { obj, method, args } => {
                let method_name = method.clone();
                for a in args.iter_mut() {
                    self.check_expr(a, None);
                }
                if !args.is_empty() {
                    self.diags
                        .error(span, format!("built-in `{method_name}` takes no arguments"));
                }
                let resolved = self.resolve(&obj.clone(), span);
                match resolved {
                    Some((unique, info)) => {
                        *obj = unique.clone();
                        match (info.ty.clone(), method_name.as_str()) {
                            (Ty::Graph, "NumNodes") | (Ty::Graph, "NumEdges") => Some(Ty::Int),
                            (Ty::Graph, "PickRandom") => Some(Ty::Node),
                            (Ty::Node, "Degree")
                            | (Ty::Node, "OutDegree")
                            | (Ty::Node, "NumNbrs") => Some(Ty::Int),
                            (Ty::Node, "InDegree") => Some(Ty::Int),
                            (Ty::Node, "ToEdge") => {
                                let is_nbr_iter = matches!(
                                    info.kind,
                                    SymKind::Iterator { ref source } if source.is_neighborhood()
                                );
                                if !is_nbr_iter {
                                    self.diags.error(
                                        span,
                                        "ToEdge() is only available on neighborhood iterators",
                                    );
                                }
                                Some(Ty::Edge)
                            }
                            (ty, m) => {
                                self.diags.error(
                                    span,
                                    format!("unknown built-in `{m}` on receiver of type {ty}"),
                                );
                                None
                            }
                        }
                    }
                    None => None,
                }
            }
        };
        e.ty = ty.clone();
        ty
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(Program, Vec<ProcInfo>), Diagnostics> {
        let mut p = parse(src).expect("parse failed");
        let infos = check(&mut p)?;
        Ok((p, infos))
    }

    fn check_err(src: &str) -> Diagnostics {
        match check_src(src) {
            Ok(_) => panic!("expected semantic error"),
            Err(d) => d,
        }
    }

    #[test]
    fn simple_procedure_checks() {
        let (_, infos) = check_src(
            "Procedure f(G: Graph, age: N_P<Int>, K: Int) : Int {
                Int s = 0;
                Foreach (n: G.Nodes)(n.age > K) {
                    s += n.age;
                }
                Return s;
            }",
        )
        .unwrap();
        assert_eq!(infos[0].graph, "G");
        assert_eq!(*infos[0].ty("s"), Ty::Int);
        assert!(matches!(
            infos[0].symbol("n").unwrap().kind,
            SymKind::Iterator { .. }
        ));
    }

    #[test]
    fn shadowed_names_are_uniquified() {
        let (p, infos) = check_src(
            "Procedure f(G: Graph, x: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    n.x = 0;
                }
                Foreach (n: G.Nodes) {
                    n.x = 1;
                }
            }",
        )
        .unwrap();
        // The two loop iterators got distinct names.
        let (a, b) = match (
            &p.procedures[0].body.stmts[0].kind,
            &p.procedures[0].body.stmts[1].kind,
        ) {
            (StmtKind::Foreach(a), StmtKind::Foreach(b)) => (a.iter.clone(), b.iter.clone()),
            other => panic!("unexpected {other:?}"),
        };
        assert_ne!(a, b);
        assert!(infos[0].symbol(&a).is_some());
        assert!(infos[0].symbol(&b).is_some());
    }

    #[test]
    fn inf_types_from_context() {
        let (p, _) = check_src(
            "Procedure f(G: Graph, dist: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    n.dist = INF;
                }
            }",
        )
        .unwrap();
        match &p.procedures[0].body.stmts[0].kind {
            StmtKind::Foreach(f) => match &f.body.stmts[0].kind {
                StmtKind::Assign { value, .. } => assert_eq!(value.ty, Some(Ty::Int)),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inf_in_comparison_takes_other_side_type() {
        let (p, _) = check_src(
            "Procedure f(G: Graph, dist: N_P<Int>) {
                Foreach (n: G.Nodes)(n.dist == INF) {
                    n.dist = 0;
                }
            }",
        )
        .unwrap();
        match &p.procedures[0].body.stmts[0].kind {
            StmtKind::Foreach(f) => {
                let filter = f.filter.as_ref().unwrap();
                match &filter.kind {
                    ExprKind::Binary { rhs, .. } => assert_eq!(rhs.ty, Some(Ty::Int)),
                    other => panic!("unexpected {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undeclared_variable_is_reported() {
        let d = check_err("Procedure f(G: Graph) { x = 1; }");
        assert!(d.to_string().contains("undeclared"));
    }

    #[test]
    fn two_graphs_rejected() {
        let d = check_err("Procedure f(G: Graph, H: Graph) { }");
        assert!(d.to_string().contains("exactly one Graph"));
    }

    #[test]
    fn up_nbrs_outside_bfs_rejected() {
        let d = check_err(
            "Procedure f(G: Graph, x: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (t: n.UpNbrs) {
                        n.x += 1;
                    }
                }
            }",
        );
        assert!(d.to_string().contains("InBFS"));
    }

    #[test]
    fn up_nbrs_inside_bfs_accepted() {
        check_src(
            "Procedure f(G: Graph, s: Node, sigma: N_P<Double>) {
                InBFS (v: G.Nodes From s) {
                    v.sigma = Sum(w: v.UpNbrs){w.sigma};
                }
            }",
        )
        .unwrap();
    }

    #[test]
    fn to_edge_requires_neighbor_iterator() {
        let d = check_err(
            "Procedure f(G: Graph, len: E_P<Int>, x: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Edge e = n.ToEdge();
                    n.x = 1;
                }
            }",
        );
        assert!(d.to_string().contains("ToEdge"));
        check_src(
            "Procedure f(G: Graph, len: E_P<Int>, d: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (s: n.Nbrs) {
                        Edge e = s.ToEdge();
                        s.d min= n.d + e.len;
                    }
                }
            }",
        )
        .unwrap();
    }

    #[test]
    fn iterator_assignment_rejected() {
        let d = check_err(
            "Procedure f(G: Graph) {
                Foreach (n: G.Nodes) {
                    n = NIL;
                }
            }",
        );
        assert!(d.to_string().contains("iterator"));
    }

    #[test]
    fn reduction_op_type_rules() {
        let d = check_err(
            "Procedure f(G: Graph, flag: N_P<Bool>) {
                Foreach (n: G.Nodes) {
                    n.flag += 1;
                }
            }",
        );
        assert!(d.to_string().contains("reduction operator"));
    }

    #[test]
    fn node_comparison_with_nil() {
        check_src(
            "Procedure f(G: Graph, m: N_P<Node>, c: N_P<Int>) {
                Foreach (n: G.Nodes)(n.m == NIL) {
                    n.c = 1;
                }
            }",
        )
        .unwrap();
    }

    #[test]
    fn return_type_mismatch() {
        let d = check_err("Procedure f(G: Graph) : Int { Return; }");
        assert!(d.to_string().contains("return"));
    }

    #[test]
    fn aggregate_bodies_typed() {
        let (p, _) = check_src(
            "Procedure f(G: Graph, pr: N_P<Double>) : Double {
                Double s = Sum(n: G.Nodes){n.pr / n.Degree()};
                Return s;
            }",
        )
        .unwrap();
        match &p.procedures[0].body.stmts[0].kind {
            StmtKind::VarDecl { init, .. } => {
                assert_eq!(init.as_ref().unwrap().ty, Some(Ty::Double));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exist_with_condition_in_filter_slot() {
        check_src(
            "Procedure f(G: Graph, updated: N_P<Bool>) : Bool {
                Bool fin = !Exist(n: G.Nodes)(n.updated);
                Return fin;
            }",
        )
        .unwrap();
    }

    #[test]
    fn bulk_target_through_graph_is_typed() {
        // Pre-normalize form: G.dist = 0 is accepted by sema (normalize
        // rewrites it into a Foreach before translation).
        check_src(
            "Procedure f(G: Graph, dist: N_P<Int>) {
                G.dist = 0;
            }",
        )
        .unwrap();
    }

    #[test]
    fn rechecking_is_idempotent() {
        let src = "Procedure f(G: Graph, age: N_P<Int>, K: Int) : Int {
            Int s = 0;
            Foreach (n: G.Nodes)(n.age > K) {
                s += n.age;
            }
            Return s;
        }";
        let mut p = parse(src).unwrap();
        check(&mut p).unwrap();
        let printed1 = crate::pretty::program_to_string(&p);
        check(&mut p).unwrap();
        let printed2 = crate::pretty::program_to_string(&p);
        assert_eq!(printed1, printed2);
    }
}
