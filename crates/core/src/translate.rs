//! Translation of Pregel-canonical Green-Marl into the [`crate::pir`] state
//! machine (§3.1 of the paper).
//!
//! The walk mirrors the paper's rules:
//!
//! * **State machine construction** — sequential statements accumulate into
//!   the master code of the next state; every parallel `Foreach` seals one
//!   vertex state. `While`/branching `If` become master-only junction
//!   states (free at runtime, since the master executes through them inside
//!   one `master.compute` call).
//! * **Vertex and global object construction** — scalars declared in
//!   sequential code become master globals (broadcast on demand, reduced
//!   via the aggregation map); properties become vertex fields.
//! * **Neighborhood communication** — an inner loop becomes a send in this
//!   state plus a receive handler in the next vertex state; the payload is
//!   inferred by dataflow (sender-scoped reads of the receive-side code).
//! * **Multiple communication** — each send site gets its own message tag.
//! * **Random writing** — writes through non-iterator node variables become
//!   `sendToVertex` messages carrying the reduced value.
//! * **Edge properties** — reads through `ToEdge()` locals are evaluated
//!   per edge at send time and shipped in the payload.
//! * **Incoming neighbors** (§4.3) — a send along in-edges switches on the
//!   two-superstep preamble that materializes each vertex's in-neighbor
//!   array.

use crate::ast::*;
use crate::diag::{Diagnostics, Span};
use crate::pir::*;
use crate::report::{Step, TransformReport};
use crate::sema::ProcInfo;
use crate::types::Ty;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// Translates a canonical procedure into a [`PregelProgram`].
///
/// # Errors
///
/// Returns diagnostics for constructs that slipped past the canonical check
/// (defensive; the public pipeline runs [`crate::canonical`] first).
pub fn translate(
    proc: &Procedure,
    info: &ProcInfo,
    report: &mut TransformReport,
) -> Result<PregelProgram, Diagnostics> {
    let graph = info.graph.clone();
    let mut tx = Tx {
        info,
        graph: graph.clone(),
        globals: Vec::new(),
        global_set: HashSet::new(),
        node_props: Vec::new(),
        edge_props: Vec::new(),
        prop_set: HashSet::new(),
        vertex_locals: HashSet::new(),
        states: Vec::new(),
        pending_master: Vec::new(),
        pending_recvs: Vec::new(),
        unresolved: Vec::new(),
        messages: Vec::new(),
        uses_in_nbrs: false,
        diags: Diagnostics::new(),
    };

    // Parameters.
    let mut scalar_params = Vec::new();
    for p in &proc.params {
        match &p.ty {
            Ty::Graph => {}
            Ty::NodeProp(inner) => {
                tx.node_props.push((p.name.clone(), (**inner).clone()));
                tx.prop_set.insert(p.name.clone());
            }
            Ty::EdgeProp(inner) => {
                tx.edge_props.push((p.name.clone(), (**inner).clone()));
                tx.prop_set.insert(p.name.clone());
            }
            scalar => {
                scalar_params.push((p.name.clone(), scalar.clone()));
                tx.globals.push((p.name.clone(), scalar.clone()));
                tx.global_set.insert(p.name.clone());
            }
        }
    }

    tx.build_block(&proc.body);
    tx.finalize();

    if tx.diags.has_errors() {
        return Err(tx.diags);
    }

    let num_tags = tx.messages.len();
    let mut program = PregelProgram {
        name: proc.name.clone(),
        graph_param: graph,
        scalar_params,
        node_props: tx.node_props,
        edge_props: tx.edge_props,
        globals: tx.globals,
        messages: tx.messages,
        uses_in_nbrs: tx.uses_in_nbrs,
        combinable: vec![None; num_tags],
        ret: proc.ret.clone(),
        pullable: vec![],
        states: tx.states,
    };

    // `InDegree()` in vertex code also needs the in-neighbor array: GPS
    // vertices only know their out-edges.
    if !program.uses_in_nbrs && program_calls_in_degree(&program) {
        program.uses_in_nbrs = true;
    }
    if program.uses_in_nbrs {
        prepend_in_nbrs_preamble(&mut program);
        report.record(Step::IncomingNeighbors);
    }

    // Table 3 bookkeeping.
    report.record(Step::StateMachine);
    report.record(Step::MessageClassGen);
    if !program.globals.is_empty() {
        report.record(Step::GlobalObject);
    }
    if program.needs_tag_byte() {
        report.record(Step::MultipleComm);
    }
    if program
        .states
        .iter()
        .flat_map(|s| s.vertex.iter())
        .any(|k| kernel_has_send_to(&k.body))
    {
        report.record(Step::RandomWriting);
    }
    if program_reads_edge_props(&program) {
        report.record(Step::EdgeProperty);
    }

    Ok(program)
}

/// Whether any vertex kernel calls `InDegree()`.
fn program_calls_in_degree(program: &PregelProgram) -> bool {
    fn expr_has(e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Call { method, .. } => method == "InDegree",
            ExprKind::Unary { expr, .. } => expr_has(expr),
            ExprKind::Binary { lhs, rhs, .. } => expr_has(lhs) || expr_has(rhs),
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => expr_has(cond) || expr_has(then_val) || expr_has(else_val),
            _ => false,
        }
    }
    fn instrs_have(instrs: &[VInstr]) -> bool {
        instrs.iter().any(|i| match i {
            VInstr::Local { value, .. }
            | VInstr::WriteOwn { value, .. }
            | VInstr::ReduceGlobal { value, .. } => expr_has(value),
            VInstr::SendToNbrs { payload, .. } | VInstr::SendToInNbrs { payload, .. } => {
                payload.iter().any(expr_has)
            }
            VInstr::SendTo { dst, payload, .. } => expr_has(dst) || payload.iter().any(expr_has),
            VInstr::SendIdToNbrs => false,
            VInstr::If {
                cond,
                then_branch,
                else_branch,
            } => expr_has(cond) || instrs_have(then_branch) || instrs_have(else_branch),
        })
    }
    program
        .states
        .iter()
        .flat_map(|s| s.vertex.iter())
        .any(|k| {
            k.filter.as_ref().is_some_and(expr_has)
                || instrs_have(&k.body)
                || k.recvs.iter().any(|r| {
                    r.guard.as_ref().is_some_and(expr_has)
                        || r.steps.iter().any(|s| {
                            s.guard.as_ref().is_some_and(expr_has)
                                || match &s.action {
                                    RecvAction::WriteOwn { value, .. }
                                    | RecvAction::ReduceGlobal { value, .. } => expr_has(value),
                                    RecvAction::StoreInNbr => false,
                                }
                        })
                })
        })
}

/// Whether any send payload reads the connecting edge's properties.
fn program_reads_edge_props(program: &PregelProgram) -> bool {
    fn expr_has(e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Prop { obj, .. } => obj == EDGE,
            ExprKind::Unary { expr, .. } => expr_has(expr),
            ExprKind::Binary { lhs, rhs, .. } => expr_has(lhs) || expr_has(rhs),
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => expr_has(cond) || expr_has(then_val) || expr_has(else_val),
            _ => false,
        }
    }
    fn instrs_have(instrs: &[VInstr]) -> bool {
        instrs.iter().any(|i| match i {
            VInstr::SendToNbrs { payload, .. } => payload.iter().any(expr_has),
            VInstr::If {
                then_branch,
                else_branch,
                ..
            } => instrs_have(then_branch) || instrs_have(else_branch),
            _ => false,
        })
    }
    program
        .states
        .iter()
        .flat_map(|s| s.vertex.iter())
        .any(|k| instrs_have(&k.body))
}

/// Converts a deferred own-write into a plain one when no later
/// instruction in the same kernel body reads the property — the common
/// case (PageRank's `t.pr <= val` is the final touch of `pr`), and a
/// precondition for the state-merging optimizations, which fuse later code
/// into the same kernel.
fn demote_safe_defers(body: &mut [VInstr]) {
    fn expr_reads_prop(e: &Expr, prop: &str) -> bool {
        match &e.kind {
            ExprKind::Prop { prop: p, .. } => p == prop,
            ExprKind::Unary { expr, .. } => expr_reads_prop(expr, prop),
            ExprKind::Binary { lhs, rhs, .. } => {
                expr_reads_prop(lhs, prop) || expr_reads_prop(rhs, prop)
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                expr_reads_prop(cond, prop)
                    || expr_reads_prop(then_val, prop)
                    || expr_reads_prop(else_val, prop)
            }
            ExprKind::Call { args, .. } => args.iter().any(|a| expr_reads_prop(a, prop)),
            _ => false,
        }
    }
    fn instrs_read_prop(instrs: &[VInstr], prop: &str) -> bool {
        instrs.iter().any(|i| match i {
            VInstr::Local { value, .. }
            | VInstr::WriteOwn { value, .. }
            | VInstr::ReduceGlobal { value, .. } => expr_reads_prop(value, prop),
            VInstr::SendToNbrs { payload, .. } | VInstr::SendToInNbrs { payload, .. } => {
                payload.iter().any(|p| expr_reads_prop(p, prop))
            }
            VInstr::SendTo { dst, payload, .. } => {
                expr_reads_prop(dst, prop) || payload.iter().any(|p| expr_reads_prop(p, prop))
            }
            VInstr::SendIdToNbrs => false,
            VInstr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                expr_reads_prop(cond, prop)
                    || instrs_read_prop(then_branch, prop)
                    || instrs_read_prop(else_branch, prop)
            }
        })
    }
    for i in 0..body.len() {
        let prop = match &body[i] {
            VInstr::WriteOwn {
                prop,
                op: AssignOp::Defer,
                ..
            } => prop.clone(),
            _ => continue,
        };
        if !instrs_read_prop(&body[i + 1..], &prop) {
            if let VInstr::WriteOwn { op, .. } = &mut body[i] {
                *op = AssignOp::Assign;
            }
        }
    }
    // Defers nested under Ifs are left untouched (conservative).
}

fn kernel_has_send_to(body: &[VInstr]) -> bool {
    body.iter().any(|i| match i {
        VInstr::SendTo { .. } => true,
        VInstr::If {
            then_branch,
            else_branch,
            ..
        } => kernel_has_send_to(then_branch) || kernel_has_send_to(else_branch),
        _ => false,
    })
}

/// Inserts the two in-neighbor-construction states at the front and shifts
/// all state ids by two.
fn prepend_in_nbrs_preamble(program: &mut PregelProgram) {
    for state in &mut program.states {
        match &mut state.transition {
            Transition::Goto(t) => *t += 2,
            Transition::Branch {
                then_to, else_to, ..
            } => {
                *then_to += 2;
                *else_to += 2;
            }
            Transition::Halt => {}
        }
    }
    let collect = State {
        master: vec![],
        vertex: Some(VertexKernel {
            recvs: vec![RecvHandler {
                tag: IN_NBRS_TAG,
                guard: None,
                steps: vec![RecvStep {
                    guard: None,
                    action: RecvAction::StoreInNbr,
                }],
            }],
            filter: None,
            body: vec![],
            reads_globals: vec![],
        }),
        post: vec![],
        transition: Transition::Goto(2),
    };
    let send_ids = State {
        master: vec![],
        vertex: Some(VertexKernel {
            recvs: vec![],
            filter: None,
            body: vec![VInstr::SendIdToNbrs],
            reads_globals: vec![],
        }),
        post: vec![],
        transition: Transition::Goto(1),
    };
    program.states.insert(0, collect);
    program.states.insert(0, send_ids);
}

/// Which transition slot of a state is awaiting its successor id.
#[derive(Clone, Copy, Debug)]
enum Slot {
    Goto,
    BranchThen,
    BranchElse,
}

struct Tx<'a> {
    info: &'a ProcInfo,
    graph: String,
    globals: Vec<(String, Ty)>,
    global_set: HashSet<String>,
    node_props: Vec<(String, Ty)>,
    edge_props: Vec<(String, Ty)>,
    prop_set: HashSet<String>,
    vertex_locals: HashSet<String>,
    states: Vec<State>,
    pending_master: Vec<MInstr>,
    pending_recvs: Vec<RecvHandler>,
    unresolved: Vec<(StateId, Slot)>,
    messages: Vec<MessageLayout>,
    uses_in_nbrs: bool,
    diags: Diagnostics,
}

impl Tx<'_> {
    fn error(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.error(span, msg);
    }

    // ---- state machine assembly ----

    fn resolve_links_to(&mut self, id: StateId) {
        let mut bad: Option<(StateId, Slot)> = None;
        for (state, slot) in self.unresolved.drain(..) {
            let t = &mut self.states[state].transition;
            match (slot, t) {
                (Slot::Goto, t) => *t = Transition::Goto(id),
                (Slot::BranchThen, Transition::Branch { then_to, .. }) => *then_to = id,
                (Slot::BranchElse, Transition::Branch { else_to, .. }) => *else_to = id,
                // A branch slot recorded against a non-branch transition is
                // an internal linker bug; report it instead of panicking so
                // the user sees a diagnostic (the dangling placeholder
                // target is then caught again by the PIR verifier).
                (slot, _) => bad = Some((state, slot)),
            }
        }
        if let Some((state, slot)) = bad {
            let t = &self.states[state].transition;
            self.error(
                Span::synthetic(),
                format!(
                    "internal compiler error: transition slot {slot:?} of state {state} \
                     cannot be patched into {t:?}"
                ),
            );
        }
    }

    /// Pushes a state, wiring all unresolved predecessors to it. The new
    /// state becomes the unresolved predecessor of whatever comes next
    /// (unless it branches, in which case the caller manages slots).
    fn push_state(&mut self, mut state: State) -> StateId {
        let id = self.states.len();
        self.resolve_links_to(id);
        // Compute aggregate folds for this state's kernel.
        if let Some(kernel) = &state.vertex {
            state.post = fold_instrs(kernel);
        }
        let branches = matches!(state.transition, Transition::Branch { .. });
        self.states.push(state);
        if !branches {
            self.unresolved.push((id, Slot::Goto));
        }
        id
    }

    /// Seals a vertex state: pending master code + pending receive handlers
    /// + the given kernel parts.
    fn seal_vertex_state(&mut self, mut kernel: VertexKernel) -> StateId {
        kernel.recvs = std::mem::take(&mut self.pending_recvs);
        demote_safe_defers(&mut kernel.body);
        kernel.reads_globals = self.kernel_global_reads(&kernel);
        let master = std::mem::take(&mut self.pending_master);
        self.push_state(State {
            master,
            vertex: Some(kernel),
            post: vec![],
            transition: Transition::Halt, // patched via unresolved links
        })
    }

    /// Ensures pending receive handlers and master code are housed in a
    /// state (used before junctions and at loop ends).
    fn flush_pending(&mut self) {
        if !self.pending_recvs.is_empty() {
            self.seal_vertex_state(VertexKernel::default());
        } else if !self.pending_master.is_empty() {
            let master = std::mem::take(&mut self.pending_master);
            self.push_state(State {
                master,
                vertex: None,
                post: vec![],
                transition: Transition::Halt,
            });
        }
    }

    fn finalize(&mut self) {
        self.flush_pending();
        // Terminal state (possibly empty): everything halts here.
        let id = self.states.len();
        self.resolve_links_to(id);
        self.states.push(State {
            master: vec![],
            vertex: None,
            post: vec![],
            transition: Transition::Halt,
        });
    }

    // ---- sequential walk ----

    fn build_block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            self.build_stmt(stmt);
        }
    }

    fn build_stmt(&mut self, stmt: &Stmt) {
        let span = stmt.span;
        match &stmt.kind {
            StmtKind::VarDecl { ty, name, init } => match ty {
                Ty::NodeProp(inner) => {
                    if self.prop_set.insert(name.clone()) {
                        self.node_props.push((name.clone(), (**inner).clone()));
                    }
                }
                Ty::EdgeProp(inner) => {
                    if self.prop_set.insert(name.clone()) {
                        self.edge_props.push((name.clone(), (**inner).clone()));
                    }
                }
                scalar => {
                    if self.global_set.insert(name.clone()) {
                        self.globals.push((name.clone(), scalar.clone()));
                    }
                    let value = init.clone().unwrap_or_else(|| default_expr_for(scalar));
                    self.pending_master.push(MInstr::Assign {
                        name: name.clone(),
                        op: AssignOp::Assign,
                        value,
                    });
                }
            },
            StmtKind::Assign { target, op, value } => match target {
                Target::Scalar(name) => {
                    self.pending_master.push(MInstr::Assign {
                        name: name.clone(),
                        op: *op,
                        value: value.clone(),
                    });
                }
                Target::Prop { .. } => {
                    self.error(span, "sequential random access reached translation");
                }
            },
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if is_pure_master(then_branch) && else_branch.as_ref().is_none_or(is_pure_master) {
                    let then_instrs = self.master_block(then_branch);
                    let else_instrs = else_branch
                        .as_ref()
                        .map(|b| self.master_block(b))
                        .unwrap_or_default();
                    self.pending_master.push(MInstr::If {
                        cond: cond.clone(),
                        then_branch: then_instrs,
                        else_branch: else_instrs,
                    });
                } else {
                    self.build_branching_if(cond, then_branch, else_branch.as_ref());
                }
            }
            StmtKind::While { cond, body, .. } => self.build_while(cond, body),
            StmtKind::Foreach(f) => self.build_vertex_loop(f, span),
            StmtKind::Return(e) => {
                self.pending_master.push(MInstr::SetReturn(e.clone()));
            }
            StmtKind::InBfs(_) => self.error(span, "InBFS reached translation"),
            StmtKind::Block(b) => self.build_block(b),
        }
    }

    /// Pure-master statements (no loops inside) as master instructions.
    fn master_block(&mut self, block: &Block) -> Vec<MInstr> {
        let mut out = Vec::new();
        for stmt in &block.stmts {
            match &stmt.kind {
                StmtKind::VarDecl { ty, name, init } => {
                    if ty.is_value() {
                        if self.global_set.insert(name.clone()) {
                            self.globals.push((name.clone(), ty.clone()));
                        }
                        out.push(MInstr::Assign {
                            name: name.clone(),
                            op: AssignOp::Assign,
                            value: init.clone().unwrap_or_else(|| default_expr_for(ty)),
                        });
                    } else {
                        self.error(stmt.span, "property declaration in a master branch");
                    }
                }
                StmtKind::Assign {
                    target: Target::Scalar(name),
                    op,
                    value,
                } => out.push(MInstr::Assign {
                    name: name.clone(),
                    op: *op,
                    value: value.clone(),
                }),
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let t = self.master_block(then_branch);
                    let e = else_branch
                        .as_ref()
                        .map(|b| self.master_block(b))
                        .unwrap_or_default();
                    out.push(MInstr::If {
                        cond: cond.clone(),
                        then_branch: t,
                        else_branch: e,
                    });
                }
                StmtKind::Return(e) => out.push(MInstr::SetReturn(e.clone())),
                StmtKind::Block(b) => out.extend(self.master_block(b)),
                other => {
                    self.error(stmt.span, format!("unsupported master statement {other:?}"));
                }
            }
        }
        out
    }

    fn build_branching_if(
        &mut self,
        cond: &Expr,
        then_branch: &Block,
        else_branch: Option<&Block>,
    ) {
        self.flush_pending();
        let master = std::mem::take(&mut self.pending_master);
        let junction = self.push_state(State {
            master,
            vertex: None,
            post: vec![],
            transition: Transition::Branch {
                cond: cond.clone(),
                then_to: usize::MAX,
                else_to: usize::MAX,
            },
        });
        self.unresolved = vec![(junction, Slot::BranchThen)];
        self.build_block(then_branch);
        self.flush_pending();
        let mut exits = std::mem::take(&mut self.unresolved);
        self.unresolved = vec![(junction, Slot::BranchElse)];
        if let Some(eb) = else_branch {
            self.build_block(eb);
            self.flush_pending();
        }
        exits.append(&mut self.unresolved);
        self.unresolved = exits;
    }

    fn build_while(&mut self, cond: &Expr, body: &Block) {
        self.flush_pending();
        let master = std::mem::take(&mut self.pending_master);
        let head = self.push_state(State {
            master,
            vertex: None,
            post: vec![],
            transition: Transition::Branch {
                cond: cond.clone(),
                then_to: usize::MAX,
                else_to: usize::MAX,
            },
        });
        self.unresolved = vec![(head, Slot::BranchThen)];
        self.build_block(body);
        self.flush_pending();
        self.resolve_links_to(head); // loop back
        self.unresolved = vec![(head, Slot::BranchElse)];
    }

    // ---- vertex loop translation ----

    fn build_vertex_loop(&mut self, f: &ForeachStmt, span: Span) {
        if !f.parallel || !matches!(f.source, IterSource::Nodes { .. }) {
            self.error(span, "non-canonical loop reached translation");
            return;
        }
        let outer = &f.iter;
        let mut kernel = VertexKernel {
            recvs: vec![],
            filter: f.filter.as_ref().map(|e| self.vertex_expr(e, outer, span)),
            body: vec![],
            reads_globals: vec![],
        };
        let mut new_recvs: Vec<RecvHandler> = Vec::new();
        let body = self.vertex_block(&f.body, outer, &mut new_recvs, span);
        kernel.body = body;
        self.seal_vertex_state(kernel);
        self.pending_recvs = new_recvs;
    }

    fn vertex_block(
        &mut self,
        block: &Block,
        outer: &str,
        recvs: &mut Vec<RecvHandler>,
        span: Span,
    ) -> Vec<VInstr> {
        let mut out = Vec::new();
        for stmt in &block.stmts {
            self.vertex_stmt(stmt, outer, recvs, &mut out, span);
        }
        out
    }

    fn vertex_stmt(
        &mut self,
        stmt: &Stmt,
        outer: &str,
        recvs: &mut Vec<RecvHandler>,
        out: &mut Vec<VInstr>,
        _span: Span,
    ) {
        let span = stmt.span;
        match &stmt.kind {
            StmtKind::VarDecl { ty, name, init } => {
                self.vertex_locals.insert(name.clone());
                let value = match init {
                    Some(e) => self.vertex_expr(e, outer, span),
                    None => default_expr_for(ty),
                };
                out.push(VInstr::Local {
                    name: name.clone(),
                    op: AssignOp::Assign,
                    value,
                    ty: ty.clone(),
                });
            }
            StmtKind::Assign { target, op, value } => match target {
                Target::Prop { obj, prop } if obj == outer => {
                    out.push(VInstr::WriteOwn {
                        prop: prop.clone(),
                        op: *op,
                        value: self.vertex_expr(value, outer, span),
                    });
                }
                Target::Prop { obj, prop } => {
                    // Random write: send the reduced value to `obj`.
                    let value = self.vertex_expr(value, outer, span);
                    let value_ty = value.ty.clone().unwrap_or(Ty::Int);
                    let tag = self.new_tag(vec![("v".to_owned(), value_ty.clone())]);
                    out.push(VInstr::SendTo {
                        dst: self.vertex_expr(&Expr::var(obj), outer, span),
                        tag,
                        payload: vec![value],
                    });
                    recvs.push(RecvHandler {
                        tag,
                        guard: None,
                        steps: vec![RecvStep {
                            guard: None,
                            action: RecvAction::WriteOwn {
                                prop: prop.clone(),
                                op: *op,
                                value: Expr::typed(
                                    ExprKind::Var(format!("{PAYLOAD_PREFIX}v")),
                                    value_ty,
                                ),
                            },
                        }],
                    });
                }
                Target::Scalar(name) if self.vertex_locals.contains(name) => {
                    out.push(VInstr::Local {
                        name: name.clone(),
                        op: *op,
                        value: self.vertex_expr(value, outer, span),
                        ty: self.info.ty(name).clone(),
                    });
                }
                Target::Scalar(name) => {
                    if !op.is_reduction() {
                        self.error(
                            span,
                            format!("plain global write `{name}` in a vertex phase"),
                        );
                    }
                    out.push(VInstr::ReduceGlobal {
                        name: name.clone(),
                        op: *op,
                        value: self.vertex_expr(value, outer, span),
                    });
                }
            },
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = self.vertex_expr(cond, outer, span);
                let then_instrs = self.vertex_block(then_branch, outer, recvs, span);
                let else_instrs = else_branch
                    .as_ref()
                    .map(|b| self.vertex_block(b, outer, recvs, span))
                    .unwrap_or_default();
                out.push(VInstr::If {
                    cond,
                    then_branch: then_instrs,
                    else_branch: else_instrs,
                });
            }
            StmtKind::Foreach(inner) => {
                self.translate_inner_loop(inner, outer, recvs, out, span);
            }
            other => {
                self.error(span, format!("unsupported vertex statement {other:?}"));
            }
        }
    }

    /// The Neighborhood Communication pattern: one send site plus one
    /// receive handler.
    fn translate_inner_loop(
        &mut self,
        inner: &ForeachStmt,
        outer: &str,
        recvs: &mut Vec<RecvHandler>,
        out: &mut Vec<VInstr>,
        _span: Span,
    ) {
        let span = Span::synthetic();
        let t = &inner.iter;
        let along_out = match &inner.source {
            IterSource::OutNbrs { of } if of == outer => true,
            IterSource::InNbrs { of } if of == outer => false,
            _ => {
                self.error(span, "non-canonical inner loop reached translation");
                return;
            }
        };

        // Split the filter into sender-side and receiver-side conjuncts.
        let mut send_conds: Vec<Expr> = Vec::new();
        let mut recv_conds: Vec<Expr> = Vec::new();
        if let Some(filter) = &inner.filter {
            for conjunct in split_conjuncts(filter) {
                if mentions(&conjunct, t) {
                    recv_conds.push(conjunct);
                } else {
                    send_conds.push(conjunct);
                }
            }
        }

        // Collect sender-side bindings (edge vars and locals) and the
        // receive program.
        let mut pc = PayloadCx {
            outer: outer.to_owned(),
            inner: t.clone(),
            edge_vars: HashSet::new(),
            sender_locals: HashMap::new(),
            fields: Vec::new(),
            field_exprs: Vec::new(),
            composite_fields: HashMap::new(),
            graph: self.graph.clone(),
            global_set: self.global_set.clone(),
            diags: Diagnostics::new(),
            along_out,
        };
        let mut steps: Vec<RecvStep> = Vec::new();
        self.inner_body_to_recv(&inner.body, &mut pc, None, &mut steps);
        let guard = pc.rewrite_conjuncts(recv_conds);
        self.diags.errors.extend(pc.diags.errors.clone());

        let tag = self.new_tag(
            pc.fields
                .iter()
                .map(|(n, ty)| (n.clone(), ty.clone()))
                .collect(),
        );
        recvs.push(RecvHandler { tag, guard, steps });

        // The send instruction, guarded by sender-side conditions.
        let payload: Vec<Expr> = pc.field_exprs.clone();
        let send = if along_out {
            VInstr::SendToNbrs { tag, payload }
        } else {
            self.uses_in_nbrs = true;
            VInstr::SendToInNbrs { tag, payload }
        };
        let send = if send_conds.is_empty() {
            send
        } else {
            let cond = conjoin(
                send_conds
                    .into_iter()
                    .map(|c| self.vertex_expr(&c, outer, span))
                    .collect(),
            );
            VInstr::If {
                cond,
                then_branch: vec![send],
                else_branch: vec![],
            }
        };
        out.push(send);
    }

    /// Converts the inner-loop body into receive steps, accumulating
    /// payload fields for sender-scoped reads.
    fn inner_body_to_recv(
        &mut self,
        block: &Block,
        pc: &mut PayloadCx,
        guard: Option<&Expr>,
        steps: &mut Vec<RecvStep>,
    ) {
        for stmt in &block.stmts {
            match &stmt.kind {
                StmtKind::VarDecl { ty, name, init } => {
                    // Sender-side binding: an edge handle or a local
                    // computed from sender-scoped values.
                    match init {
                        Some(e)
                            if matches!(
                                &e.kind,
                                ExprKind::Call { method, .. } if method == "ToEdge"
                            ) =>
                        {
                            pc.edge_vars.insert(name.clone());
                        }
                        Some(e) => {
                            pc.sender_locals.insert(name.clone(), e.clone());
                        }
                        None => {
                            pc.sender_locals.insert(name.clone(), default_expr_for(ty));
                        }
                    }
                }
                StmtKind::Assign { target, op, value } => {
                    let value = pc.rewrite(value);
                    let action = match target {
                        Target::Prop { obj, prop } if *obj == pc.inner => RecvAction::WriteOwn {
                            prop: prop.clone(),
                            op: *op,
                            value,
                        },
                        Target::Scalar(name) if self.global_set.contains(name) => {
                            if !op.is_reduction() {
                                self.error(
                                    stmt.span,
                                    format!("plain global write `{name}` in an inner loop"),
                                );
                            }
                            RecvAction::ReduceGlobal {
                                name: name.clone(),
                                op: *op,
                                value,
                            }
                        }
                        other => {
                            self.error(stmt.span, format!("non-canonical inner write {other:?}"));
                            continue;
                        }
                    };
                    steps.push(RecvStep {
                        guard: guard.cloned(),
                        action,
                    });
                }
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let cond = pc.rewrite(cond);
                    let then_guard = match guard {
                        Some(g) => Expr::binary(BinOp::And, g.clone(), cond.clone()),
                        None => cond.clone(),
                    };
                    self.inner_body_to_recv(then_branch, pc, Some(&then_guard), steps);
                    if let Some(eb) = else_branch {
                        let not_cond = Expr::typed(
                            ExprKind::Unary {
                                op: UnOp::Not,
                                expr: Box::new(cond),
                            },
                            Ty::Bool,
                        );
                        let else_guard = match guard {
                            Some(g) => Expr::binary(BinOp::And, g.clone(), not_cond),
                            None => not_cond,
                        };
                        self.inner_body_to_recv(eb, pc, Some(&else_guard), steps);
                    }
                }
                other => {
                    self.error(stmt.span, format!("unsupported inner statement {other:?}"));
                }
            }
        }
    }

    fn new_tag(&mut self, fields: Vec<(String, Ty)>) -> u8 {
        // Tags are a u8 with IN_NBRS_TAG (255) reserved for the preamble;
        // a program with more send sites than that would silently alias
        // tags and miscompile, so reject it instead.
        if self.messages.len() >= usize::from(IN_NBRS_TAG) {
            self.error(
                Span::synthetic(),
                format!(
                    "program requires more than {} message types; the wire \
                     format's tag byte cannot represent them",
                    IN_NBRS_TAG - 1
                ),
            );
            return IN_NBRS_TAG - 1;
        }
        let tag = self.messages.len() as u8;
        self.messages.push(MessageLayout { tag, fields });
        tag
    }

    /// Rewrites a vertex-context expression: outer-iterator references
    /// become [`SELF`].
    fn vertex_expr(&mut self, e: &Expr, outer: &str, _span: Span) -> Expr {
        let mut e = e.clone();
        crate::astutil::subst_var_expr(&mut e, outer, SELF);
        e
    }

    fn kernel_global_reads(&self, kernel: &VertexKernel) -> Vec<String> {
        let mut reads = Vec::new();
        let mut push = |e: &Expr| collect_global_reads(e, &self.global_set, &mut reads);
        if let Some(f) = &kernel.filter {
            push(f);
        }
        fn walk_instrs(instrs: &[VInstr], push: &mut impl FnMut(&Expr)) {
            for i in instrs {
                match i {
                    VInstr::Local { value, .. }
                    | VInstr::WriteOwn { value, .. }
                    | VInstr::ReduceGlobal { value, .. } => push(value),
                    VInstr::SendToNbrs { payload, .. } | VInstr::SendToInNbrs { payload, .. } => {
                        for p in payload {
                            push(p);
                        }
                    }
                    VInstr::SendTo { dst, payload, .. } => {
                        push(dst);
                        for p in payload {
                            push(p);
                        }
                    }
                    VInstr::SendIdToNbrs => {}
                    VInstr::If {
                        cond,
                        then_branch,
                        else_branch,
                    } => {
                        push(cond);
                        walk_instrs(then_branch, push);
                        walk_instrs(else_branch, push);
                    }
                }
            }
        }
        walk_instrs(&kernel.body, &mut push);
        for r in &kernel.recvs {
            if let Some(g) = &r.guard {
                push(g);
            }
            for s in &r.steps {
                if let Some(g) = &s.guard {
                    push(g);
                }
                match &s.action {
                    RecvAction::WriteOwn { value, .. } | RecvAction::ReduceGlobal { value, .. } => {
                        push(value)
                    }
                    RecvAction::StoreInNbr => {}
                }
            }
        }
        reads.sort();
        reads.dedup();
        reads
    }
}

/// Context for payload inference of one send site.
struct PayloadCx {
    outer: String,
    inner: String,
    edge_vars: HashSet<String>,
    sender_locals: HashMap<String, Expr>,
    fields: Vec<(String, Ty)>,
    field_exprs: Vec<Expr>,
    /// Dedup map for composite payload fields: printed form → field name.
    composite_fields: HashMap<String, String>,
    graph: String,
    global_set: HashSet<String>,
    diags: Diagnostics,
    along_out: bool,
}

impl PayloadCx {
    /// Rewrites an expression into the *sender*'s evaluation context:
    /// outer-iterator references become [`SELF`], edge handles become
    /// [`EDGE`], and inner-body sender locals are inlined.
    fn to_sender_context(&self, e: &mut Expr) {
        // Inline sender locals first (their initializers may reference the
        // outer iterator or edge handles).
        fn inline(cx: &PayloadCx, e: &mut Expr) {
            if let ExprKind::Var(name) = &e.kind {
                if let Some(init) = cx.sender_locals.get(name) {
                    let mut replacement = init.clone();
                    inline(cx, &mut replacement);
                    replacement.span = e.span;
                    *e = replacement;
                    return;
                }
            }
            match &mut e.kind {
                ExprKind::Unary { expr, .. } => inline(cx, expr),
                ExprKind::Binary { lhs, rhs, .. } => {
                    inline(cx, lhs);
                    inline(cx, rhs);
                }
                ExprKind::Ternary {
                    cond,
                    then_val,
                    else_val,
                } => {
                    inline(cx, cond);
                    inline(cx, then_val);
                    inline(cx, else_val);
                }
                _ => {}
            }
        }
        inline(self, e);
        crate::astutil::subst_var_expr(e, &self.outer, SELF);
        for ev in &self.edge_vars {
            crate::astutil::subst_var_expr(e, ev, EDGE);
        }
    }
    /// Registers a payload field (dedup by name) and returns the reference
    /// expression used receiver-side.
    fn field(&mut self, name: String, ty: Ty, sender_expr: Expr) -> ExprKind {
        if !self.fields.iter().any(|(n, _)| *n == name) {
            self.fields.push((name.clone(), ty));
            self.field_exprs.push(sender_expr);
        }
        ExprKind::Var(format!("{PAYLOAD_PREFIX}{name}"))
    }

    fn rewrite_conjuncts(&mut self, conds: Vec<Expr>) -> Option<Expr> {
        let rewritten: Vec<Expr> = conds.iter().map(|c| self.rewrite(c)).collect();
        if rewritten.is_empty() {
            None
        } else {
            Some(conjoin(rewritten))
        }
    }

    /// Whether `e` reads anything scoped to the receiving (inner) vertex or
    /// a payload-requiring name, versus anything scoped to the sender.
    /// Returns `(uses_inner, uses_sender)`.
    fn scopes(&self, e: &Expr) -> (bool, bool) {
        match &e.kind {
            ExprKind::Prop { obj, .. } | ExprKind::Call { obj, .. } if *obj == self.inner => {
                (true, false)
            }
            ExprKind::Var(n) if *n == self.inner => (true, false),
            ExprKind::Prop { obj, .. } if *obj == self.outer => (false, true),
            ExprKind::Call { obj, .. } if *obj == self.outer => (false, true),
            ExprKind::Var(n) if *n == self.outer => (false, true),
            ExprKind::Prop { obj, .. } if self.edge_vars.contains(obj) => (false, true),
            ExprKind::Var(n) if self.sender_locals.contains_key(n) => (false, true),
            ExprKind::Var(n) if self.global_set.contains(n) => (false, false),
            ExprKind::Var(_) => (false, true), // outer-body vertex local
            ExprKind::Unary { expr, .. } => self.scopes(expr),
            ExprKind::Binary { lhs, rhs, .. } => {
                let (i1, s1) = self.scopes(lhs);
                let (i2, s2) = self.scopes(rhs);
                (i1 || i2, s1 || s2)
            }
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                let (i1, s1) = self.scopes(cond);
                let (i2, s2) = self.scopes(then_val);
                let (i3, s3) = self.scopes(else_val);
                (i1 || i2 || i3, s1 || s2 || s3)
            }
            _ => (false, false),
        }
    }

    /// Rewrites an inner-body expression into receiver context:
    /// inner-iterator property reads become [`SELF`] reads; maximal
    /// sender-only subexpressions become payload fields (a hand-written
    /// program ships `pr / degree`, not `pr` and `degree` separately).
    fn rewrite(&mut self, e: &Expr) -> Expr {
        // Composite sender-only subexpression → one payload field.
        let is_composite = matches!(
            e.kind,
            ExprKind::Unary { .. } | ExprKind::Binary { .. } | ExprKind::Ternary { .. }
        );
        if is_composite {
            let (uses_inner, uses_sender) = self.scopes(e);
            if !uses_inner && uses_sender {
                let mut sender_expr = e.clone();
                self.to_sender_context(&mut sender_expr);
                let key = crate::pretty::expr_to_string(&sender_expr);
                let field_name = match self.composite_fields.get(&key) {
                    Some(name) => name.clone(),
                    None => {
                        let name = format!("_x{}", self.composite_fields.len());
                        self.composite_fields.insert(key, name.clone());
                        self.fields
                            .push((name.clone(), e.ty.clone().unwrap_or(Ty::Int)));
                        self.field_exprs.push(sender_expr);
                        name
                    }
                };
                return Expr {
                    kind: ExprKind::Var(format!("{PAYLOAD_PREFIX}{field_name}")),
                    span: e.span,
                    ty: e.ty.clone(),
                };
            }
        }
        let ty = e.ty.clone();
        let kind = match &e.kind {
            ExprKind::Prop { obj, prop } if *obj == self.inner => ExprKind::Prop {
                obj: SELF.to_owned(),
                prop: prop.clone(),
            },
            ExprKind::Prop { obj, prop } if *obj == self.outer => {
                // Sender's own property.
                self.field(
                    prop.clone(),
                    ty.clone().unwrap_or(Ty::Int),
                    Expr {
                        kind: ExprKind::Prop {
                            obj: SELF.to_owned(),
                            prop: prop.clone(),
                        },
                        span: e.span,
                        ty: ty.clone(),
                    },
                )
            }
            ExprKind::Prop { obj, prop } if self.edge_vars.contains(obj) => {
                if !self.along_out {
                    self.diags.error(
                        e.span,
                        "edge properties are not available on in-neighbor sends",
                    );
                }
                self.field(
                    format!("_edge_{prop}"),
                    ty.clone().unwrap_or(Ty::Int),
                    Expr {
                        kind: ExprKind::Prop {
                            obj: EDGE.to_owned(),
                            prop: prop.clone(),
                        },
                        span: e.span,
                        ty: ty.clone(),
                    },
                )
            }
            ExprKind::Prop { obj, .. } => {
                self.diags.error(
                    e.span,
                    format!("cannot read property through `{obj}` inside an inner loop"),
                );
                e.kind.clone()
            }
            ExprKind::Var(name) if *name == self.inner => {
                // The receiver's own id — representable receiver-side.
                ExprKind::Var(SELF.to_owned())
            }
            ExprKind::Var(name) if *name == self.outer => {
                // The sender's id travels in the payload.
                self.field(
                    "_sender".to_owned(),
                    Ty::Node,
                    Expr::typed(ExprKind::Var(SELF.to_owned()), Ty::Node),
                )
            }
            ExprKind::Var(name) if self.global_set.contains(name) => {
                // Broadcast global: readable receiver-side directly.
                ExprKind::Var(name.clone())
            }
            ExprKind::Var(name) if self.sender_locals.contains_key(name) => {
                let init = self.sender_locals[name].clone();
                let mut sender_expr = init;
                // Resolve the sender expression into sender context.
                crate::astutil::subst_var_expr(&mut sender_expr, &self.outer, SELF);
                for ev in self.edge_vars.clone() {
                    crate::astutil::subst_var_expr(&mut sender_expr, &ev, EDGE);
                }
                self.field(name.clone(), ty.clone().unwrap_or(Ty::Int), sender_expr)
            }
            ExprKind::Var(name) => {
                // Vertex local of the outer body (sender-scoped value).
                self.field(
                    name.clone(),
                    ty.clone().unwrap_or(Ty::Int),
                    Expr {
                        kind: ExprKind::Var(name.clone()),
                        span: e.span,
                        ty: ty.clone(),
                    },
                )
            }
            ExprKind::Call { obj, method, .. } if *obj == self.inner => ExprKind::Call {
                obj: SELF.to_owned(),
                method: method.clone(),
                args: vec![],
            },
            ExprKind::Call { obj, method, .. } if *obj == self.outer => self.field(
                format!("_{method}"),
                Ty::Int,
                Expr::typed(
                    ExprKind::Call {
                        obj: SELF.to_owned(),
                        method: method.clone(),
                        args: vec![],
                    },
                    Ty::Int,
                ),
            ),
            ExprKind::Call { obj, method, .. } if *obj == self.graph => ExprKind::Call {
                obj: self.graph.clone(),
                method: method.clone(),
                args: vec![],
            },
            ExprKind::Unary { op, expr } => ExprKind::Unary {
                op: *op,
                expr: Box::new(self.rewrite(expr)),
            },
            ExprKind::Binary { op, lhs, rhs } => ExprKind::Binary {
                op: *op,
                lhs: Box::new(self.rewrite(lhs)),
                rhs: Box::new(self.rewrite(rhs)),
            },
            ExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => ExprKind::Ternary {
                cond: Box::new(self.rewrite(cond)),
                then_val: Box::new(self.rewrite(then_val)),
                else_val: Box::new(self.rewrite(else_val)),
            },
            other => other.clone(),
        };
        Expr {
            kind,
            span: e.span,
            ty,
        }
    }
}

/// Aggregate folds for the next superstep: one per global reduced by this
/// kernel, combining the aggregate into the master copy.
fn fold_instrs(kernel: &VertexKernel) -> Vec<MInstr> {
    let mut folds: Vec<(String, AssignOp)> = Vec::new();
    fn scan_instrs(instrs: &[VInstr], folds: &mut Vec<(String, AssignOp)>) {
        for i in instrs {
            match i {
                VInstr::ReduceGlobal { name, op, .. } if !folds.iter().any(|(n, _)| n == name) => {
                    folds.push((name.clone(), *op));
                }
                VInstr::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    scan_instrs(then_branch, folds);
                    scan_instrs(else_branch, folds);
                }
                _ => {}
            }
        }
    }
    scan_instrs(&kernel.body, &mut folds);
    for r in &kernel.recvs {
        for s in &r.steps {
            if let RecvAction::ReduceGlobal { name, op, .. } = &s.action {
                if !folds.iter().any(|(n, _)| n == name) {
                    folds.push((name.clone(), *op));
                }
            }
        }
    }
    folds
        .into_iter()
        .map(|(name, op)| MInstr::FoldAgg {
            agg_key: name.clone(),
            name,
            op,
        })
        .collect()
}

fn is_pure_master(block: &Block) -> bool {
    block.stmts.iter().all(|s| match &s.kind {
        StmtKind::Foreach(_) | StmtKind::While { .. } | StmtKind::InBfs(_) => false,
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } => is_pure_master(then_branch) && else_branch.as_ref().is_none_or(is_pure_master),
        StmtKind::Block(b) => is_pure_master(b),
        StmtKind::Assign {
            target: Target::Prop { .. },
            ..
        } => false,
        _ => true,
    })
}

fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    match &e.kind {
        ExprKind::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            let mut out = split_conjuncts(lhs);
            out.extend(split_conjuncts(rhs));
            out
        }
        _ => vec![e.clone()],
    }
}

fn conjoin(mut parts: Vec<Expr>) -> Expr {
    let mut acc = parts.remove(0);
    for p in parts {
        acc = Expr::typed(
            ExprKind::Binary {
                op: BinOp::And,
                lhs: Box::new(acc),
                rhs: Box::new(p),
            },
            Ty::Bool,
        );
    }
    acc
}

fn mentions(e: &Expr, var: &str) -> bool {
    let mut places = Vec::new();
    crate::astutil::reads_in_expr(e, &mut places);
    places.iter().any(|p| match p {
        crate::astutil::Place::Scalar(n) => n == var,
        crate::astutil::Place::Prop { obj, .. } => obj == var,
    })
}

fn collect_global_reads(e: &Expr, globals: &HashSet<String>, out: &mut Vec<String>) {
    match &e.kind {
        ExprKind::Var(n) if globals.contains(n) => {
            out.push(n.clone());
        }
        ExprKind::Unary { expr, .. } => collect_global_reads(expr, globals, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_global_reads(lhs, globals, out);
            collect_global_reads(rhs, globals, out);
        }
        ExprKind::Ternary {
            cond,
            then_val,
            else_val,
        } => {
            collect_global_reads(cond, globals, out);
            collect_global_reads(then_val, globals, out);
            collect_global_reads(else_val, globals, out);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                collect_global_reads(a, globals, out);
            }
        }
        _ => {}
    }
}

fn default_expr_for(ty: &Ty) -> Expr {
    match Value::default_for(ty) {
        Value::Int(v) => Expr::typed(ExprKind::IntLit(v), ty.clone()),
        Value::Double(v) => Expr::typed(ExprKind::FloatLit(v), ty.clone()),
        Value::Bool(v) => Expr::typed(ExprKind::BoolLit(v), ty.clone()),
        Value::Node(_) => Expr::typed(ExprKind::Nil, Ty::Node),
        Value::Edge(_) => Expr::typed(ExprKind::IntLit(0), Ty::Edge),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn translated(src: &str) -> PregelProgram {
        let mut p = parse(src).unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        let mut report = TransformReport::new();
        translate(&p.procedures[0], &infos[0], &mut report).expect("translate")
    }

    #[test]
    fn neighborhood_communication_makes_two_vertex_states() {
        let prog = translated(
            "Procedure f(G: Graph, foo: N_P<Int>, bar: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    Foreach (t: n.Nbrs) {
                        t.foo += n.bar;
                    }
                }
            }",
        );
        // Send state; the recv handlers land in the final flush state.
        assert_eq!(prog.num_vertex_kernels(), 2, "{prog}");
        assert_eq!(prog.num_message_types(), 1);
        // Envelope (4) + one Int field (bar), no tag byte.
        assert_eq!(prog.message_bytes(0), 8);
    }

    #[test]
    fn two_sends_get_two_tags_and_tag_bytes() {
        let prog = translated(
            "Procedure f(G: Graph, even_cnt: N_P<Int>, odd_cnt: N_P<Int>, foo: N_P<Int>) {
                Foreach (n: G.Nodes) {
                    If ((n.foo % 2) == 0) {
                        Foreach (t: n.Nbrs) {
                            t.even_cnt += 1;
                        }
                    } Else {
                        Foreach (t: n.Nbrs) {
                            t.odd_cnt += 1;
                        }
                    }
                }
            }",
        );
        assert_eq!(prog.num_message_types(), 2);
        // Envelope + empty payload + tag byte.
        assert_eq!(prog.message_bytes(0), 5);
        assert_eq!(prog.message_bytes(1), 5);
    }

    #[test]
    fn in_neighbor_send_triggers_preamble() {
        let mut report = TransformReport::new();
        let mut p = parse(
            "Procedure f(G: Graph, x: N_P<Int>, m: N_P<Bool>) {
                Foreach (j: G.Nodes)(j.m) {
                    Foreach (u: j.InNbrs) {
                        u.x += 1;
                    }
                }
            }",
        )
        .unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        let prog = translate(&p.procedures[0], &infos[0], &mut report).unwrap();
        assert!(prog.uses_in_nbrs);
        assert!(report.applied(Step::IncomingNeighbors));
        // Preamble adds two vertex states at the front.
        assert!(matches!(prog.states[0].transition, Transition::Goto(1)));
        assert!(prog.states[0].vertex.is_some());
        assert!(prog.states[1].vertex.is_some());
    }

    #[test]
    fn while_loop_builds_branch_junction() {
        let prog = translated(
            "Procedure f(G: Graph, x: N_P<Int>) {
                Int k = 0;
                While (k < 3) {
                    Foreach (n: G.Nodes) {
                        n.x += 1;
                    }
                    k += 1;
                }
            }",
        );
        let has_branch = prog
            .states
            .iter()
            .any(|s| matches!(s.transition, Transition::Branch { .. }));
        assert!(has_branch, "{prog}");
    }

    #[test]
    fn global_reduction_folds_in_post() {
        let prog = translated(
            "Procedure f(G: Graph, cnt: N_P<Int>) : Int {
                Int s = 0;
                Foreach (n: G.Nodes) {
                    s += n.cnt;
                }
                Return s;
            }",
        );
        let vertex_state = prog
            .states
            .iter()
            .find(|s| s.vertex.is_some())
            .expect("vertex state");
        assert!(
            matches!(&vertex_state.post[..], [MInstr::FoldAgg { name, .. }] if name == "s"),
            "{prog}"
        );
    }

    #[test]
    fn random_write_uses_send_to() {
        let mut report = TransformReport::new();
        let mut p = parse(
            "Procedure f(G: Graph, m: N_P<Node>, x: N_P<Int>) {
                Foreach (n: G.Nodes)(n.m != NIL) {
                    Node b = n.m;
                    b.x = 7;
                }
            }",
        )
        .unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        let prog = translate(&p.procedures[0], &infos[0], &mut report).unwrap();
        assert!(report.applied(Step::RandomWriting));
        let kernel = prog.states[0].vertex.as_ref().unwrap();
        assert!(kernel
            .body
            .iter()
            .any(|i| matches!(i, VInstr::SendTo { .. })));
    }

    #[test]
    fn edge_property_read_lands_in_payload() {
        let mut report = TransformReport::new();
        let mut p = parse(
            "Procedure f(G: Graph, len: E_P<Int>, dist: N_P<Int>, u: N_P<Bool>) {
                Foreach (n: G.Nodes)(n.u) {
                    Foreach (s: n.Nbrs) {
                        Edge e = s.ToEdge();
                        s.dist min= n.dist + e.len;
                    }
                }
            }",
        )
        .unwrap();
        let infos = crate::sema::check(&mut p).unwrap();
        let prog = translate(&p.procedures[0], &infos[0], &mut report).unwrap();
        assert!(report.applied(Step::EdgeProperty));
        // `n.dist + e.len` is sender-only, so it ships as ONE composite
        // field — exactly what a hand-written program would send.
        let layout = &prog.messages[0];
        assert_eq!(layout.fields.len(), 1, "{:?}", layout.fields);
        assert_eq!(layout.fields[0].1, Ty::Int);
        // Envelope + 4 bytes, single type → no tag byte.
        assert_eq!(prog.message_bytes(0), 8);
    }

    #[test]
    fn receiver_filter_becomes_recv_guard() {
        let prog = translated(
            "Procedure f(G: Graph, suitor: N_P<Node>) {
                Foreach (b: G.Nodes)(b.suitor == NIL) {
                    Foreach (g: b.Nbrs)(g.suitor == NIL) {
                        g.suitor = b;
                    }
                }
            }",
        );
        // Find the recv handler.
        let handler = prog
            .states
            .iter()
            .flat_map(|s| s.vertex.iter())
            .flat_map(|k| k.recvs.iter())
            .next()
            .expect("one handler");
        assert!(handler.guard.is_some());
        // Sender id travels as a Node payload field.
        assert_eq!(prog.messages[0].fields.len(), 1);
        assert_eq!(prog.messages[0].fields[0].1, Ty::Node);
    }

    #[test]
    fn returns_become_set_return() {
        let prog = translated(
            "Procedure f(G: Graph, k: Int) : Int {
                If (k == 0) {
                    Return 0;
                }
                Return k + 1;
            }",
        );
        let has_ret = prog.states.iter().any(|s| {
            s.master
                .iter()
                .any(|m| matches!(m, MInstr::SetReturn(_) | MInstr::If { .. }))
        });
        assert!(has_ret, "{prog}");
    }
}
