//! Library-level durability acceptance: journal-backed restart, the
//! retry/backoff policy, brownout shedding, and terminal-history GC —
//! everything `kill -9` chaos (see `tests/chaos.rs`) exercises at the
//! process level, pinned here deterministically at the API level.

use gm_obs::json::parse;
use gmd::daemon::{BrownoutConfig, Reject};
use gmd::{Daemon, DaemonConfig, GraphSpec, JobSpec, JournalConfig, RetryPolicy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gmd-durability-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_config(graphs: &[(&str, &str)]) -> DaemonConfig {
    DaemonConfig {
        listen: "127.0.0.1:0".to_owned(),
        graphs: graphs
            .iter()
            .map(|(name, source)| GraphSpec {
                name: (*name).to_owned(),
                source: (*source).to_owned(),
            })
            .collect(),
        max_concurrent: 1,
        queue_cap: 64,
        default_workers: 2,
        total_message_bytes: 1 << 30,
        total_resident_bytes: 4 << 30,
        default_deadline: None,
        post_mortem: None,
        quarantine_threshold: 100,
        drain_timeout: Duration::from_millis(200),
        native_builtins: true,
        journal: None,
        job_history_keep: 0,
        retry: RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        },
        brownout: None,
        abort: std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)),
    }
}

fn spec(json: &str) -> JobSpec {
    JobSpec::from_json(&parse(json).expect("spec JSON")).expect("valid spec")
}

fn wait_terminal(state: &std::sync::Arc<gmd::daemon::State>, id: &str) -> gmd::job::JobRecord {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(rec) = state.job(id) {
            if rec.state.is_terminal() {
                return rec;
            }
        }
        assert!(Instant::now() < deadline, "job {id} never became terminal");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn fingerprints_of(rec: &gmd::job::JobRecord) -> std::collections::BTreeMap<String, String> {
    match &rec.state {
        gmd::job::JobState::Completed(result) => result.fingerprints.clone(),
        other => panic!("job {} not completed: {other:?}", rec.id),
    }
}

#[test]
fn restart_requeues_journalled_jobs_bit_identically_and_resumes_ids() {
    let dir = fresh_dir("restart");
    let mut config = base_config(&[("g", "rmat:600:3000:7")]);
    config.journal = Some(JournalConfig::new(dir.join("journal")));

    let pagerank = r#"{"tenant":"acme","graph":"g","program":"pagerank",
        "args":{"e":1e-30,"d":0.85,"max_iter":25},"seed":7,"workers":2}"#;

    // First life: accept three jobs, then tear the daemon down without a
    // drain (the Drop path finishes at most the running job — the rest
    // survive only in the journal).
    let first_result;
    {
        let daemon = Daemon::start(config.clone()).expect("first start");
        let state = daemon.state().clone();
        let ids: Vec<String> = (0..3)
            .map(|_| state.submit(spec(pagerank)).expect("submit"))
            .collect();
        assert_eq!(ids, ["job-1", "job-2", "job-3"]);
        first_result = wait_terminal(&state, "job-1");
        // jobs 2 and 3 are (at most) queued behind the single runner.
        drop(daemon);
    }

    // Second life: replay must requeue the unfinished jobs and complete
    // them with fingerprints identical to the uninterrupted first job
    // (same spec, same pinned workers, deterministic interpreter).
    let daemon = Daemon::start(config).expect("second start");
    let state = daemon.state().clone();
    let want = fingerprints_of(&first_result);
    assert!(!want.is_empty());
    for id in ["job-1", "job-2", "job-3"] {
        let rec = wait_terminal(&state, id);
        assert_eq!(
            fingerprints_of(&rec),
            want,
            "{id} diverged across the restart"
        );
    }
    // The id sequence resumes above every journalled id.
    let fresh = state.submit(spec(pagerank)).expect("post-restart submit");
    assert_eq!(fresh, "job-4");
    wait_terminal(&state, &fresh);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_failures_retry_until_the_budget_exhausts() {
    // A 1ms per-superstep deadline against a 4000-node interpreted
    // PageRank trips deterministically — and identically on retry, so
    // the job burns its whole budget and then fails terminally.
    let mut config = base_config(&[("big", "rmat:4000:20000:7")]);
    config.retry = RetryPolicy {
        max_retries: 2,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(2),
        ..RetryPolicy::default()
    };
    config.quarantine_threshold = 1;
    let daemon = Daemon::start(config).expect("start");
    let state = daemon.state().clone();

    let doomed = r#"{"tenant":"acme","graph":"big","program":"pagerank",
        "args":{"e":0.0,"d":0.85,"max_iter":50},"deadline_ms":1}"#;
    let id = state.submit(spec(doomed)).expect("submit");
    let rec = wait_terminal(&state, &id);
    let gmd::job::JobState::Failed { kind, .. } = &rec.state else {
        panic!("expected failure, got {:?}", rec.state);
    };
    assert_eq!(kind, "deadline_exceeded");
    assert_eq!(rec.attempts, 3, "one attempt plus two retries");

    // Only the *terminal* failure counted toward quarantine (threshold
    // 1): the retries themselves did not triple-poison the signature,
    // but the signature is now quarantined.
    match state.submit(spec(doomed)) {
        Err(Reject::Quarantined { kind, count }) => {
            assert_eq!(kind, "deadline_exceeded");
            assert_eq!(count, 1, "retries must not inflate the count");
        }
        other => panic!("expected quarantine, got {other:?}"),
    }

    // A per-request override disables retries entirely.
    let one_shot = r#"{"tenant":"acme","graph":"big","program":"sssp",
        "args":{"root":"n:0"},"deadline_ms":1,"max_retries":0}"#;
    let id = state.submit(spec(one_shot)).expect("submit");
    let rec = wait_terminal(&state, &id);
    assert_eq!(rec.attempts, 1, "max_retries:0 means a single attempt");
}

#[test]
fn brownout_sheds_lowest_priority_newest_first_and_rejects_submissions() {
    // saturation 0.0 counts the daemon as saturated from the first
    // submission, so the 300ms hold is the only clock in the test.
    let mut config = base_config(&[("big", "rmat:4000:20000:7")]);
    config.brownout = Some(BrownoutConfig {
        saturation: 0.0,
        hold: Duration::from_millis(300),
        shed_to: 1,
    });
    let daemon = Daemon::start(config).expect("start");
    let state = daemon.state().clone();

    // A long job occupies the single runner; three more queue behind it.
    let long = r#"{"tenant":"acme","graph":"big","program":"pagerank",
        "args":{"e":1e-30,"d":0.85,"max_iter":400},"seed":7}"#;
    let job = |tenant: &str, priority: i64| {
        format!(
            r#"{{"tenant":"{tenant}","graph":"big","program":"pagerank",
                "args":{{"e":1e-30,"d":0.85,"max_iter":10}},"priority":{priority}}}"#
        )
    };
    let _running = state.submit(spec(long)).expect("running job");
    let keep = state.submit(spec(&job("acme", 5))).expect("high priority");
    let shed_old = state.submit(spec(&job("globex", 0))).expect("low, older");
    let shed_new = state.submit(spec(&job("globex", 0))).expect("low, newer");

    std::thread::sleep(Duration::from_millis(450));
    // This submission finds the hold expired: the queue (3 deep) is shed
    // down to 1 — lowest priority first, newest first within a priority
    // — and the submission itself is refused with the shedding slug.
    match state.submit(spec(&job("initech", 0))) {
        Err(Reject::Shedding { retry_after }) => {
            assert_eq!(retry_after, Duration::from_millis(300));
        }
        other => panic!("expected shedding rejection, got {other:?}"),
    }
    for id in [&shed_new, &shed_old] {
        let rec = state.job(id).expect("record");
        let gmd::job::JobState::Failed { kind, .. } = &rec.state else {
            panic!("{id} should be shed, got {:?}", rec.state);
        };
        assert_eq!(kind, "shed");
    }
    let keep_rec = state.job(&keep).expect("record");
    assert!(
        !matches!(&keep_rec.state, gmd::job::JobState::Failed { kind, .. } if kind == "shed"),
        "the high-priority job must survive the shed: {:?}",
        keep_rec.state
    );
}

#[test]
fn job_history_keep_evicts_oldest_terminal_records() {
    let dir = fresh_dir("history");
    let mut config = base_config(&[("g", "rmat:300:1500:7")]);
    config.journal = Some(JournalConfig::new(dir.join("journal")));
    config.job_history_keep = 2;
    let quick = r#"{"tenant":"acme","graph":"g","program":"pagerank",
        "args":{"e":1e-30,"d":0.85,"max_iter":5}}"#;
    {
        let daemon = Daemon::start(config.clone()).expect("start");
        let state = daemon.state().clone();
        for _ in 0..4 {
            let id = state.submit(spec(quick)).expect("submit");
            wait_terminal(&state, &id);
        }
        // Only the two newest terminal records survive in memory.
        assert!(state.job("job-1").is_none(), "oldest evicted");
        assert!(state.job("job-2").is_none(), "second-oldest evicted");
        assert!(state.job("job-3").is_some());
        assert!(state.job("job-4").is_some());
    }
    // The journal-side GC mirrors it at compaction: a restart replays
    // only the kept records and still resumes the id sequence above
    // every id ever issued.
    let daemon = Daemon::start(config).expect("restart");
    let state = daemon.state().clone();
    assert!(state.job("job-1").is_none());
    assert!(state.job("job-3").is_some());
    assert!(state.job("job-4").is_some());
    let fresh = state.submit(spec(quick)).expect("submit");
    assert_eq!(fresh, "job-5");
    wait_terminal(&state, &fresh);
    drop(daemon);
    let _ = std::fs::remove_dir_all(&dir);
}
