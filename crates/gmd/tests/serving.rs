//! End-to-end serving acceptance tests: a live daemon over TCP, real
//! HTTP clients, concurrent jobs across tenants, and bit-identical
//! agreement with local `gmc run`-equivalent invocations (the daemon and
//! `gmc` share the `greenmarl::service` compile pipeline and
//! `gm_interp::run_compiled`, so comparing against a local `run_compiled`
//! at the same graph/args/seed/workers *is* comparing against `gmc run`).

use gm_core::seqinterp::ArgValue;
use gm_core::value::Value;
use gm_graph::io::LoadedGraph;
use gm_interp::run_compiled;
use gm_obs::json::Json;
use gm_pregel::{PostMortemConfig, PregelConfig, ResourceBudget};
use gmd::client::{Client, SubmitError};
use gmd::{fingerprint_values, Daemon, DaemonConfig, GraphSpec};
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gmd-serving-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A config with every knob explicit, so the suite is immune to `GM_*`
/// environment variables a CI stress job may have exported.
fn base_config(graphs: &[(&str, &str)]) -> DaemonConfig {
    DaemonConfig {
        listen: "127.0.0.1:0".to_owned(),
        graphs: graphs
            .iter()
            .map(|(name, source)| GraphSpec {
                name: (*name).to_owned(),
                source: (*source).to_owned(),
            })
            .collect(),
        max_concurrent: 4,
        queue_cap: 64,
        default_workers: 2,
        total_message_bytes: 1 << 30,
        total_resident_bytes: 4 << 30,
        default_deadline: None,
        post_mortem: None,
        quarantine_threshold: 2,
        drain_timeout: Duration::from_millis(200),
        native_builtins: true,
        // PR-10 durability knobs default off so the pre-existing
        // admission/fairness assertions keep their exact semantics.
        journal: None,
        job_history_keep: 0,
        retry: gmd::RetryPolicy {
            max_retries: 0,
            ..gmd::RetryPolicy::default()
        },
        brownout: None,
        abort: std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false)),
    }
}

/// Runs `source` locally the way `gmc run` does — same compile pipeline,
/// same interpreter, same worker count and seed, first edge-property
/// parameter fed from the snapshot's weight column — and returns the
/// per-column fingerprints plus supersteps.
fn local_reference(
    loaded: &LoadedGraph,
    source: &str,
    args: &[(&str, Value)],
    seed: u64,
    workers: usize,
) -> (BTreeMap<String, String>, u64) {
    let compiled = greenmarl::service::compile_source(source).expect("reference compile");
    let mut arg_map: HashMap<String, ArgValue> = args
        .iter()
        .map(|(k, v)| ((*k).to_owned(), ArgValue::Scalar(*v)))
        .collect();
    if let Some((name, _)) = compiled.program.edge_props.first() {
        arg_map.entry(name.clone()).or_insert_with(|| {
            ArgValue::EdgeProp(loaded.weights.iter().map(|&w| Value::Int(w)).collect())
        });
    }
    let config = PregelConfig::with_workers(workers).with_budget(ResourceBudget::unbounded());
    let out = run_compiled(&loaded.graph, &compiled, &arg_map, seed, &config)
        .expect("reference run succeeds");
    let fingerprints = out
        .node_props
        .iter()
        .map(|(name, col)| (name.clone(), fingerprint_values(col)))
        .collect();
    (fingerprints, u64::from(out.metrics.supersteps))
}

fn fingerprints_of(status: &Json) -> BTreeMap<String, String> {
    let Some(Json::Obj(map)) = status.get("result").and_then(|r| r.get("fingerprints")) else {
        panic!("no fingerprints in {status:?}");
    };
    map.iter()
        .map(|(k, v)| (k.clone(), v.as_str().expect("hex string").to_owned()))
        .collect()
}

const PAGERANK_ARGS: &str = r#""args":{"e":1e-8,"d":0.85,"max_iter":12}"#;

#[test]
fn serves_concurrent_multi_tenant_jobs_bit_identical_to_local_runs() {
    let daemon = Daemon::start(base_config(&[
        ("twitter", "rmat:300:1200:7"),
        ("web", "uniform:200:800:9"),
    ]))
    .expect("daemon starts");
    let client = Client::new(daemon.addr()).with_timeout(Duration::from_secs(30));

    // The catalogue endpoint knows both snapshots and the builtins.
    let (status, graphs) = client.get_json("/v1/graphs").unwrap();
    assert_eq!(status, 200);
    let names: Vec<&str> = graphs
        .get("graphs")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|g| g.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, ["twitter", "web"]);
    let builtins = graphs.get("builtins").and_then(Json::as_arr).unwrap();
    assert!(builtins.iter().any(|b| b.as_str() == Some("pagerank")));

    // Nine jobs over two graphs and two tenants: PageRank and SSSP as
    // builtins, plus one inline-source PageRank so the compile-at-submit
    // path is exercised and must agree with its precompiled twin.
    let pagerank_src = gm_algorithms::sources::PAGERANK.replace('"', "\\\"");
    let inline_src_body = pagerank_src.replace('\n', "\\n");
    let mut submissions: Vec<(String, String)> = Vec::new(); // (id, expect-key)
    for (tenant, graph, root) in [
        ("acme", "twitter", 0u32),
        ("globex", "twitter", 1),
        ("acme", "web", 0),
        ("globex", "web", 2),
    ] {
        let pr = format!(
            r#"{{"tenant":"{tenant}","graph":"{graph}","program":"pagerank",{PAGERANK_ARGS},"seed":7}}"#
        );
        let id = client.submit(&pr).expect("pagerank accepted");
        submissions.push((id, format!("pagerank:{graph}")));
        let ss = format!(
            r#"{{"tenant":"{tenant}","graph":"{graph}","program":"sssp","args":{{"root":"n:{root}"}},"seed":7}}"#
        );
        let id = client.submit(&ss).expect("sssp accepted");
        submissions.push((id, format!("sssp:{graph}:{root}")));
    }
    let inline = format!(
        r#"{{"tenant":"acme","graph":"twitter","source":"{inline_src_body}",{PAGERANK_ARGS},"seed":7}}"#
    );
    let id = client.submit(&inline).expect("inline source accepted");
    submissions.push((id, "pagerank:twitter".to_owned()));
    assert_eq!(submissions.len(), 9);

    // Local references, computed once per distinct (program, graph, args).
    let state = daemon.state().clone();
    let workers = state.config().default_workers;
    let pagerank_args: [(&str, Value); 3] = [
        ("e", Value::Double(1e-8)),
        ("d", Value::Double(0.85)),
        ("max_iter", Value::Int(12)),
    ];
    let mut expected: HashMap<String, (BTreeMap<String, String>, u64)> = HashMap::new();
    for graph in ["twitter", "web"] {
        let loaded = state.graphs()[graph].clone();
        expected.insert(
            format!("pagerank:{graph}"),
            local_reference(
                &loaded,
                gm_algorithms::sources::PAGERANK,
                &pagerank_args,
                7,
                workers,
            ),
        );
        for root in [0u32, 1, 2] {
            expected.insert(
                format!("sssp:{graph}:{root}"),
                local_reference(
                    &loaded,
                    gm_algorithms::sources::SSSP,
                    &[("root", Value::Node(root))],
                    7,
                    workers,
                ),
            );
        }
    }

    for (id, key) in &submissions {
        let status = client.wait(id, Duration::from_secs(120)).expect("terminal");
        assert_eq!(
            status.get("status").and_then(Json::as_str),
            Some("completed"),
            "job {id} ({key}): {status:?}"
        );
        let (want_fps, want_supersteps) = &expected[key];
        assert_eq!(
            &fingerprints_of(&status),
            want_fps,
            "job {id} ({key}) diverged from the local run"
        );
        assert_eq!(
            status
                .get("result")
                .and_then(|r| r.get("supersteps"))
                .and_then(Json::as_u64),
            Some(*want_supersteps),
            "job {id} ({key})"
        );
        assert!(status.get("wall_ms").is_some());
    }

    // Liveness and metrics reflect the work done.
    let (status, health) = client.get_json("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(health.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(health.get("draining"), Some(&Json::Bool(false)));
    let (status, exposition) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    for needle in [
        "gm_jobs_submitted_total{tenant=\"acme\"}",
        "gm_jobs_submitted_total{tenant=\"globex\"}",
        "gm_jobs_completed_total{tenant=\"acme\"}",
        "gm_jobs_queue_depth",
        "gm_job_latency_ms",
    ] {
        assert!(
            exposition.contains(needle),
            "missing {needle} in exposition"
        );
    }
    assert!(
        !exposition.contains("gm_jobs_failed_total"),
        "no job failed"
    );
}

#[test]
fn admission_rejects_structurally_and_over_capacity() {
    let mut config = base_config(&[("g", "rmat:100:400:5")]);
    config.total_message_bytes = 1 << 20;
    config.total_resident_bytes = 1 << 24;
    let daemon = Daemon::start(config).expect("daemon starts");
    let client = Client::new(daemon.addr());

    let reject = |body: &str| -> (u16, Json) {
        match client.submit(body) {
            Err(SubmitError::Rejected { status, body }) => (status, body),
            other => panic!("expected rejection, got {other:?}"),
        }
    };

    // A budget request the server can never satisfy: structured 429 with
    // the numbers a client needs to right-size and resubmit.
    let (status, body) =
        reject(r#"{"graph":"g","program":"pagerank","max_message_bytes":1048577}"#);
    assert_eq!(status, 429);
    assert_eq!(
        body.get("error").and_then(Json::as_str),
        Some("over_capacity")
    );
    assert_eq!(
        body.get("budget").and_then(Json::as_str),
        Some("message_bytes")
    );
    assert_eq!(
        body.get("requested").and_then(Json::as_u64),
        Some(1_048_577)
    );
    assert_eq!(body.get("capacity").and_then(Json::as_u64), Some(1 << 20));

    let (status, body) =
        reject(r#"{"graph":"g","program":"pagerank","max_resident_bytes":999999999}"#);
    assert_eq!(status, 429);
    assert_eq!(
        body.get("budget").and_then(Json::as_str),
        Some("resident_bytes")
    );

    let (status, body) = reject(r#"{"graph":"nope","program":"pagerank"}"#);
    assert_eq!(status, 400);
    assert_eq!(
        body.get("error").and_then(Json::as_str),
        Some("unknown_graph")
    );

    let (status, body) = reject(r#"{"graph":"g","program":"frobnicate"}"#);
    assert_eq!(status, 400);
    assert_eq!(
        body.get("error").and_then(Json::as_str),
        Some("unknown_program")
    );

    // Malformed tenant source is a diagnostic, not a daemon crash.
    let (status, body) = reject(r#"{"graph":"g","source":"Procedure p(G: Graph) { Int x = }"}"#);
    assert_eq!(status, 400);
    assert_eq!(
        body.get("error").and_then(Json::as_str),
        Some("compile_error")
    );
    let diagnostics = body.get("diagnostics").and_then(Json::as_str).unwrap();
    assert!(
        diagnostics.contains("1:"),
        "diagnostics carry positions: {diagnostics}"
    );

    let (status, body) = reject(r#"{"graph":"g","program":"pagerank","args":{"k":[1]}}"#);
    assert_eq!(status, 400);
    assert_eq!(
        body.get("error").and_then(Json::as_str),
        Some("bad_request")
    );

    let (status, _) = client.post("/v1/jobs", "this is not json").unwrap();
    assert_eq!(status, 400);

    let (status, _) = client.get("/v1/jobs/job-999").unwrap();
    assert_eq!(status, 404);

    // Rejections were counted; nothing was ever admitted.
    let exposition = daemon.state().registry().render_prometheus();
    assert!(exposition.contains("gm_jobs_rejected_total{reason=\"over_capacity\"}"));
}

#[test]
fn queue_cap_bounds_accepted_work() {
    let mut config = base_config(&[("g", "rmat:300:1200:7")]);
    config.max_concurrent = 1;
    config.queue_cap = 1;
    let daemon = Daemon::start(config).expect("daemon starts");
    let client = Client::new(daemon.addr());

    // A job long enough to hold the single runner while the queue fills:
    // a negative epsilon means PageRank never converges, so it runs the
    // full iteration budget.
    let long = r#"{"tenant":"a","graph":"g","program":"pagerank","args":{"e":-1.0,"d":0.85,"max_iter":50000}}"#;
    let running_id = client.submit(long).expect("accepted");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, doc) = client.get_json(&format!("/v1/jobs/{running_id}")).unwrap();
        if doc.get("status").and_then(Json::as_str) == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
    client.submit(long).expect("fills the queue");
    match client.submit(long) {
        Err(SubmitError::Rejected { status, body }) => {
            assert_eq!(status, 429);
            assert_eq!(body.get("error").and_then(Json::as_str), Some("queue_full"));
            assert_eq!(body.get("capacity").and_then(Json::as_u64), Some(1));
        }
        other => panic!("expected queue_full, got {other:?}"),
    }
    // Drain (not drop): the runner is mid-job and needs the cooperative
    // cancel that only drain arms.
    daemon.drain();
}

#[test]
fn deadlines_produce_bundles_and_repeat_failures_quarantine() {
    let bundles = fresh_dir("bundles");
    let mut config = base_config(&[("big", "rmat:4000:20000:3")]);
    config.post_mortem = Some(PostMortemConfig::new(&bundles));
    let daemon = Daemon::start(config).expect("daemon starts");
    let client = Client::new(daemon.addr());

    // A 1ms per-superstep deadline against a 4000-node interpreted
    // PageRank: some superstep overruns long before convergence.
    let id = client
        .submit(r#"{"tenant":"a","graph":"big","program":"pagerank","args":{"e":0.0,"d":0.85,"max_iter":50},"deadline_ms":1}"#)
        .expect("accepted");
    let status = client.wait(&id, Duration::from_secs(120)).unwrap();
    assert_eq!(status.get("status").and_then(Json::as_str), Some("failed"));
    let error = status.get("error").expect("failed jobs carry an error");
    assert_eq!(
        error.get("kind").and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    let bundle = error
        .get("bundle")
        .and_then(Json::as_str)
        .expect("bundle path");
    assert!(
        std::path::Path::new(bundle).is_dir(),
        "bundle {bundle} was not written"
    );

    // Two identical budget failures of one (graph, program) signature
    // close the front door on the third submission.
    let starved = r#"{"tenant":"a","graph":"big","program":"pagerank","args":{"e":0.0,"d":0.85,"max_iter":5},"max_resident_bytes":1}"#;
    for _ in 0..2 {
        let id = client.submit(starved).expect("accepted");
        let status = client.wait(&id, Duration::from_secs(120)).unwrap();
        assert_eq!(status.get("status").and_then(Json::as_str), Some("failed"));
        assert_eq!(
            status
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("budget_exceeded")
        );
    }
    match client.submit(starved) {
        Err(SubmitError::Rejected { status, body }) => {
            assert_eq!(status, 429);
            assert_eq!(
                body.get("error").and_then(Json::as_str),
                Some("quarantined")
            );
            assert_eq!(
                body.get("kind").and_then(Json::as_str),
                Some("budget_exceeded")
            );
            assert_eq!(body.get("failures").and_then(Json::as_u64), Some(2));
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
    // A different program on the same graph is unaffected.
    let ok = client
        .submit(r#"{"tenant":"a","graph":"big","program":"sssp","args":{"root":"n:0"}}"#)
        .expect("other signatures still admitted");
    let status = client.wait(&ok, Duration::from_secs(120)).unwrap();
    assert_eq!(
        status.get("status").and_then(Json::as_str),
        Some("completed")
    );
    let _ = std::fs::remove_dir_all(&bundles);
}

#[test]
fn drain_fails_queued_work_cancels_stragglers_and_refuses_new_jobs() {
    let mut config = base_config(&[("g", "rmat:300:1200:7")]);
    config.max_concurrent = 1;
    let daemon = Daemon::start(config).expect("daemon starts");
    let client = Client::new(daemon.addr());
    let state = daemon.state().clone();

    // Negative epsilon: never converges, runs until cancelled.
    let long = r#"{"tenant":"a","graph":"g","program":"pagerank","args":{"e":-1.0,"d":0.85,"max_iter":40000}}"#;
    let running_id = client.submit(long).expect("accepted");
    let deadline = Instant::now() + Duration::from_secs(30);
    while state.job(&running_id).map(|r| r.state.status()) != Some("running") {
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }
    let queued_a = client.submit(long).expect("queued");
    let queued_b = client
        .submit(r#"{"tenant":"b","graph":"g","program":"sssp","args":{"root":"n:0"}}"#)
        .expect("queued");

    let graceful = daemon.drain();
    assert!(
        !graceful,
        "the long job cannot finish inside the drain window"
    );

    for id in [&queued_a, &queued_b] {
        let record = state.job(id).expect("record survives drain");
        assert_eq!(record.state.status(), "failed");
        match &record.state {
            gmd::job::JobState::Failed { kind, message, .. } => {
                assert_eq!(kind, "cancelled");
                assert_eq!(message, "daemon draining");
            }
            other => panic!("queued job ended as {other:?}"),
        }
    }
    let record = state.job(&running_id).expect("record survives drain");
    assert_eq!(record.state.status(), "failed", "straggler was cancelled");
    match &record.state {
        gmd::job::JobState::Failed { kind, .. } => assert_eq!(kind, "cancelled"),
        other => panic!("straggler ended as {other:?}"),
    }

    // The scheduler keeps refusing work after drain.
    let spec = gmd::JobSpec::from_json(
        &gm_obs::json::parse(r#"{"graph":"g","program":"pagerank"}"#).unwrap(),
    )
    .unwrap();
    match state.submit(spec) {
        Err(gmd::daemon::Reject::Draining) => {}
        other => panic!("expected draining rejection, got {other:?}"),
    }
}

#[test]
fn builtins_are_served_natively_and_stay_bit_identical_to_the_interpreter() {
    // Daemon A: default config — builtins run on the compiled-in rustgen
    // modules. Daemon B: native serving disabled — same jobs on the PIR
    // interpreter. Every fingerprint must match across the two.
    let native = Daemon::start(base_config(&[("g", "rmat:250:1400:11")])).expect("daemon A");
    let interp = Daemon::start(DaemonConfig {
        native_builtins: false,
        ..base_config(&[("g", "rmat:250:1400:11")])
    })
    .expect("daemon B");

    let jobs = [
        format!(r#"{{"tenant":"t","graph":"g","program":"pagerank",{PAGERANK_ARGS},"seed":3}}"#),
        r#"{"tenant":"t","graph":"g","program":"sssp","args":{"root":"n:5"},"seed":3}"#.to_owned(),
        r#"{"tenant":"t","graph":"g","program":"bc","args":{"K":4},"seed":3}"#.to_owned(),
    ];
    for job in &jobs {
        let ca = Client::new(native.addr()).with_timeout(Duration::from_secs(30));
        let cb = Client::new(interp.addr()).with_timeout(Duration::from_secs(30));
        let ia = ca.submit(job).expect("native daemon accepts");
        let ib = cb.submit(job).expect("interp daemon accepts");
        let sa = ca.wait(&ia, Duration::from_secs(120)).expect("terminal");
        let sb = cb.wait(&ib, Duration::from_secs(120)).expect("terminal");
        assert_eq!(sa.get("status").and_then(Json::as_str), Some("completed"));
        assert_eq!(sb.get("status").and_then(Json::as_str), Some("completed"));
        assert_eq!(
            sa.get("backend").and_then(Json::as_str),
            Some("native"),
            "builtin must be served by the native backend: {sa:?}"
        );
        assert_eq!(sb.get("backend").and_then(Json::as_str), Some("interp"));
        assert_eq!(
            fingerprints_of(&sa),
            fingerprints_of(&sb),
            "native serving diverged from the interpreter"
        );
        assert_eq!(
            sa.get("result").and_then(|r| r.get("supersteps")),
            sb.get("result").and_then(|r| r.get("supersteps"))
        );
        assert_eq!(
            sa.get("result").and_then(|r| r.get("ret")),
            sb.get("result").and_then(|r| r.get("ret"))
        );
    }

    // Inline source always compiles to PIR and runs on the interpreter,
    // even when its text equals a builtin's.
    let pagerank_src = gm_algorithms::sources::PAGERANK.replace('"', "\\\"");
    let inline_src_body = pagerank_src.replace('\n', "\\n");
    let inline = format!(
        r#"{{"tenant":"t","graph":"g","source":"{inline_src_body}",{PAGERANK_ARGS},"seed":3}}"#
    );
    let ca = Client::new(native.addr()).with_timeout(Duration::from_secs(30));
    let id = ca.submit(&inline).expect("inline accepted");
    let status = ca.wait(&id, Duration::from_secs(120)).expect("terminal");
    assert_eq!(status.get("backend").and_then(Json::as_str), Some("interp"));
    assert_eq!(
        status.get("status").and_then(Json::as_str),
        Some("completed")
    );
}
