//! Chaos acceptance: `kill -9` the real `gmd` binary mid-superstep under
//! concurrent two-tenant load, tear the journal tail, restart, and
//! assert that every journalled job reaches a terminal state with
//! per-column fingerprints bit-identical to an uninterrupted local run.
//!
//! This drives the actual binary (via `CARGO_BIN_EXE_gmd`), not the
//! library: SIGKILL must hit a separate process for the write-ahead
//! journal to be the only survivor.

use gm_core::seqinterp::ArgValue;
use gm_interp::run_compiled;
use gm_obs::json::Json;
use gmd::client::Client;
use gmd::fingerprint_values;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const GRAPH_SPEC: &str = "g=rmat:600:3000:7";
const SEED: u64 = 7;
const WORKERS: usize = 2;

/// Kills the child on panic/early return so a failed assertion never
/// leaks a daemon process.
struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gmd-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn spawn_daemon(dir: &Path, leg: &str) -> Guard {
    let addr_file = dir.join("addr");
    let _ = std::fs::remove_file(&addr_file);
    let stderr = std::fs::File::create(dir.join(format!("gmd-{leg}.stderr"))).expect("stderr file");
    let child = Command::new(env!("CARGO_BIN_EXE_gmd"))
        .args([
            "--graph",
            GRAPH_SPEC,
            "--listen",
            "127.0.0.1:0",
            "--addr-file",
            addr_file.to_str().expect("utf-8 path"),
            "--journal-dir",
            dir.join("journal").to_str().expect("utf-8 path"),
            "--checkpoint-every",
            "1",
            "--workers",
            "2",
            "--max-concurrent",
            "2",
            "--drain-timeout-ms",
            "2000",
        ])
        .stdout(Stdio::null())
        .stderr(stderr)
        .spawn()
        .expect("spawn gmd");
    Guard(child)
}

fn wait_addr(dir: &Path) -> SocketAddr {
    let addr_file = dir.join("addr");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(&addr_file) {
            if let Ok(addr) = text.trim().parse() {
                return addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "daemon never wrote {addr_file:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A deliberately long PageRank (60 supersteps; `e` never converges) so
/// SIGKILL reliably lands mid-run with checkpoints on disk.
fn job_body(tenant: &str) -> String {
    format!(
        r#"{{"tenant":"{tenant}","graph":"g","program":"pagerank",
            "args":{{"e":1e-30,"d":0.85,"max_iter":60}},
            "seed":{SEED},"workers":{WORKERS},"checkpoint_every":1}}"#
    )
}

/// The same run, uninterrupted and in-process: identical compile
/// pipeline, interpreter, graph, args, seed, and worker count as the
/// daemon — the bit-identity oracle.
fn local_reference() -> BTreeMap<String, String> {
    let graph = gm_graph::gen::rmat(600, 3000, 7);
    let compiled =
        greenmarl::service::compile_source(gm_algorithms::sources::PAGERANK).expect("compile");
    let args: std::collections::HashMap<String, ArgValue> = [
        (
            "e".to_owned(),
            ArgValue::Scalar(gm_core::value::Value::Double(1e-30)),
        ),
        (
            "d".to_owned(),
            ArgValue::Scalar(gm_core::value::Value::Double(0.85)),
        ),
        (
            "max_iter".to_owned(),
            ArgValue::Scalar(gm_core::value::Value::Int(60)),
        ),
    ]
    .into_iter()
    .collect();
    let config = gm_pregel::PregelConfig::with_workers(WORKERS);
    let out = run_compiled(&graph, &compiled, &args, SEED, &config).expect("reference run");
    out.node_props
        .iter()
        .map(|(name, values)| (name.clone(), fingerprint_values(values)))
        .collect()
}

fn newest_segment(journal: &Path) -> PathBuf {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(journal)
        .expect("journal dir")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "gmj"))
        .collect();
    segs.sort();
    segs.pop().expect("at least one segment")
}

#[test]
fn kill_nine_mid_superstep_then_restart_reaches_terminal_bit_identical_states() {
    let dir = fresh_dir("kill9");
    let journal = dir.join("journal");

    // Leg 1: daemon under two-tenant load.
    let mut daemon = spawn_daemon(&dir, "first");
    let addr = wait_addr(&dir);
    let client = Client::new(addr).with_timeout(Duration::from_secs(10));

    let mut ids = Vec::new();
    for tenant in ["acme", "globex"] {
        for _ in 0..2 {
            ids.push(client.submit(&job_body(tenant)).expect("submit"));
        }
    }

    // Kill only once the crash will have teeth: a checkpoint snapshot is
    // durable on disk AND some job is observably mid-run.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snapshot_on_disk = std::fs::read_dir(journal.join("ckpt"))
            .map(|jobs| {
                jobs.flatten().any(|job| {
                    std::fs::read_dir(job.path())
                        .map(|files| files.flatten().next().is_some())
                        .unwrap_or(false)
                })
            })
            .unwrap_or(false);
        let running = ids.iter().any(|id| {
            client
                .get_json(&format!("/v1/jobs/{id}"))
                .ok()
                .and_then(|(_, doc)| doc.get("status").and_then(Json::as_str).map(str::to_owned))
                .as_deref()
                == Some("running")
        });
        if snapshot_on_disk && running {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no checkpoint+running state within 30s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.0.kill().expect("SIGKILL");
    daemon.0.wait().expect("reap");
    drop(daemon);

    // Tear the journal tail: the torn record must be detected by CRC
    // framing and dropped without aborting replay.
    let seg = newest_segment(&journal);
    let bytes = std::fs::read(&seg).expect("read segment");
    assert!(bytes.len() > 3, "segment too small to tear");
    std::fs::write(&seg, &bytes[..bytes.len() - 3]).expect("tear tail");

    // Leg 2: restart over the same journal. Every job must reach a
    // terminal state; completed jobs must be bit-identical to the
    // uninterrupted reference.
    let _daemon = spawn_daemon(&dir, "second");
    let addr = wait_addr(&dir);
    let client = Client::new(addr)
        .with_timeout(Duration::from_secs(10))
        .with_reconnect(Duration::from_secs(10));

    let reference = local_reference();
    assert!(!reference.is_empty(), "pagerank exports node properties");
    for id in &ids {
        let status = client
            .wait(id, Duration::from_secs(60))
            .unwrap_or_else(|e| panic!("job {id} not terminal after restart: {e}"));
        let state = status.get("status").and_then(Json::as_str).expect("status");
        assert_eq!(
            state, "completed",
            "job {id} should complete after replay: {status}"
        );
        for (prop, want) in &reference {
            let got = status
                .get("result")
                .and_then(|r| r.get("fingerprints"))
                .and_then(|f| f.get(prop))
                .and_then(Json::as_str)
                .unwrap_or_else(|| panic!("job {id} missing fingerprint for {prop}: {status}"));
            assert_eq!(
                got, want,
                "job {id}: fingerprint for {prop} diverged from the uninterrupted run"
            );
        }
    }

    // The restarted daemon keeps serving fresh work on the resumed id
    // sequence (no id reuse after replay).
    let fresh = client
        .submit(&job_body("acme"))
        .expect("post-restart submit");
    assert!(
        !ids.contains(&fresh),
        "restart must not reuse journalled ids"
    );
    let status = client
        .wait(&fresh, Duration::from_secs(60))
        .expect("fresh job");
    assert_eq!(
        status.get("status").and_then(Json::as_str),
        Some("completed")
    );

    let _ = std::fs::remove_dir_all(&dir);
}
