//! Double-signal drain escalation against the real binary: the first
//! SIGTERM starts a graceful drain (queued work cancelled, running work
//! allowed to finish inside the drain window), a second SIGTERM latches
//! the abort and the daemon exits immediately — with every journalled
//! job at a terminal state, verified by replaying the journal after the
//! process is gone.

use gm_obs::json::Json;
use gm_obs::metrics::MetricsRegistry;
use gmd::client::Client;
use gmd::job::JobState;
use gmd::{Journal, JournalConfig};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Guard(Child);

impl Drop for Guard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gmd-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn sigterm(pid: u32) {
    let status = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("run kill");
    assert!(status.success(), "kill -TERM {pid} failed");
}

fn wait_addr(path: &Path) -> SocketAddr {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(addr) = text.trim().parse() {
                return addr;
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote {path:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn second_signal_escalates_a_stuck_drain_and_leaves_the_journal_terminal() {
    let dir = fresh_dir();
    let addr_file = dir.join("addr");
    let journal_dir = dir.join("journal");
    let stderr = std::fs::File::create(dir.join("gmd.stderr")).expect("stderr file");
    // A 60s drain window: without the second-signal escalation this test
    // could not finish in time, so a prompt exit *is* the assertion.
    let mut daemon = Guard(
        Command::new(env!("CARGO_BIN_EXE_gmd"))
            .args([
                "--graph",
                "big=rmat:4000:20000:7",
                "--listen",
                "127.0.0.1:0",
                "--addr-file",
                addr_file.to_str().expect("utf-8 path"),
                "--journal-dir",
                journal_dir.to_str().expect("utf-8 path"),
                "--workers",
                "2",
                "--max-concurrent",
                "1",
                "--drain-timeout-ms",
                "60000",
            ])
            .stdout(Stdio::null())
            .stderr(stderr)
            .spawn()
            .expect("spawn gmd"),
    );
    let pid = daemon.0.id();
    let client = Client::new(wait_addr(&addr_file)).with_timeout(Duration::from_secs(10));

    // One effectively-endless job hogs the single runner; a second job
    // queues behind it and can only ever terminate via the drain.
    let long = r#"{"tenant":"acme","graph":"big","program":"pagerank",
        "args":{"e":1e-30,"d":0.85,"max_iter":100000},"seed":7}"#;
    let running = client.submit(long).expect("long job");
    let queued = client.submit(long).expect("queued job");

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, doc) = client
            .get_json(&format!("/v1/jobs/{running}"))
            .expect("job status");
        if doc.get("status").and_then(Json::as_str) == Some("running") {
            break;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(5));
    }

    // First SIGTERM: drain begins but the running job will not finish
    // for hours — the daemon must still be alive shortly after.
    sigterm(pid);
    std::thread::sleep(Duration::from_millis(400));
    assert!(
        daemon.0.try_wait().expect("try_wait").is_none(),
        "daemon exited on the first signal despite a 60s drain window"
    );

    // Second SIGTERM: abort latch. The drain must stop waiting, cancel
    // the straggler, flush the journal, and exit successfully — well
    // under the drain window.
    sigterm(pid);
    let deadline = Instant::now() + Duration::from_secs(15);
    let status = loop {
        if let Some(status) = daemon.0.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            Instant::now() < deadline,
            "daemon ignored the second signal"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(status.success(), "escalated drain must still exit 0");

    // The journal (replayed post-mortem, exactly as a restart would)
    // holds both jobs at terminal cancelled states: nothing to requeue.
    let (_, replay) = Journal::open(
        &JournalConfig::new(&journal_dir),
        0,
        Arc::new(MetricsRegistry::new()),
    )
    .expect("replay journal");
    assert_eq!(replay.jobs.len(), 2);
    for job in &replay.jobs {
        assert!(
            !job.needs_requeue(),
            "job {} left non-terminal by the abort",
            job.id
        );
        let JobState::Failed { kind, .. } = &job.state else {
            panic!("job {} should be cancelled, got {:?}", job.id, job.state);
        };
        assert_eq!(kind, "cancelled", "job {}", job.id);
    }
    assert!(replay.jobs.iter().any(|j| j.id == running));
    assert!(replay.jobs.iter().any(|j| j.id == queued));

    let _ = std::fs::remove_dir_all(&dir);
}
