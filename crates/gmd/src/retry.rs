//! Retry policy for transiently-failed jobs: exponential backoff with
//! full jitter, bounded by per-tenant token budgets.
//!
//! The daemon's PR-8 heuristic — fail twice identically, then
//! quarantine — treated every failure as deterministic. Real serving
//! failures split into two classes: *transient* (a deadline blip under
//! load, a spill-write hiccup, a wedged worker) and *deterministic*
//! (bad arguments, a program that always overruns). This module handles
//! the first class: a transiently-failed job is re-queued after
//! `uniform(0, min(cap, base·2^(attempt-1)))` — AWS-style full jitter,
//! so synchronized failures do not retry in lockstep — while a
//! per-tenant token bucket stops a pathological tenant from converting
//! retries into amplification. Only when the retry budget is exhausted
//! does the failure become terminal and count toward quarantine.
//!
//! Randomness is a seeded xorshift64* (dependency-free, deterministic
//! given the job id hash and attempt), so tests can pin exact delays.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Failure-class slugs eligible for retry (transient by nature).
const TRANSIENT_KINDS: [&str; 5] = [
    "deadline_exceeded",
    "spill_failed",
    "worker_panicked",
    "budget_exceeded",
    "checkpoint",
];

/// The daemon-wide retry policy; per-request fields on
/// [`JobSpec`](crate::JobSpec) override the first three knobs.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Retries per job beyond the first attempt (`0` disables).
    pub max_retries: u32,
    /// Backoff base: the jitter ceiling of the first retry.
    pub base: Duration,
    /// Backoff ceiling regardless of attempt count.
    pub cap: Duration,
    /// Token-bucket capacity per tenant: at most this many retries in a
    /// burst across all of a tenant's jobs.
    pub tenant_tokens: u32,
    /// One token refills per tenant per this interval.
    pub tenant_refill: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(5),
            tenant_tokens: 8,
            tenant_refill: Duration::from_secs(10),
        }
    }
}

/// xorshift64* — the same dependency-free generator the graph
/// generators use.
fn xorshift(mut state: u64) -> u64 {
    state |= 1;
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    state.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

impl RetryPolicy {
    /// Whether a failure-class slug is transient (retry-eligible).
    pub fn is_transient(kind: &str) -> bool {
        TRANSIENT_KINDS.contains(&kind)
    }

    /// The policy with per-request overrides from a spec applied.
    pub fn for_spec(&self, spec: &crate::JobSpec) -> RetryPolicy {
        let mut p = self.clone();
        if let Some(r) = spec.max_retries {
            p.max_retries = r;
        }
        if let Some(ms) = spec.retry_base_ms {
            p.base = Duration::from_millis(ms);
        }
        if let Some(ms) = spec.retry_cap_ms {
            p.cap = Duration::from_millis(ms);
        }
        p
    }

    /// Full-jitter backoff before retry number `retry` (1-based):
    /// uniform in `[0, min(cap, base·2^(retry-1))]`, deterministic for
    /// a given `seed`.
    pub fn delay(&self, retry: u32, seed: u64) -> Duration {
        let base_ms = self.base.as_millis() as u64;
        let shift = u32::min(retry.saturating_sub(1), 32);
        let ceil_ms = base_ms
            .saturating_mul(1u64 << shift)
            .min(self.cap.as_millis() as u64);
        let r = xorshift(seed ^ (u64::from(retry) << 32));
        Duration::from_millis(r % (ceil_ms + 1))
    }
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Per-tenant retry token buckets (shared daemon state).
pub struct RetryBudget {
    capacity: f64,
    refill_per_sec: f64,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RetryBudget {
    /// A budget from the policy's tenant knobs.
    pub fn new(policy: &RetryPolicy) -> RetryBudget {
        RetryBudget {
            capacity: f64::from(policy.tenant_tokens),
            refill_per_sec: if policy.tenant_refill.is_zero() {
                f64::INFINITY
            } else {
                1.0 / policy.tenant_refill.as_secs_f64()
            },
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Takes one retry token for `tenant`; `false` means the tenant's
    /// budget is exhausted and the failure must become terminal.
    pub fn try_take(&self, tenant: &str) -> bool {
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let b = buckets.entry(tenant.to_owned()).or_insert(Bucket {
            tokens: self.capacity,
            last: now,
        });
        let refilled = b.tokens + now.duration_since(b.last).as_secs_f64() * self.refill_per_sec;
        b.tokens = refilled.min(self.capacity);
        b.last = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_obs::json::parse;

    #[test]
    fn transient_kinds_are_the_recoverable_ones() {
        for k in ["deadline_exceeded", "spill_failed", "worker_panicked"] {
            assert!(RetryPolicy::is_transient(k), "{k}");
        }
        for k in ["bad_argument", "invalid_config", "cancelled", "shed"] {
            assert!(!RetryPolicy::is_transient(k), "{k}");
        }
    }

    #[test]
    fn delay_is_deterministic_jittered_and_capped() {
        let p = RetryPolicy {
            base: Duration::from_millis(100),
            cap: Duration::from_millis(350),
            ..RetryPolicy::default()
        };
        // Deterministic for a fixed seed; ceiling doubles then caps.
        for retry in 1..=6 {
            let a = p.delay(retry, 42);
            let b = p.delay(retry, 42);
            assert_eq!(a, b);
            let ceil = Duration::from_millis(100u64.saturating_mul(1 << (retry - 1)).min(350));
            assert!(a <= ceil, "retry {retry}: {a:?} > {ceil:?}");
        }
        // Different seeds jitter differently (with overwhelming
        // probability over a 350ms range; these two are pinned).
        assert_ne!(p.delay(3, 1), p.delay(3, 2));
    }

    #[test]
    fn spec_overrides_apply() {
        let doc = parse(
            r#"{"graph":"g","program":"x","max_retries":7,
                "retry_base_ms":10,"retry_cap_ms":40}"#,
        )
        .unwrap();
        let spec = crate::JobSpec::from_json(&doc).unwrap();
        let p = RetryPolicy::default().for_spec(&spec);
        assert_eq!(p.max_retries, 7);
        assert_eq!(p.base, Duration::from_millis(10));
        assert_eq!(p.cap, Duration::from_millis(40));
        assert!(p.delay(10, 99) <= Duration::from_millis(40));
    }

    #[test]
    fn tenant_budget_exhausts_and_refills() {
        let policy = RetryPolicy {
            tenant_tokens: 2,
            tenant_refill: Duration::from_millis(30),
            ..RetryPolicy::default()
        };
        let budget = RetryBudget::new(&policy);
        assert!(budget.try_take("acme"));
        assert!(budget.try_take("acme"));
        assert!(!budget.try_take("acme"), "burst capacity is 2");
        assert!(budget.try_take("zeta"), "tenants are independent");
        std::thread::sleep(Duration::from_millis(40));
        assert!(budget.try_take("acme"), "refilled after the interval");
    }
}
