//! The HTTP surface: a [`Router`] over the shared daemon [`State`].
//!
//! Responses are line-delimited JSON (one object, trailing newline).
//! Rejections are structured: every error body carries an `error` slug
//! plus enough fields for a client to act on it programmatically
//! (`over_capacity` says what was requested and what the capacity is,
//! `quarantined` names the repeated failure kind, and so on).

use crate::daemon::{Reject, State};
use crate::job::JobSpec;
use gm_obs::http::{Request, Response, Router};
use gm_obs::json::{parse, Json};
use std::sync::Arc;

fn body(doc: Json) -> String {
    let mut text = doc.to_string();
    text.push('\n');
    text
}

fn error_body(status: u16, pairs: Vec<(String, Json)>) -> Response {
    Response::json(status, body(Json::obj(pairs)))
}

fn reject_response(reject: Reject) -> Response {
    let slug = |s: &str| ("error".to_owned(), Json::Str(s.to_owned()));
    let msg = |s: String| ("message".to_owned(), Json::Str(s));
    match reject {
        Reject::Draining => error_body(
            503,
            vec![slug("draining"), msg("daemon is shutting down".to_owned())],
        )
        .with_retry_after(1),
        Reject::UnknownGraph(name) => error_body(
            400,
            vec![
                slug("unknown_graph"),
                msg(format!("no graph named {name:?} is loaded")),
            ],
        ),
        Reject::UnknownProgram(name) => error_body(
            400,
            vec![
                slug("unknown_program"),
                msg(format!("no builtin named {name:?}")),
            ],
        ),
        Reject::CompileError(diagnostics) => error_body(
            400,
            vec![
                slug("compile_error"),
                ("diagnostics".to_owned(), Json::Str(diagnostics)),
            ],
        ),
        Reject::Quarantined { kind, count } => error_body(
            429,
            vec![
                slug("quarantined"),
                ("kind".to_owned(), Json::Str(kind)),
                ("failures".to_owned(), Json::UInt(u64::from(count))),
            ],
        )
        .with_retry_after(30),
        Reject::OverCapacity {
            what,
            requested,
            capacity,
        } => error_body(
            429,
            vec![
                slug("over_capacity"),
                ("budget".to_owned(), Json::Str(what.to_owned())),
                ("requested".to_owned(), Json::UInt(requested)),
                ("capacity".to_owned(), Json::UInt(capacity)),
            ],
        )
        .with_retry_after(5),
        Reject::QueueFull { cap } => error_body(
            429,
            vec![
                slug("queue_full"),
                ("capacity".to_owned(), Json::UInt(cap as u64)),
            ],
        )
        .with_retry_after(1),
        Reject::Shedding { retry_after } => {
            let seconds = retry_after.as_secs().max(1);
            error_body(
                503,
                vec![
                    slug("shedding"),
                    msg("brownout: shedding low-priority work".to_owned()),
                    (
                        "retry_after_ms".to_owned(),
                        Json::UInt(retry_after.as_millis() as u64),
                    ),
                ],
            )
            .with_retry_after(seconds)
        }
        Reject::JournalUnavailable(message) => {
            error_body(503, vec![slug("journal_unavailable"), msg(message)]).with_retry_after(1)
        }
        Reject::BadRequest(message) => error_body(400, vec![slug("bad_request"), msg(message)]),
    }
}

fn submit(state: &Arc<State>, req: &Request) -> Response {
    let doc = match parse(&req.body_str()) {
        Ok(doc) => doc,
        Err(e) => {
            return reject_response(Reject::BadRequest(format!("body is not JSON: {e:?}")));
        }
    };
    let spec = match JobSpec::from_json(&doc) {
        Ok(spec) => spec,
        Err(m) => return reject_response(Reject::BadRequest(m)),
    };
    match state.submit(spec) {
        Ok(id) => Response::new(
            202,
            "application/json",
            body(Json::obj([
                ("id".to_owned(), Json::Str(id)),
                ("status".to_owned(), Json::Str("queued".to_owned())),
            ])),
        ),
        Err(reject) => reject_response(reject),
    }
}

fn job_status(state: &Arc<State>, req: &Request) -> Response {
    let id = req.trailing("/v1/jobs/").unwrap_or("");
    match state.job(id) {
        Some(record) => Response::ok_json(body(record.to_json())),
        None => error_body(
            404,
            vec![
                ("error".to_owned(), Json::Str("unknown_job".to_owned())),
                ("id".to_owned(), Json::Str(id.to_owned())),
            ],
        ),
    }
}

fn graphs(state: &Arc<State>) -> Response {
    let list: Vec<Json> = state
        .graphs()
        .iter()
        .map(|(name, g)| {
            Json::obj([
                ("name".to_owned(), Json::Str(name.clone())),
                (
                    "nodes".to_owned(),
                    Json::UInt(u64::from(g.graph.num_nodes())),
                ),
                (
                    "edges".to_owned(),
                    Json::UInt(u64::from(g.graph.num_edges())),
                ),
            ])
        })
        .collect();
    let builtins: Vec<Json> = state
        .builtin_names()
        .into_iter()
        .map(|n| Json::Str(n.to_owned()))
        .collect();
    Response::ok_json(body(Json::obj([
        ("graphs".to_owned(), Json::Arr(list)),
        ("builtins".to_owned(), Json::Arr(builtins)),
    ])))
}

fn healthz(state: &Arc<State>) -> Response {
    Response::ok_json(body(Json::obj([
        ("ok".to_owned(), Json::Bool(true)),
        ("draining".to_owned(), Json::Bool(state.draining())),
        ("running".to_owned(), Json::UInt(state.running() as u64)),
    ])))
}

/// Builds the daemon's route table over shared state.
pub fn router(state: Arc<State>) -> Router {
    let s1 = state.clone();
    let s2 = state.clone();
    let s3 = state.clone();
    let s4 = state.clone();
    let s5 = state;
    Router::new()
        .route("POST", "/v1/jobs", move |req: &Request| submit(&s1, req))
        .route("GET", "/v1/jobs/*", move |req: &Request| {
            job_status(&s2, req)
        })
        .route("GET", "/v1/graphs", move |_req: &Request| graphs(&s3))
        .route("GET", "/healthz", move |_req: &Request| healthz(&s4))
        .route("GET", "/metrics", move |_req: &Request| {
            Response::new(
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                s5.registry().render_prometheus().into_bytes(),
            )
        })
}
