//! `gmd` — a long-lived multi-tenant graph-analytics daemon.
//!
//! Everything else in this workspace is batch CLI: load a graph, run one
//! program, exit. `gmd` is the serving shape the ROADMAP's north star
//! asks for: it loads one or more immutable graph snapshots **once** at
//! startup (named, shared via `Arc` across jobs), accepts jobs over a
//! line-delimited-JSON HTTP API, and executes them concurrently on a
//! bounded runner pool — with the governance layer from the batch world
//! applied *per job*:
//!
//! * **Admission control** — each job reserves message-byte and
//!   resident-byte budgets carved from a server-level total; a job whose
//!   request can never fit is rejected up front with a structured error,
//!   and the scheduler only starts jobs whose reservations fit alongside
//!   the currently running set, so accepted work degrades into queueing,
//!   never into oversubscription.
//! * **Fairness** — queued jobs are FIFO within a tenant and round-robin
//!   across tenants, so one chatty tenant cannot starve the rest.
//! * **Deadlines** — a per-job deadline arms the superstep watchdog; an
//!   overrunning job dies with a structured `deadline_exceeded` failure
//!   while its bundle documents why.
//! * **Quarantine** — a (graph, program) pair that fails identically
//!   twice is refused further submissions until the daemon restarts,
//!   breaking crash loops at the front door.
//! * **Forensics** — failures are sealed into post-mortem bundles
//!   (retention-capped via `GM_POST_MORTEM_KEEP`) and surfaced in the
//!   job's status document.
//!
//! The HTTP surface:
//!
//! | endpoint | behaviour |
//! |---|---|
//! | `POST /v1/jobs` | submit a job (one JSON object per line), `202` + id |
//! | `GET /v1/jobs/<id>` | status / result / failure, `200` |
//! | `GET /v1/graphs` | loaded snapshots with shapes |
//! | `GET /healthz` | liveness + drain state |
//! | `GET /metrics` | Prometheus exposition incl. `gm_jobs_*` series |
//!
//! A job names a loaded graph plus either a precompiled **builtin**
//! (the paper's six algorithms, compiled once at startup) or inline
//! Green-Marl **source**, compiled at submit time through the same
//! library pipeline as `gmc` with the PIR verifier forced on — malformed
//! tenant programs become structured `400`s, not daemon crashes.
//!
//! Results are returned with per-property FNV-1a fingerprints (see
//! [`fingerprint_values`]) so clients can assert bit-identical agreement
//! with local runs without shipping whole columns; small jobs can opt
//! into full columns with `"include_props": true`.

pub mod api;
pub mod client;
pub mod daemon;
pub mod job;
pub mod journal;
pub mod retry;

pub use daemon::{Daemon, DaemonConfig, GraphSpec};
pub use job::{JobSpec, ProgramSpec};
pub use journal::{Journal, JournalConfig, JournalRecord, Replay};
pub use retry::RetryPolicy;

use gm_core::value::Value;

/// FNV-1a 64-bit over a byte stream — the stable, dependency-free hash
/// used to fingerprint result columns.
#[derive(Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Renders a [`Value`] into the canonical tagged form fingerprints hash.
/// `f64` goes through Rust's shortest-roundtrip `Display`, so two runs
/// producing bit-identical doubles render (and hash) identically.
pub fn render_value(v: &Value) -> String {
    match v {
        Value::Int(x) => format!("i:{x}"),
        Value::Double(x) => format!("d:{x}"),
        Value::Bool(x) => format!("b:{x}"),
        Value::Node(x) => format!("n:{x}"),
        Value::Edge(x) => format!("e:{x}"),
    }
}

/// Fingerprints a value column: FNV-1a 64 over the tagged renderings,
/// newline-separated, as a fixed-width hex string. Clients compare this
/// against the same function applied to a local
/// [`gm_interp::run_compiled`] outcome to assert bit-identical results.
pub fn fingerprint_values(values: &[Value]) -> String {
    let mut h = Fnv1a::default();
    for v in values {
        h.update(render_value(v).as_bytes());
        h.update(b"\n");
    }
    format!("{:016x}", h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_and_value_sensitive() {
        let a = fingerprint_values(&[Value::Int(1), Value::Int(2)]);
        let b = fingerprint_values(&[Value::Int(2), Value::Int(1)]);
        let c = fingerprint_values(&[Value::Int(1), Value::Int(2)]);
        assert_ne!(a, b);
        assert_eq!(a, c);
        // Type tags keep equal renderings of different types distinct.
        assert_ne!(
            fingerprint_values(&[Value::Int(1)]),
            fingerprint_values(&[Value::Node(1)])
        );
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // Standard FNV-1a 64 test vector: "a" -> 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::default();
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
