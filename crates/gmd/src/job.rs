//! Job specifications and records: the wire schema of the `gmd` API.
//!
//! A *spec* is what a tenant POSTs (one JSON object per line); a *record*
//! is the daemon's view of a job over its lifetime, rendered back as the
//! status document `GET /v1/jobs/<id>` serves. Parsing is strict about
//! shape (unknown graphs, bad arg types, negative budgets are structured
//! `400`s) because specs arrive from untrusted tenants.

use crate::{fingerprint_values, render_value};
use gm_core::seqinterp::ArgValue;
use gm_core::value::Value;
use gm_obs::json::Json;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

/// The program half of a job: a named precompiled builtin, or inline
/// Green-Marl source compiled at submit time.
#[derive(Clone, Debug, PartialEq)]
pub enum ProgramSpec {
    /// One of the six builtins compiled at startup (`"pagerank"`,
    /// `"sssp"`, ...).
    Builtin(String),
    /// Inline Green-Marl source.
    Source(String),
}

impl ProgramSpec {
    /// A short, label-safe name for metrics and the quarantine signature.
    /// Inline sources are identified by content fingerprint, so resubmits
    /// of the same bad program share a signature.
    pub fn label(&self) -> String {
        match self {
            ProgramSpec::Builtin(name) => name.clone(),
            ProgramSpec::Source(src) => {
                let mut h = crate::Fnv1a::default();
                h.update(src.as_bytes());
                format!("source-{:016x}", h.finish())
            }
        }
    }
}

/// A parsed job submission.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Tenant the job is accounted (and queued) under.
    pub tenant: String,
    /// Name of a loaded graph snapshot.
    pub graph: String,
    /// What to run.
    pub program: ProgramSpec,
    /// Scalar arguments by parameter name.
    pub args: BTreeMap<String, Value>,
    /// `G.PickRandom()` seed (default 0), as in `gmc run --seed`.
    pub seed: u64,
    /// Worker-count override; `None` uses the daemon default.
    pub workers: Option<usize>,
    /// Per-job deadline arming the superstep watchdog.
    pub deadline: Option<Duration>,
    /// Requested in-flight message-byte budget; `None` takes the
    /// daemon's fair share (total / max_concurrent).
    pub max_message_bytes: Option<u64>,
    /// Requested resident value-store budget; `None` takes the fair
    /// share.
    pub max_resident_bytes: Option<u64>,
    /// Return full property columns, not just fingerprints.
    pub include_props: bool,
    /// Scheduling priority (default 0; higher survives brownout
    /// shedding longer).
    pub priority: i64,
    /// Snapshot interval in supersteps; `None` takes the daemon's
    /// `--checkpoint-every` default (which may be off). Checkpointed
    /// jobs resume from their newest valid snapshot after a daemon
    /// crash instead of restarting at superstep 0.
    pub checkpoint_every: Option<u32>,
    /// Transient-failure retry budget override; `None` takes the
    /// daemon's policy default, `Some(0)` disables retries.
    pub max_retries: Option<u32>,
    /// Retry backoff base override (milliseconds).
    pub retry_base_ms: Option<u64>,
    /// Retry backoff cap override (milliseconds).
    pub retry_cap_ms: Option<u64>,
}

fn parse_scalar(name: &str, v: &Json) -> Result<Value, String> {
    match v {
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(n) => Ok(Value::Int(*n)),
        Json::UInt(n) => i64::try_from(*n)
            .map(Value::Int)
            .map_err(|_| format!("arg `{name}` does not fit an i64")),
        Json::Num(n) => Ok(Value::Double(*n)),
        // The `gmc --arg` node syntax: "n:17".
        Json::Str(s) => match s.strip_prefix("n:") {
            Some(id) => id
                .parse::<u32>()
                .map(Value::Node)
                .map_err(|_| format!("arg `{name}`: bad node id {s:?}")),
            None => Err(format!(
                "arg `{name}`: strings must be node refs like \"n:17\""
            )),
        },
        _ => Err(format!("arg `{name}` must be a scalar")),
    }
}

impl JobSpec {
    /// Parses a submission document.
    pub fn from_json(doc: &Json) -> Result<JobSpec, String> {
        if !matches!(doc, Json::Obj(_)) {
            return Err("job must be a JSON object".to_owned());
        }
        let tenant = doc
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or("default")
            .to_owned();
        if tenant.is_empty() {
            return Err("tenant must be non-empty".to_owned());
        }
        let graph = doc
            .get("graph")
            .and_then(Json::as_str)
            .ok_or("missing required field `graph`")?
            .to_owned();
        let program = match (
            doc.get("program").and_then(Json::as_str),
            doc.get("source").and_then(Json::as_str),
        ) {
            (Some(name), None) => ProgramSpec::Builtin(name.to_owned()),
            (None, Some(src)) => ProgramSpec::Source(src.to_owned()),
            (Some(_), Some(_)) => {
                return Err("give either `program` or `source`, not both".to_owned())
            }
            (None, None) => return Err("missing `program` (builtin name) or `source`".to_owned()),
        };
        let mut args = BTreeMap::new();
        if let Some(raw) = doc.get("args") {
            let Json::Obj(map) = raw else {
                return Err("`args` must be an object".to_owned());
            };
            for (name, v) in map {
                args.insert(name.clone(), parse_scalar(name, v)?);
            }
        }
        let seed = doc.get("seed").and_then(Json::as_u64).unwrap_or(0);
        let workers = match doc.get("workers") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .filter(|&w| w >= 1)
                    .ok_or("`workers` must be a positive integer")? as usize,
            ),
        };
        let deadline = match doc.get("deadline_ms") {
            None => None,
            Some(v) => Some(Duration::from_millis(
                v.as_u64()
                    .filter(|&ms| ms >= 1)
                    .ok_or("`deadline_ms` must be a positive integer")?,
            )),
        };
        let budget_field = |key: &str| -> Result<Option<u64>, String> {
            match doc.get(key) {
                None => Ok(None),
                Some(v) => v
                    .as_u64()
                    .filter(|&b| b >= 1)
                    .map(Some)
                    .ok_or(format!("`{key}` must be a positive integer")),
            }
        };
        let max_message_bytes = budget_field("max_message_bytes")?;
        let max_resident_bytes = budget_field("max_resident_bytes")?;
        let include_props = matches!(doc.get("include_props"), Some(Json::Bool(true)));
        let priority = match doc.get("priority") {
            None => 0,
            Some(Json::Int(n)) => *n,
            Some(Json::UInt(n)) => {
                i64::try_from(*n).map_err(|_| "`priority` does not fit an i64".to_owned())?
            }
            Some(_) => return Err("`priority` must be an integer".to_owned()),
        };
        let checkpoint_every = match doc.get("checkpoint_every") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .filter(|&e| (1..=u64::from(u32::MAX)).contains(&e))
                    .ok_or("`checkpoint_every` must be a positive integer")? as u32,
            ),
        };
        let max_retries = match doc.get("max_retries") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .filter(|&r| r <= 1000)
                    .ok_or("`max_retries` must be an integer in 0..=1000")? as u32,
            ),
        };
        let retry_base_ms = budget_field("retry_base_ms")?;
        let retry_cap_ms = budget_field("retry_cap_ms")?;
        Ok(JobSpec {
            tenant,
            graph,
            program,
            args,
            seed,
            workers,
            deadline,
            max_message_bytes,
            max_resident_bytes,
            include_props,
            priority,
            checkpoint_every,
            max_retries,
            retry_base_ms,
            retry_cap_ms,
        })
    }

    /// Renders the spec back into the submission-document shape, such
    /// that `from_json(to_json(spec)) == spec`. The journal persists
    /// accepted jobs in this form so a restarted daemon re-admits them
    /// through the exact parsing path submissions take.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("tenant".to_owned(), Json::Str(self.tenant.clone())),
            ("graph".to_owned(), Json::Str(self.graph.clone())),
        ];
        match &self.program {
            ProgramSpec::Builtin(name) => {
                pairs.push(("program".to_owned(), Json::Str(name.clone())));
            }
            ProgramSpec::Source(src) => {
                pairs.push(("source".to_owned(), Json::Str(src.clone())));
            }
        }
        if !self.args.is_empty() {
            pairs.push((
                "args".to_owned(),
                Json::obj(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), value_json(v)))
                        .collect::<Vec<_>>(),
                ),
            ));
        }
        if self.seed != 0 {
            pairs.push(("seed".to_owned(), Json::UInt(self.seed)));
        }
        if let Some(w) = self.workers {
            pairs.push(("workers".to_owned(), Json::UInt(w as u64)));
        }
        if let Some(d) = self.deadline {
            pairs.push(("deadline_ms".to_owned(), Json::UInt(d.as_millis() as u64)));
        }
        if let Some(b) = self.max_message_bytes {
            pairs.push(("max_message_bytes".to_owned(), Json::UInt(b)));
        }
        if let Some(b) = self.max_resident_bytes {
            pairs.push(("max_resident_bytes".to_owned(), Json::UInt(b)));
        }
        if self.include_props {
            pairs.push(("include_props".to_owned(), Json::Bool(true)));
        }
        if self.priority != 0 {
            pairs.push(("priority".to_owned(), Json::Int(self.priority)));
        }
        if let Some(e) = self.checkpoint_every {
            pairs.push(("checkpoint_every".to_owned(), Json::UInt(u64::from(e))));
        }
        if let Some(r) = self.max_retries {
            pairs.push(("max_retries".to_owned(), Json::UInt(u64::from(r))));
        }
        if let Some(ms) = self.retry_base_ms {
            pairs.push(("retry_base_ms".to_owned(), Json::UInt(ms)));
        }
        if let Some(ms) = self.retry_cap_ms {
            pairs.push(("retry_cap_ms".to_owned(), Json::UInt(ms)));
        }
        Json::obj(pairs)
    }

    /// Converts the parsed scalars into interpreter arguments.
    pub fn arg_values(&self) -> std::collections::HashMap<String, ArgValue> {
        self.args
            .iter()
            .map(|(k, v)| (k.clone(), ArgValue::Scalar(*v)))
            .collect()
    }
}

/// The terminal outcome of a successful job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Procedure return value, if any.
    pub ret: Option<Value>,
    /// Final master globals.
    pub globals: BTreeMap<String, Value>,
    /// FNV-1a fingerprint per node-property column.
    pub fingerprints: BTreeMap<String, String>,
    /// Full columns, when the spec asked for them.
    pub props: Option<BTreeMap<String, Vec<Value>>>,
    /// Supersteps executed.
    pub supersteps: u32,
    /// Total messages exchanged.
    pub total_messages: u64,
    /// Total metered message bytes.
    pub total_message_bytes: u64,
}

impl JobResult {
    /// Builds the result from an interpreter outcome.
    pub fn from_outcome(outcome: &gm_interp::CompiledOutcome, include_props: bool) -> JobResult {
        let fingerprints = outcome
            .node_props
            .iter()
            .map(|(name, col)| (name.clone(), fingerprint_values(col)))
            .collect();
        JobResult {
            ret: outcome.ret,
            globals: outcome
                .globals
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            fingerprints,
            props: include_props.then(|| {
                outcome
                    .node_props
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect()
            }),
            supersteps: outcome.metrics.supersteps,
            total_messages: outcome.metrics.total_messages,
            total_message_bytes: outcome.metrics.total_message_bytes,
        }
    }
}

/// Where a job is in its lifetime.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Accepted, waiting for a runner slot.
    Queued,
    /// Executing on a runner.
    Running,
    /// Failed transiently; waiting out a backoff delay before requeue.
    Retrying {
        /// The attempt that just failed (1-based).
        attempt: u32,
        /// Failure-class slug of the transient failure.
        kind: String,
    },
    /// Finished successfully.
    Completed(JobResult),
    /// Finished with a structured failure.
    Failed {
        /// Stable failure-class slug ([`gm_pregel::PregelError::kind`]
        /// or `"bad_argument"`).
        kind: String,
        /// Human-readable rendering.
        message: String,
        /// Post-mortem bundle, when one was written.
        bundle: Option<PathBuf>,
    },
}

impl JobState {
    /// The wire name of the state.
    pub fn status(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Retrying { .. } => "retrying",
            JobState::Completed(_) => "completed",
            JobState::Failed { .. } => "failed",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Completed(_) | JobState::Failed { .. })
    }
}

/// The daemon's record of one job.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Wire id (`"job-<n>"`).
    pub id: String,
    /// Owning tenant.
    pub tenant: String,
    /// Graph the job runs on.
    pub graph: String,
    /// Program label (builtin name or source fingerprint).
    pub program: String,
    /// Execution backend: `"interp"`, or `"native"` for builtins served
    /// by a compiled-in `gm-core::rustgen` module.
    pub backend: &'static str,
    /// Current state.
    pub state: JobState,
    /// Execution attempts started so far (1 for a job that never
    /// retried).
    pub attempts: u32,
    /// End-to-end milliseconds (submit → terminal), once terminal.
    pub wall_ms: Option<f64>,
}

pub(crate) fn value_json(v: &Value) -> Json {
    match v {
        Value::Int(x) => Json::Int(*x),
        Value::Double(x) => Json::Num(*x),
        Value::Bool(x) => Json::Bool(*x),
        // Tagged strings, mirroring the arg syntax, so node/edge refs
        // survive the round trip unambiguously.
        Value::Node(_) | Value::Edge(_) => Json::Str(render_value(v)),
    }
}

impl JobRecord {
    /// Renders the status document.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".to_owned(), Json::Str(self.id.clone())),
            ("tenant".to_owned(), Json::Str(self.tenant.clone())),
            ("graph".to_owned(), Json::Str(self.graph.clone())),
            ("program".to_owned(), Json::Str(self.program.clone())),
            ("backend".to_owned(), Json::Str(self.backend.to_owned())),
            (
                "status".to_owned(),
                Json::Str(self.state.status().to_owned()),
            ),
        ];
        if self.attempts > 0 {
            pairs.push(("attempts".to_owned(), Json::UInt(u64::from(self.attempts))));
        }
        if let Some(ms) = self.wall_ms {
            pairs.push(("wall_ms".to_owned(), Json::Num(ms)));
        }
        match &self.state {
            JobState::Completed(r) => {
                let mut result = vec![
                    (
                        "ret".to_owned(),
                        r.ret.as_ref().map(value_json).unwrap_or(Json::Null),
                    ),
                    (
                        "globals".to_owned(),
                        Json::obj(
                            r.globals
                                .iter()
                                .map(|(k, v)| (k.clone(), value_json(v)))
                                .collect::<Vec<_>>(),
                        ),
                    ),
                    (
                        "fingerprints".to_owned(),
                        Json::obj(
                            r.fingerprints
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect::<Vec<_>>(),
                        ),
                    ),
                    ("supersteps".to_owned(), Json::UInt(u64::from(r.supersteps))),
                    ("total_messages".to_owned(), Json::UInt(r.total_messages)),
                    (
                        "total_message_bytes".to_owned(),
                        Json::UInt(r.total_message_bytes),
                    ),
                ];
                if let Some(props) = &r.props {
                    result.push((
                        "props".to_owned(),
                        Json::obj(
                            props
                                .iter()
                                .map(|(k, col)| {
                                    (k.clone(), Json::Arr(col.iter().map(value_json).collect()))
                                })
                                .collect::<Vec<_>>(),
                        ),
                    ));
                }
                pairs.push(("result".to_owned(), Json::obj(result)));
            }
            JobState::Failed {
                kind,
                message,
                bundle,
            } => {
                pairs.push((
                    "error".to_owned(),
                    Json::obj([
                        ("kind".to_owned(), Json::Str(kind.clone())),
                        ("message".to_owned(), Json::Str(message.clone())),
                        (
                            "bundle".to_owned(),
                            bundle
                                .as_ref()
                                .map(|p| Json::Str(p.display().to_string()))
                                .unwrap_or(Json::Null),
                        ),
                    ]),
                ));
            }
            JobState::Retrying { attempt, kind } => {
                pairs.push((
                    "retry".to_owned(),
                    Json::obj([
                        ("attempt".to_owned(), Json::UInt(u64::from(*attempt))),
                        ("kind".to_owned(), Json::Str(kind.clone())),
                    ]),
                ));
            }
            JobState::Queued | JobState::Running => {}
        }
        Json::obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_obs::json::parse;

    #[test]
    fn parses_a_full_spec() {
        let doc = parse(
            r#"{"tenant":"acme","graph":"g1","program":"pagerank",
                "args":{"e":1e-9,"d":0.85,"max_iter":10,"root":"n:3","flag":true},
                "seed":7,"workers":2,"deadline_ms":500,
                "max_message_bytes":4096,"include_props":true}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&doc).unwrap();
        assert_eq!(spec.tenant, "acme");
        assert_eq!(spec.program, ProgramSpec::Builtin("pagerank".to_owned()));
        assert_eq!(spec.args["d"], Value::Double(0.85));
        assert_eq!(spec.args["max_iter"], Value::Int(10));
        assert_eq!(spec.args["root"], Value::Node(3));
        assert_eq!(spec.args["flag"], Value::Bool(true));
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.workers, Some(2));
        assert_eq!(spec.deadline, Some(Duration::from_millis(500)));
        assert_eq!(spec.max_message_bytes, Some(4096));
        assert!(spec.include_props);
    }

    #[test]
    fn rejects_malformed_specs() {
        let cases = [
            r#"{"program":"pagerank"}"#,                        // no graph
            r#"{"graph":"g"}"#,                                 // no program
            r#"{"graph":"g","program":"x","source":"y"}"#,      // both
            r#"{"graph":"g","program":"x","args":{"k":[1]}}"#,  // non-scalar arg
            r#"{"graph":"g","program":"x","args":{"s":"oh"}}"#, // bad string arg
            r#"{"graph":"g","program":"x","workers":0}"#,       // zero workers
            r#"{"graph":"g","program":"x","deadline_ms":0}"#,   // zero deadline
            r#"{"graph":"g","program":"x","tenant":""}"#,       // empty tenant
        ];
        for c in cases {
            let doc = parse(c).unwrap();
            assert!(JobSpec::from_json(&doc).is_err(), "accepted: {c}");
        }
    }

    #[test]
    fn spec_round_trips_through_json() {
        let doc = parse(
            r#"{"tenant":"acme","graph":"g1","program":"pagerank",
                "args":{"e":1e-9,"d":0.85,"max_iter":10,"root":"n:3","flag":true},
                "seed":7,"workers":2,"deadline_ms":500,
                "max_message_bytes":4096,"include_props":true,
                "priority":-2,"checkpoint_every":3,
                "max_retries":0,"retry_base_ms":50,"retry_cap_ms":2000}"#,
        )
        .unwrap();
        let spec = JobSpec::from_json(&doc).unwrap();
        assert_eq!(spec.priority, -2);
        assert_eq!(spec.checkpoint_every, Some(3));
        assert_eq!(spec.max_retries, Some(0));
        let round = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(round, spec);

        // Defaults are omitted on the way out and restored on the way in.
        let minimal = parse(r#"{"graph":"g","source":"Procedure p() {}"}"#).unwrap();
        let spec = JobSpec::from_json(&minimal).unwrap();
        let round = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(round, spec);
    }

    #[test]
    fn rejects_bad_durability_fields() {
        let cases = [
            r#"{"graph":"g","program":"x","priority":1.5}"#,
            r#"{"graph":"g","program":"x","checkpoint_every":0}"#,
            r#"{"graph":"g","program":"x","max_retries":1001}"#,
            r#"{"graph":"g","program":"x","retry_base_ms":0}"#,
        ];
        for c in cases {
            let doc = parse(c).unwrap();
            assert!(JobSpec::from_json(&doc).is_err(), "accepted: {c}");
        }
    }

    #[test]
    fn source_labels_are_content_addressed() {
        let a = ProgramSpec::Source("Procedure p() {}".to_owned());
        let b = ProgramSpec::Source("Procedure p() {}".to_owned());
        let c = ProgramSpec::Source("Procedure q() {}".to_owned());
        assert_eq!(a.label(), b.label());
        assert_ne!(a.label(), c.label());
        assert!(a.label().starts_with("source-"));
    }

    #[test]
    fn record_renders_terminal_states() {
        let rec = JobRecord {
            id: "job-1".to_owned(),
            tenant: "t".to_owned(),
            graph: "g".to_owned(),
            program: "pagerank".to_owned(),
            backend: "interp",
            state: JobState::Failed {
                kind: "deadline_exceeded".to_owned(),
                message: "superstep 3 exceeded its deadline".to_owned(),
                bundle: Some(PathBuf::from("/tmp/b/bundle-1-0")),
            },
            attempts: 1,
            wall_ms: Some(12.5),
        };
        let doc = rec.to_json();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("failed"));
        let err = doc.get("error").unwrap();
        assert_eq!(
            err.get("kind").and_then(Json::as_str),
            Some("deadline_exceeded")
        );
        assert!(err.get("bundle").and_then(Json::as_str).is_some());
    }
}
