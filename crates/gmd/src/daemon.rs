//! The daemon core: graph store, admission control, the fair scheduler,
//! and the bounded job-runner pool.
//!
//! Concurrency model: `max_concurrent` runner threads block on a condvar
//! over one scheduler mutex. Submission (from HTTP handler threads)
//! enqueues under that mutex; runners pick work *round-robin across
//! tenants, FIFO within a tenant*, and only when the job's budget
//! reservation fits next to everything already running — so admission
//! rejects the impossible, the scheduler delays the currently
//! unaffordable, and running jobs are never oversubscribed.

use crate::job::{JobRecord, JobResult, JobSpec, JobState};
use crate::journal::{Journal, JournalConfig, JournalRecord, Replay, ReplayedJob};
use crate::retry::{RetryBudget, RetryPolicy};
use gm_algorithms::native::{NativeAlgorithm, NativeRun};
use gm_core::seqinterp::ArgValue;
use gm_core::value::Value;
use gm_core::Compiled;
use gm_graph::io::{read_edge_list_file_with, LoadPolicy, LoadedGraph};
use gm_interp::{run_compiled, RunError};
use gm_obs::metrics::MetricsRegistry;
use gm_pregel::{CheckpointConfig, PostMortemConfig, PregelConfig, ResourceBudget};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One graph to load at startup: a name plus either an edge-list path or
/// a generator spec (`rmat:<nodes>:<edges>:<seed>` /
/// `uniform:<nodes>:<edges>:<seed>`), as given to `--graph name=<spec>`.
#[derive(Clone, Debug)]
pub struct GraphSpec {
    /// Name jobs refer to the snapshot by.
    pub name: String,
    /// Path or generator spec.
    pub source: String,
}

impl GraphSpec {
    /// Parses a `name=<path-or-generator>` argument.
    pub fn parse(arg: &str) -> Result<GraphSpec, String> {
        let (name, source) = arg
            .split_once('=')
            .ok_or_else(|| format!("--graph wants name=<path|rmat:n:m:seed>, got {arg:?}"))?;
        if name.is_empty() || source.is_empty() {
            return Err(format!(
                "--graph wants a non-empty name and source: {arg:?}"
            ));
        }
        Ok(GraphSpec {
            name: name.to_owned(),
            source: source.to_owned(),
        })
    }

    fn load(&self) -> Result<LoadedGraph, String> {
        let gen3 = |spec: &str| -> Result<(u32, usize, u64), String> {
            let parts: Vec<&str> = spec.split(':').collect();
            let [n, m, s] = parts[..] else {
                return Err(format!(
                    "generator spec wants <nodes>:<edges>:<seed>: {spec:?}"
                ));
            };
            Ok((
                n.parse()
                    .map_err(|e| format!("bad node count {n:?}: {e}"))?,
                m.parse()
                    .map_err(|e| format!("bad edge count {m:?}: {e}"))?,
                s.parse().map_err(|e| format!("bad seed {s:?}: {e}"))?,
            ))
        };
        if let Some(spec) = self.source.strip_prefix("rmat:") {
            let (n, m, s) = gen3(spec)?;
            return Ok(synthetic(gm_graph::gen::rmat(n, m, s), s));
        }
        if let Some(spec) = self.source.strip_prefix("uniform:") {
            let (n, m, s) = gen3(spec)?;
            return Ok(synthetic(gm_graph::gen::uniform_random(n, m, s), s));
        }
        read_edge_list_file_with(&self.source, LoadPolicy::Strict)
            .map_err(|e| format!("cannot load graph {}: {e}", self.name))
    }
}

/// Wraps a generated graph with deterministic synthetic weights (the
/// same `1..=16` scheme the bench crate uses for SSSP inputs).
fn synthetic(graph: gm_graph::Graph, seed: u64) -> LoadedGraph {
    let mut state = seed | 1;
    let weights = (0..graph.num_edges())
        .map(|_| {
            // xorshift64*: cheap, deterministic, dependency-free.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            (state.wrapping_mul(0x2545_f491_4f6c_dd1d) % 16 + 1) as i64
        })
        .collect();
    LoadedGraph {
        graph,
        weights,
        stats: Default::default(),
    }
}

/// Daemon-level configuration (the CLI populates this from flags).
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Listen address (`host:port`, port 0 for ephemeral).
    pub listen: String,
    /// Graphs to load at startup.
    pub graphs: Vec<GraphSpec>,
    /// Runner threads — the maximum number of concurrently executing
    /// jobs.
    pub max_concurrent: usize,
    /// Maximum queued (accepted but not yet running) jobs across all
    /// tenants.
    pub queue_cap: usize,
    /// Default per-job Pregel worker count (a job may override).
    pub default_workers: usize,
    /// Server-level in-flight message-byte budget jobs reserve from.
    pub total_message_bytes: u64,
    /// Server-level resident value-store budget jobs reserve from.
    pub total_resident_bytes: u64,
    /// Deadline applied to jobs that do not set one (`None` = no
    /// deadline).
    pub default_deadline: Option<Duration>,
    /// Post-mortem bundle capture for failed jobs.
    pub post_mortem: Option<PostMortemConfig>,
    /// Identical failures of one (graph, program) signature before new
    /// submissions of it are refused.
    pub quarantine_threshold: u32,
    /// How long [`Daemon::drain`] waits for running jobs before
    /// cancelling them.
    pub drain_timeout: Duration,
    /// Serve builtins through the compiled-in `gm-core::rustgen` modules
    /// instead of the PIR interpreter. Selection uses the same rule as
    /// `gmc run --backend native`: a builtin runs natively only when its
    /// freshly emitted Rust is byte-identical to the checked-in module,
    /// so results stay bit-for-bit pinned to the interpreter.
    pub native_builtins: bool,
    /// Write-ahead job journal (`--journal-dir`). `None` keeps the
    /// pre-PR-10 in-memory-only behaviour.
    pub journal: Option<JournalConfig>,
    /// Terminal job records kept in memory, oldest evicted first
    /// (`0` = unlimited).
    pub job_history_keep: usize,
    /// Daemon-wide retry policy for transiently-failed jobs.
    pub retry: RetryPolicy,
    /// Brownout degradation: shed queued work under sustained
    /// reservation saturation. `None` disables shedding.
    pub brownout: Option<BrownoutConfig>,
    /// Escalation latch: set (by a second SIGINT/SIGTERM) to turn a
    /// graceful drain into an immediate cooperative abort.
    pub abort: Arc<AtomicBool>,
}

/// Brownout degradation knobs: when budget reservations stay saturated
/// past `hold`, queued work is shed lowest-priority-first down to
/// `shed_to`, and further submissions get `503 shedding` until the
/// saturation clears.
#[derive(Clone, Debug)]
pub struct BrownoutConfig {
    /// Fraction of either server-level byte budget at which the daemon
    /// counts as saturated.
    pub saturation: f64,
    /// How long saturation must persist before shedding starts.
    pub hold: Duration,
    /// Queue depth shedding drains down to (and the admission ceiling
    /// while the brownout is active).
    pub shed_to: usize,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            saturation: 0.9,
            hold: Duration::from_secs(2),
            shed_to: 8,
        }
    }
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            listen: "127.0.0.1:0".to_owned(),
            graphs: Vec::new(),
            max_concurrent: 4,
            queue_cap: 64,
            default_workers: 2,
            total_message_bytes: 1 << 30,
            total_resident_bytes: 4u64 << 30,
            default_deadline: None,
            post_mortem: PostMortemConfig::from_env(),
            quarantine_threshold: 2,
            drain_timeout: Duration::from_secs(10),
            native_builtins: true,
            journal: None,
            job_history_keep: 0,
            retry: RetryPolicy::default(),
            brownout: None,
            abort: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl DaemonConfig {
    /// A job's fair-share message budget: what it reserves when it does
    /// not ask for an explicit amount.
    pub fn fair_message_bytes(&self) -> u64 {
        (self.total_message_bytes / self.max_concurrent.max(1) as u64).max(1)
    }

    /// A job's fair-share resident budget.
    pub fn fair_resident_bytes(&self) -> u64 {
        (self.total_resident_bytes / self.max_concurrent.max(1) as u64).max(1)
    }
}

/// Why a submission was refused at the door.
#[derive(Clone, Debug)]
pub enum Reject {
    /// The daemon is shutting down.
    Draining,
    /// The named graph is not loaded.
    UnknownGraph(String),
    /// The named builtin does not exist.
    UnknownProgram(String),
    /// Inline source failed to compile (rendered diagnostics).
    CompileError(String),
    /// The (graph, program) signature is quarantined after repeated
    /// identical failures.
    Quarantined {
        /// Failure-class slug of the repeated failure.
        kind: String,
        /// How many identical failures were seen.
        count: u32,
    },
    /// The requested budget can never fit the server totals.
    OverCapacity {
        /// Which budget overflowed.
        what: &'static str,
        /// Bytes the job asked for.
        requested: u64,
        /// The server-level total.
        capacity: u64,
    },
    /// The queue is at capacity.
    QueueFull {
        /// The configured cap.
        cap: usize,
    },
    /// Brownout: sustained saturation is shedding low-priority work and
    /// the queue is already at the brownout ceiling.
    Shedding {
        /// Suggested client backoff.
        retry_after: Duration,
    },
    /// The write-ahead journal could not persist the acceptance record;
    /// a daemon that cannot journal must not accept.
    JournalUnavailable(String),
    /// The spec itself is malformed.
    BadRequest(String),
}

struct QueuedJob {
    id: String,
    spec: JobSpec,
    compiled: Arc<Compiled>,
    /// Native entry point, when the job is a builtin served by a
    /// compiled-in `rustgen` module.
    native: Option<NativeRun>,
    /// Reserved message bytes (explicit request or fair share).
    msg_bytes: u64,
    /// Reserved resident bytes.
    res_bytes: u64,
    submitted: Instant,
    /// Attempts already burned (0 for a fresh submission; >0 after
    /// retries or a crash-replay requeue).
    attempt: u32,
}

/// A retried job parked until its backoff elapses.
struct Delayed {
    not_before: Instant,
    job: QueuedJob,
}

#[derive(Default)]
struct Sched {
    /// Per-tenant FIFO queues.
    queues: BTreeMap<String, VecDeque<QueuedJob>>,
    /// Round-robin position over the (sorted) tenant list.
    cursor: usize,
    queued: usize,
    running: usize,
    reserved_msg: u64,
    reserved_res: u64,
    draining: bool,
    shutdown: bool,
    /// Retried jobs waiting out their backoff (not counted in `queued`
    /// until promoted).
    delayed: Vec<Delayed>,
    /// When reservation saturation was first observed (brownout timer).
    saturated_since: Option<Instant>,
    /// Whether the brownout is currently shedding.
    brownout: bool,
}

struct Quarantine {
    kind: String,
    count: u32,
}

/// Shared daemon state; HTTP handlers and runners both hold an `Arc`.
pub struct State {
    config: DaemonConfig,
    graphs: BTreeMap<String, Arc<LoadedGraph>>,
    builtins: BTreeMap<String, Arc<Compiled>>,
    /// Builtins whose emitted Rust matched a compiled-in native module,
    /// by builtin name (empty when `native_builtins` is off).
    native_builtins: BTreeMap<String, &'static NativeAlgorithm>,
    registry: Arc<MetricsRegistry>,
    jobs: Mutex<HashMap<String, JobRecord>>,
    sched: Mutex<Sched>,
    work_cv: Condvar,
    job_seq: AtomicU64,
    /// Shared cooperative-cancellation token: set during a timed-out
    /// drain so stragglers stop at their next superstep boundary.
    cancel: Arc<AtomicBool>,
    quarantine: Mutex<HashMap<(String, String), Quarantine>>,
    /// Write-ahead job journal (`Some` when `--journal-dir` is set).
    journal: Option<Journal>,
    /// Per-tenant retry token buckets.
    retry_budget: RetryBudget,
    /// Terminal job ids in completion order, for oldest-first history GC.
    history: Mutex<VecDeque<String>>,
}

impl State {
    /// The daemon configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// The loaded graph snapshots.
    pub fn graphs(&self) -> &BTreeMap<String, Arc<LoadedGraph>> {
        &self.graphs
    }

    /// Builtin program names, for error messages and `/v1/graphs`-style
    /// introspection.
    pub fn builtin_names(&self) -> Vec<&str> {
        self.builtins.keys().map(String::as_str).collect()
    }

    /// The metrics registry (runtime + `gm_jobs_*` series).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Whether the daemon is refusing new work.
    pub fn draining(&self) -> bool {
        self.sched
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .draining
    }

    /// Currently running job count.
    pub fn running(&self) -> usize {
        self.sched.lock().unwrap_or_else(|e| e.into_inner()).running
    }

    /// A snapshot of one job's record.
    pub fn job(&self, id: &str) -> Option<JobRecord> {
        self.jobs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(id)
            .cloned()
    }

    fn lock_sched(&self) -> MutexGuard<'_, Sched> {
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_jobs(&self) -> MutexGuard<'_, HashMap<String, JobRecord>> {
        self.jobs.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Validates, admits, and enqueues a job. Returns the job id.
    pub fn submit(self: &Arc<Self>, mut spec: JobSpec) -> Result<String, Reject> {
        let graph = spec.graph.clone();
        if !self.graphs.contains_key(&graph) {
            return Err(Reject::UnknownGraph(graph));
        }
        // Resolve the program *before* taking any lock: compiling inline
        // source is the slow part and must not serialize submissions.
        let (compiled, native) = match &spec.program {
            crate::ProgramSpec::Builtin(name) => (
                self.builtins
                    .get(name)
                    .cloned()
                    .ok_or_else(|| Reject::UnknownProgram(name.clone()))?,
                self.native_builtins.get(name.as_str()).map(|a| a.run),
            ),
            crate::ProgramSpec::Source(src) => (
                Arc::new(greenmarl::service::compile_source(src).map_err(Reject::CompileError)?),
                None,
            ),
        };
        let label = spec.program.label();
        {
            let q = self.quarantine.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(entry) = q.get(&(graph.clone(), label.clone())) {
                if entry.count >= self.config.quarantine_threshold {
                    self.reject_metric("quarantined");
                    return Err(Reject::Quarantined {
                        kind: entry.kind.clone(),
                        count: entry.count,
                    });
                }
            }
        }
        let msg_bytes = spec
            .max_message_bytes
            .unwrap_or_else(|| self.config.fair_message_bytes());
        let res_bytes = spec
            .max_resident_bytes
            .unwrap_or_else(|| self.config.fair_resident_bytes());
        if msg_bytes > self.config.total_message_bytes {
            self.reject_metric("over_capacity");
            return Err(Reject::OverCapacity {
                what: "message_bytes",
                requested: msg_bytes,
                capacity: self.config.total_message_bytes,
            });
        }
        if res_bytes > self.config.total_resident_bytes {
            self.reject_metric("over_capacity");
            return Err(Reject::OverCapacity {
                what: "resident_bytes",
                requested: res_bytes,
                capacity: self.config.total_resident_bytes,
            });
        }

        // Pin the effective worker count when journalling: checkpoint
        // resume after a crash must re-run with the same parallelism so
        // floating-point reductions stay bit-identical.
        if self.journal.is_some() {
            spec.workers = Some(spec.workers.unwrap_or(self.config.default_workers));
        }

        let mut sched = self.lock_sched();
        let shed = self.update_brownout(&mut sched, Instant::now());
        let admitted = 'admit: {
            if sched.draining {
                self.reject_metric("draining");
                break 'admit Err(Reject::Draining);
            }
            if let Some(b) = &self.config.brownout {
                if sched.brownout && sched.queued >= b.shed_to {
                    self.reject_metric("shedding");
                    break 'admit Err(Reject::Shedding {
                        retry_after: b.hold,
                    });
                }
            }
            if sched.queued >= self.config.queue_cap {
                self.reject_metric("queue_full");
                break 'admit Err(Reject::QueueFull {
                    cap: self.config.queue_cap,
                });
            }
            let id = format!("job-{}", self.job_seq.fetch_add(1, Ordering::Relaxed));
            let record = JobRecord {
                id: id.clone(),
                tenant: spec.tenant.clone(),
                graph,
                program: label,
                backend: if native.is_some() { "native" } else { "interp" },
                state: JobState::Queued,
                wall_ms: None,
                attempts: 0,
            };
            // Write-ahead discipline: the acceptance is journalled
            // *before* it becomes observable; if the journal cannot
            // persist it, the daemon must not accept.
            if let Some(journal) = &self.journal {
                if let Err(e) = journal.append(&JournalRecord::Accepted {
                    id: id.clone(),
                    backend: record.backend.to_owned(),
                    spec: spec.clone(),
                }) {
                    self.reject_metric("journal_unavailable");
                    break 'admit Err(Reject::JournalUnavailable(e.to_string()));
                }
            }
            self.lock_jobs().insert(id.clone(), record);
            let tenant = spec.tenant.clone();
            sched
                .queues
                .entry(tenant.clone())
                .or_default()
                .push_back(QueuedJob {
                    id: id.clone(),
                    spec,
                    compiled,
                    native,
                    msg_bytes,
                    res_bytes,
                    submitted: Instant::now(),
                    attempt: 0,
                });
            sched.queued += 1;
            Ok((id, tenant, sched.queued))
        };
        drop(sched);
        self.fail_shed(shed);
        let (id, tenant, depth) = admitted?;
        self.registry
            .counter_with(
                "gm_jobs_submitted_total",
                "jobs accepted",
                &[("tenant", &tenant)],
            )
            .inc();
        self.set_queue_depth(depth);
        self.work_cv.notify_all();
        Ok(id)
    }

    /// Evaluates the brownout condition under the scheduler lock. Once
    /// reservation saturation has persisted past the hold, queued work
    /// is dequeued lowest-priority-first (newest-first within a
    /// priority) down to the shed floor; the returned jobs must be
    /// failed by the caller *after* dropping the lock.
    fn update_brownout(&self, sched: &mut Sched, now: Instant) -> Vec<QueuedJob> {
        let Some(b) = &self.config.brownout else {
            return Vec::new();
        };
        let saturated = sched.reserved_msg as f64
            >= b.saturation * self.config.total_message_bytes as f64
            || sched.reserved_res as f64 >= b.saturation * self.config.total_resident_bytes as f64;
        if !saturated {
            sched.saturated_since = None;
            sched.brownout = false;
            return Vec::new();
        }
        let since = *sched.saturated_since.get_or_insert(now);
        if now.duration_since(since) < b.hold {
            return Vec::new();
        }
        sched.brownout = true;
        let mut shed = Vec::new();
        while sched.queued > b.shed_to {
            let mut victim: Option<(String, usize, i64, Instant)> = None;
            for (tenant, q) in &sched.queues {
                for (i, job) in q.iter().enumerate() {
                    let better = match &victim {
                        None => true,
                        Some((_, _, p, s)) => {
                            job.spec.priority < *p
                                || (job.spec.priority == *p && job.submitted > *s)
                        }
                    };
                    if better {
                        victim = Some((tenant.clone(), i, job.spec.priority, job.submitted));
                    }
                }
            }
            let Some((tenant, idx, _, _)) = victim else {
                break;
            };
            let q = sched.queues.get_mut(&tenant).expect("victim's queue");
            let job = q.remove(idx).expect("victim's index");
            if q.is_empty() {
                sched.queues.remove(&tenant);
            }
            sched.queued -= 1;
            shed.push(job);
        }
        shed
    }

    /// Fails shed jobs (journal + record + metrics) outside the
    /// scheduler lock.
    fn fail_shed(self: &Arc<Self>, shed: Vec<QueuedJob>) {
        for job in shed {
            let wall_ms = job.submitted.elapsed().as_secs_f64() * 1e3;
            let message = "brownout: shed under sustained saturation".to_owned();
            self.journal_append(&JournalRecord::Failed {
                id: job.id.clone(),
                wall_ms,
                kind: "shed".to_owned(),
                message: message.clone(),
                bundle: None,
            });
            self.registry
                .counter_with(
                    "gm_jobs_shed_total",
                    "queued jobs shed during brownout",
                    &[("tenant", &job.spec.tenant)],
                )
                .inc();
            self.finish_job(
                &job.id,
                JobState::Failed {
                    kind: "shed".to_owned(),
                    message,
                    bundle: None,
                },
                wall_ms,
                job.attempt,
            );
        }
    }

    /// Best-effort journal append for transitions that must not fail the
    /// job they describe (terminal records, checkpoints): an error is
    /// counted, not propagated — replay will re-run the job, which is
    /// safe because results are deterministic.
    fn journal_append(&self, rec: &JournalRecord) {
        let Some(journal) = &self.journal else { return };
        if journal.append(rec).is_err() {
            self.registry
                .counter_with(
                    "gm_journal_append_errors_total",
                    "journal appends that failed after acceptance",
                    &[("type", rec.kind())],
                )
                .inc();
        }
    }

    /// Moves a job to a terminal state and applies oldest-first history
    /// GC when `--job-history-keep` bounds the in-memory records.
    fn finish_job(&self, id: &str, state: JobState, wall_ms: f64, attempts: u32) {
        {
            let mut jobs = self.lock_jobs();
            if let Some(rec) = jobs.get_mut(id) {
                rec.state = state;
                rec.wall_ms = Some(wall_ms);
                rec.attempts = attempts;
            }
        }
        let keep = self.config.job_history_keep;
        let mut evict = Vec::new();
        {
            let mut history = self.history.lock().unwrap_or_else(|e| e.into_inner());
            history.push_back(id.to_owned());
            if keep > 0 {
                while history.len() > keep {
                    evict.push(history.pop_front().expect("len checked"));
                }
            }
        }
        if !evict.is_empty() {
            let mut jobs = self.lock_jobs();
            for victim in evict {
                jobs.remove(&victim);
            }
        }
    }

    fn reject_metric(&self, reason: &str) {
        self.registry
            .counter_with(
                "gm_jobs_rejected_total",
                "jobs refused at admission",
                &[("reason", reason)],
            )
            .inc();
    }

    fn set_queue_depth(&self, depth: usize) {
        self.registry
            .gauge("gm_jobs_queue_depth", "accepted jobs waiting for a runner")
            .set(depth as f64);
    }

    fn set_running(&self, running: usize) {
        self.registry
            .gauge("gm_jobs_running", "jobs currently executing")
            .set(running as f64);
    }

    /// Picks the next runnable job: round-robin over tenants, FIFO within
    /// each, skipping tenants whose front job does not currently fit the
    /// remaining budget.
    fn pick(&self, sched: &mut Sched) -> Option<QueuedJob> {
        let tenants: Vec<String> = sched.queues.keys().cloned().collect();
        if tenants.is_empty() {
            return None;
        }
        let n = tenants.len();
        for i in 0..n {
            let tenant = &tenants[(sched.cursor + i) % n];
            let Some(queue) = sched.queues.get_mut(tenant) else {
                continue;
            };
            let Some(front) = queue.front() else {
                continue;
            };
            let fits = sched.reserved_msg + front.msg_bytes <= self.config.total_message_bytes
                && sched.reserved_res + front.res_bytes <= self.config.total_resident_bytes;
            if !fits {
                continue;
            }
            let job = queue.pop_front().expect("front checked above");
            if queue.is_empty() {
                sched.queues.remove(tenant);
            }
            // Advance past the chosen tenant so the next pick starts at
            // its successor — round-robin, not lowest-name-wins.
            sched.cursor = (sched.cursor + i + 1) % n.max(1);
            sched.queued -= 1;
            sched.running += 1;
            sched.reserved_msg += job.msg_bytes;
            sched.reserved_res += job.res_bytes;
            return Some(job);
        }
        None
    }

    /// Promotes retried jobs whose backoff has elapsed back into their
    /// tenant queues.
    fn promote_due(&self, sched: &mut Sched) {
        let now = Instant::now();
        let mut i = 0;
        while i < sched.delayed.len() {
            if sched.delayed[i].not_before <= now {
                let d = sched.delayed.swap_remove(i);
                if let Some(rec) = self.lock_jobs().get_mut(&d.job.id) {
                    rec.state = JobState::Queued;
                }
                sched
                    .queues
                    .entry(d.job.spec.tenant.clone())
                    .or_default()
                    .push_back(d.job);
                sched.queued += 1;
            } else {
                i += 1;
            }
        }
    }

    fn runner_loop(self: &Arc<Self>) {
        loop {
            let job = {
                let mut sched = self.lock_sched();
                loop {
                    if sched.shutdown {
                        return;
                    }
                    self.promote_due(&mut sched);
                    if let Some(job) = self.pick(&mut sched) {
                        let depth = sched.queued;
                        let running = sched.running;
                        drop(sched);
                        self.set_queue_depth(depth);
                        self.set_running(running);
                        break job;
                    }
                    // With retried jobs parked, sleep only until the
                    // earliest backoff elapses.
                    match sched.delayed.iter().map(|d| d.not_before).min() {
                        Some(due) => {
                            let wait = due
                                .saturating_duration_since(Instant::now())
                                .max(Duration::from_millis(1));
                            let (s, _) = self
                                .work_cv
                                .wait_timeout(sched, wait)
                                .unwrap_or_else(|e| e.into_inner());
                            sched = s;
                        }
                        None => {
                            sched = self.work_cv.wait(sched).unwrap_or_else(|e| e.into_inner());
                        }
                    }
                }
            };
            self.execute(job);
            let mut sched = self.lock_sched();
            // Reservation release must mirror pick() exactly.
            sched.running -= 1;
            let running = sched.running;
            drop(sched);
            self.set_running(running);
            self.work_cv.notify_all();
        }
    }

    /// Runs one job attempt, updates its record and metrics, and
    /// releases its byte reservations (the caller releases the
    /// running-slot count). Transient failures within the retry budget
    /// re-park the job with full-jitter backoff instead of finishing it.
    fn execute(self: &Arc<Self>, job: QueuedJob) {
        let attempt = job.attempt + 1;
        self.journal_append(&JournalRecord::Started {
            id: job.id.clone(),
            attempt,
        });
        if let Some(rec) = self.lock_jobs().get_mut(&job.id) {
            rec.state = JobState::Running;
            rec.attempts = attempt;
        }
        let graph = self.graphs[&job.spec.graph].clone();
        let mut args = job.spec.arg_values();
        // Like `gmc run`: the first declared edge-property parameter is
        // fed from the snapshot's weight column unless supplied.
        if let Some((name, _)) = job.compiled.program.edge_props.first() {
            args.entry(name.clone()).or_insert_with(|| {
                ArgValue::EdgeProp(graph.weights.iter().map(|&w| Value::Int(w)).collect())
            });
        }
        let mut budget = ResourceBudget::unbounded()
            .with_max_message_bytes(job.msg_bytes)
            .with_max_resident_bytes(job.res_bytes);
        if let Some(d) = job.spec.deadline.or(self.config.default_deadline) {
            budget = budget.with_superstep_deadline(d);
        }
        let workers = job.spec.workers.unwrap_or(self.config.default_workers);
        let mut config = PregelConfig::with_workers(workers)
            .with_budget(budget)
            .with_registry(self.registry.clone())
            .with_cancel(self.cancel.clone());
        config.post_mortem = self.config.post_mortem.clone();
        // Arm crash checkpoints when journalling: a later attempt (or a
        // restarted daemon) resumes from the newest valid snapshot, and
        // each durable snapshot is echoed into the journal.
        if let Some(journal) = &self.journal {
            let every = job.spec.checkpoint_every.or_else(|| {
                self.config
                    .journal
                    .as_ref()
                    .and_then(|j| j.checkpoint_every)
            });
            if let Some(every) = every {
                let me = self.clone();
                let id = job.id.clone();
                config = config.with_checkpoints(
                    CheckpointConfig::new(journal.checkpoint_dir(&job.id), every)
                        .with_resume(true)
                        .with_keep(2)
                        .with_on_write(move |superstep| {
                            me.journal_append(&JournalRecord::Checkpointed {
                                id: id.clone(),
                                superstep,
                            });
                        }),
                );
            }
        }

        let outcome = match job.native {
            Some(run) => run(&graph.graph, &args, job.spec.seed, &config),
            None => run_compiled(&graph.graph, &job.compiled, &args, job.spec.seed, &config),
        };
        let wall_ms = job.submitted.elapsed().as_secs_f64() * 1e3;
        let tenant = job.spec.tenant.clone();
        let state = match outcome {
            Ok(out) => {
                let result = JobResult::from_outcome(&out, job.spec.include_props);
                self.journal_append(&JournalRecord::Completed {
                    id: job.id.clone(),
                    wall_ms,
                    result: result.clone(),
                });
                self.registry
                    .counter_with(
                        "gm_jobs_completed_total",
                        "jobs finished successfully",
                        &[("tenant", &tenant)],
                    )
                    .inc();
                JobState::Completed(result)
            }
            Err(err) => {
                let (kind, message, bundle) = match err {
                    RunError::BadArgument(m) => ("bad_argument".to_owned(), m, None),
                    RunError::Pregel(e) => {
                        let rendered = e.to_string();
                        let kind = e.kind().to_owned();
                        let (_, bundle) = e.detach_post_mortem();
                        (kind, rendered, bundle)
                    }
                };
                let policy = self.config.retry.for_spec(&job.spec);
                let draining = self.lock_sched().draining;
                if RetryPolicy::is_transient(&kind)
                    && attempt <= policy.max_retries
                    && !draining
                    && self.retry_budget.try_take(&tenant)
                {
                    // Transient and within budget: park with backoff
                    // instead of finishing. The failure does NOT count
                    // toward quarantine.
                    let seed = {
                        let mut h = crate::Fnv1a::default();
                        h.update(job.id.as_bytes());
                        h.finish()
                    };
                    let delay = policy.delay(attempt, seed);
                    self.journal_append(&JournalRecord::Retrying {
                        id: job.id.clone(),
                        attempt,
                        kind: kind.clone(),
                        delay_ms: delay.as_millis() as u64,
                    });
                    if let Some(rec) = self.lock_jobs().get_mut(&job.id) {
                        rec.state = JobState::Retrying {
                            attempt,
                            kind: kind.clone(),
                        };
                        rec.attempts = attempt;
                    }
                    self.registry
                        .counter_with(
                            "gm_jobs_retried_total",
                            "transient failures scheduled for retry",
                            &[("tenant", &tenant), ("kind", &kind)],
                        )
                        .inc();
                    let msg_bytes = job.msg_bytes;
                    let res_bytes = job.res_bytes;
                    let not_before = Instant::now() + delay;
                    let mut sched = self.lock_sched();
                    sched.reserved_msg -= msg_bytes;
                    sched.reserved_res -= res_bytes;
                    sched.delayed.push(Delayed {
                        not_before,
                        job: QueuedJob { attempt, ..job },
                    });
                    return;
                }
                self.journal_append(&JournalRecord::Failed {
                    id: job.id.clone(),
                    wall_ms,
                    kind: kind.clone(),
                    message: message.clone(),
                    bundle: bundle.clone(),
                });
                self.note_failure(&job.spec.graph, &job.spec.program.label(), &kind);
                self.registry
                    .counter_with(
                        "gm_jobs_failed_total",
                        "jobs finished in failure",
                        &[("tenant", &tenant)],
                    )
                    .inc();
                JobState::Failed {
                    kind,
                    message,
                    bundle,
                }
            }
        };
        if let Some(journal) = &self.journal {
            journal.remove_checkpoints(&job.id);
        }
        self.registry
            .histogram_with(
                "gm_job_latency_ms",
                "end-to-end job latency (submit to terminal state)",
                &[("tenant", &tenant)],
            )
            .observe(wall_ms);
        self.finish_job(&job.id, state, wall_ms, attempt);
        let mut sched = self.lock_sched();
        sched.reserved_msg -= job.msg_bytes;
        sched.reserved_res -= job.res_bytes;
    }

    /// Records a failure signature; repeated identical kinds accumulate
    /// toward quarantine, a different kind resets the signature.
    fn note_failure(&self, graph: &str, label: &str, kind: &str) {
        // Cancellation is the host stopping the job, not the job
        // misbehaving — it must not poison the signature.
        if kind == "cancelled" {
            return;
        }
        let mut q = self.quarantine.lock().unwrap_or_else(|e| e.into_inner());
        let entry = q
            .entry((graph.to_owned(), label.to_owned()))
            .or_insert_with(|| Quarantine {
                kind: kind.to_owned(),
                count: 0,
            });
        if entry.kind == kind {
            entry.count += 1;
        } else {
            entry.kind = kind.to_owned();
            entry.count = 1;
        }
    }

    /// Applies the journal replay at startup: terminal jobs become
    /// history, non-terminal jobs are re-queued (pre-admitted — they
    /// already passed admission before the crash).
    fn apply_replay(self: &Arc<Self>, replay: Replay) {
        for job in replay.jobs {
            let record = JobRecord {
                id: job.id.clone(),
                tenant: job.spec.tenant.clone(),
                graph: job.spec.graph.clone(),
                program: job.spec.program.label(),
                backend: if job.backend == "native" {
                    "native"
                } else {
                    "interp"
                },
                state: JobState::Queued,
                wall_ms: None,
                attempts: job.attempts,
            };
            if !job.needs_requeue() {
                let mut rec = record;
                rec.state = job.state;
                rec.wall_ms = job.wall_ms;
                self.lock_jobs().insert(job.id.clone(), rec);
                self.history
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push_back(job.id);
                continue;
            }
            self.lock_jobs().insert(job.id.clone(), record);
            self.requeue_replayed(job);
        }
    }

    /// Re-queues one non-terminal replayed job, re-resolving its program
    /// against the restarted daemon's catalogue.
    fn requeue_replayed(self: &Arc<Self>, job: ReplayedJob) {
        if !self.graphs.contains_key(&job.spec.graph) {
            return self.fail_replayed(
                &job,
                "unknown_graph",
                format!("graph {:?} is not loaded after restart", job.spec.graph),
            );
        }
        let (compiled, native) = match &job.spec.program {
            crate::ProgramSpec::Builtin(name) => {
                let Some(c) = self.builtins.get(name).cloned() else {
                    return self.fail_replayed(
                        &job,
                        "unknown_program",
                        format!("builtin {name:?} is unknown after restart"),
                    );
                };
                (c, self.native_builtins.get(name.as_str()).map(|a| a.run))
            }
            crate::ProgramSpec::Source(src) => match greenmarl::service::compile_source(src) {
                Ok(c) => (Arc::new(c), None),
                Err(e) => return self.fail_replayed(&job, "compile_error", e),
            },
        };
        let msg_bytes = job
            .spec
            .max_message_bytes
            .unwrap_or_else(|| self.config.fair_message_bytes());
        let res_bytes = job
            .spec
            .max_resident_bytes
            .unwrap_or_else(|| self.config.fair_resident_bytes());
        if let Some(rec) = self.lock_jobs().get_mut(&job.id) {
            rec.backend = if native.is_some() { "native" } else { "interp" };
        }
        let mut sched = self.lock_sched();
        sched
            .queues
            .entry(job.spec.tenant.clone())
            .or_default()
            .push_back(QueuedJob {
                id: job.id.clone(),
                spec: job.spec,
                compiled,
                native,
                msg_bytes,
                res_bytes,
                submitted: Instant::now(),
                attempt: job.attempts,
            });
        sched.queued += 1;
        let depth = sched.queued;
        drop(sched);
        self.set_queue_depth(depth);
        self.work_cv.notify_all();
    }

    /// Fails a replayed job that can no longer run (its graph or
    /// program disappeared across the restart).
    fn fail_replayed(self: &Arc<Self>, job: &ReplayedJob, kind: &str, message: String) {
        let wall_ms = job.wall_ms.unwrap_or(0.0);
        self.journal_append(&JournalRecord::Failed {
            id: job.id.clone(),
            wall_ms,
            kind: kind.to_owned(),
            message: message.clone(),
            bundle: None,
        });
        self.finish_job(
            &job.id,
            JobState::Failed {
                kind: kind.to_owned(),
                message,
                bundle: None,
            },
            wall_ms,
            job.attempts,
        );
    }
}

/// A running daemon: HTTP server + runner pool over shared [`State`].
pub struct Daemon {
    state: Arc<State>,
    server: Option<gm_obs::http::HttpServer>,
    runners: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Loads graphs, compiles the builtins, binds the listener, and
    /// starts the runner pool.
    pub fn start(config: DaemonConfig) -> Result<Daemon, String> {
        if config.graphs.is_empty() {
            return Err("no graphs configured (need at least one --graph name=<spec>)".to_owned());
        }
        if config.max_concurrent == 0 {
            return Err("max_concurrent must be >= 1".to_owned());
        }
        let mut graphs = BTreeMap::new();
        for spec in &config.graphs {
            if graphs
                .insert(spec.name.clone(), Arc::new(spec.load()?))
                .is_some()
            {
                return Err(format!("duplicate graph name {:?}", spec.name));
            }
        }
        let mut builtins = BTreeMap::new();
        let mut native_builtins = BTreeMap::new();
        for (name, src) in builtin_sources() {
            let compiled = greenmarl::service::compile_source(src)
                .map_err(|e| format!("builtin {name} failed to compile: {e}"))?;
            if config.native_builtins {
                // Same selection rule as `gmc run --backend native`: only
                // adopt the compiled-in module when it is byte-identical
                // to what the emitter would produce today.
                if let Some(alg) = gm_core::rustgen::emit_rust(&compiled.program)
                    .ok()
                    .as_deref()
                    .and_then(gm_algorithms::native::find_for_generated)
                {
                    native_builtins.insert(name.to_owned(), alg);
                }
            }
            builtins.insert(name.to_owned(), Arc::new(compiled));
        }
        let registry = Arc::new(MetricsRegistry::new());
        // Open (and replay) the journal before anything is observable:
        // the id sequence must resume above every journalled id.
        let (journal, replay) = match &config.journal {
            Some(jc) => {
                let (j, r) = Journal::open(jc, config.job_history_keep, registry.clone())
                    .map_err(|e| format!("cannot open journal at {}: {e}", jc.dir.display()))?;
                (Some(j), Some(r))
            }
            None => (None, None),
        };
        let job_seq = replay.as_ref().map(|r| r.max_job_seq + 1).unwrap_or(1);
        let retry_budget = RetryBudget::new(&config.retry);
        let state = Arc::new(State {
            registry,
            graphs,
            builtins,
            native_builtins,
            jobs: Mutex::new(HashMap::new()),
            sched: Mutex::new(Sched::default()),
            work_cv: Condvar::new(),
            job_seq: AtomicU64::new(job_seq),
            cancel: Arc::new(AtomicBool::new(false)),
            quarantine: Mutex::new(HashMap::new()),
            journal,
            retry_budget,
            history: Mutex::new(VecDeque::new()),
            config,
        });
        if let Some(replay) = replay {
            state.apply_replay(replay);
        }
        let runners = (0..state.config.max_concurrent)
            .map(|i| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("gmd-runner-{i}"))
                    .spawn(move || state.runner_loop())
                    .map_err(|e| format!("cannot spawn runner: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let server = crate::api::router(state.clone())
            .serve(&state.config.listen)
            .map_err(|e| format!("cannot bind {}: {e}", state.config.listen))?;
        Ok(Daemon {
            state,
            server: Some(server),
            runners,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.server.as_ref().expect("server runs until drop").addr()
    }

    /// The shared state (tests and the CLI reach metrics through it).
    pub fn state(&self) -> &Arc<State> {
        &self.state
    }

    /// Graceful shutdown: refuse new submissions, fail queued jobs as
    /// `cancelled`, wait up to the drain timeout for running jobs, then
    /// cancel stragglers cooperatively and stop the pool and listener.
    /// Returns `true` when every running job finished on its own.
    pub fn drain(mut self) -> bool {
        let state = self.state.clone();
        let deadline = Instant::now() + state.config.drain_timeout;

        let mut sched = state.lock_sched();
        sched.draining = true;
        // Queued jobs (including retried jobs waiting out a backoff) are
        // failed at once: they have no partial work to lose, and clients
        // polling them need a terminal answer.
        let mut flushed: Vec<QueuedJob> = sched
            .queues
            .iter_mut()
            .flat_map(|(_, q)| q.drain(..))
            .collect();
        sched.queues.clear();
        flushed.extend(sched.delayed.drain(..).map(|d| d.job));
        sched.queued = 0;
        drop(sched);
        state.set_queue_depth(0);
        for job in flushed {
            let wall_ms = job.submitted.elapsed().as_secs_f64() * 1e3;
            state.journal_append(&JournalRecord::Cancelled {
                id: job.id.clone(),
                wall_ms,
                message: "daemon draining".to_owned(),
            });
            state.finish_job(
                &job.id,
                JobState::Failed {
                    kind: "cancelled".to_owned(),
                    message: "daemon draining".to_owned(),
                    bundle: None,
                },
                wall_ms,
                job.attempt,
            );
        }

        let mut graceful = true;
        // Past the drain deadline, stragglers are cancelled cooperatively
        // (they stop at their next superstep boundary) and get one more
        // timeout's worth of grace before we give up waiting. A second
        // signal (the abort latch) skips the grace entirely.
        let hard_deadline = deadline + state.config.drain_timeout;
        let mut sched = state.lock_sched();
        while sched.running > 0 {
            let now = Instant::now();
            if now >= hard_deadline {
                break;
            }
            let abort = state.config.abort.load(Ordering::Relaxed);
            if (abort || now >= deadline) && !state.cancel.load(Ordering::Relaxed) {
                graceful = false;
                state.cancel.store(true, Ordering::Relaxed);
            }
            let until = if now < deadline {
                deadline
            } else {
                hard_deadline
            };
            // Wake at least every 100ms so a late abort latch is seen.
            let wait = until
                .saturating_duration_since(now)
                .clamp(Duration::from_millis(10), Duration::from_millis(100));
            let (s, _) = state
                .work_cv
                .wait_timeout(sched, wait)
                .unwrap_or_else(|e| e.into_inner());
            sched = s;
        }
        sched.shutdown = true;
        drop(sched);
        state.work_cv.notify_all();
        for handle in self.runners.drain(..) {
            let _ = handle.join();
        }
        self.server.take(); // drop stops the accept loop
        graceful
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Non-drain teardown (tests, panics): stop runners without
        // waiting for queued work.
        let mut sched = self.state.lock_sched();
        sched.shutdown = true;
        drop(sched);
        self.state.work_cv.notify_all();
        for handle in self.runners.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The builtin catalogue: short job-spec names for the paper's six
/// algorithm sources.
pub fn builtin_sources() -> [(&'static str, &'static str); 6] {
    use gm_algorithms::sources;
    [
        ("avg_teen", sources::AVG_TEEN),
        ("pagerank", sources::PAGERANK),
        ("conductance", sources::CONDUCTANCE),
        ("sssp", sources::SSSP),
        ("bipartite", sources::BIPARTITE_MATCHING),
        ("bc", sources::BC_APPROX),
    ]
}
