//! The `gmd` binary: flag parsing, signal handling, and the serve loop.
//!
//! ```text
//! gmd --graph <name>=<edges.txt | rmat:N:M:SEED | uniform:N:M:SEED> [--graph ...]
//!     [--listen 127.0.0.1:8080] [--max-concurrent N] [--queue-cap N]
//!     [--workers N] [--total-message-bytes N] [--total-resident-bytes N]
//!     [--default-deadline-ms N] [--post-mortem-dir DIR] [--post-mortem-keep N]
//!     [--drain-timeout-ms N] [--metrics-file PATH]
//! ```
//!
//! The process serves until SIGINT/SIGTERM, then drains: new submissions
//! get `503 draining`, queued jobs fail as `cancelled`, running jobs get
//! `--drain-timeout-ms` to finish (then a cooperative cancel), the final
//! metrics exposition is flushed to `--metrics-file` when given, and the
//! process exits 0.

use gmd::{Daemon, DaemonConfig, GraphSpec};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!("usage: gmd --graph <name>=<edges.txt|rmat:N:M:SEED|uniform:N:M:SEED> [--graph ...]");
    eprintln!("           [--listen 127.0.0.1:8080] [--max-concurrent N] [--queue-cap N]");
    eprintln!("           [--workers N] [--total-message-bytes N] [--total-resident-bytes N]");
    eprintln!(
        "           [--default-deadline-ms N] [--post-mortem-dir DIR] [--post-mortem-keep N]"
    );
    eprintln!("           [--drain-timeout-ms N] [--metrics-file PATH] [--no-native-builtins]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = DaemonConfig::default();
    let mut metrics_file: Option<String> = None;
    let mut post_mortem_dir: Option<String> = None;
    let mut post_mortem_keep: Option<usize> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        macro_rules! value {
            () => {
                match it.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("gmd: {flag} needs a value");
                        return usage();
                    }
                }
            };
        }
        macro_rules! parsed {
            ($ty:ty) => {
                match value!().parse::<$ty>() {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("gmd: bad value for {flag}: {e}");
                        return usage();
                    }
                }
            };
        }
        match flag.as_str() {
            "--graph" => match GraphSpec::parse(value!()) {
                Ok(spec) => config.graphs.push(spec),
                Err(e) => {
                    eprintln!("gmd: {e}");
                    return usage();
                }
            },
            "--listen" => config.listen = value!().clone(),
            "--max-concurrent" => config.max_concurrent = parsed!(usize),
            "--queue-cap" => config.queue_cap = parsed!(usize),
            "--workers" => config.default_workers = parsed!(usize),
            "--total-message-bytes" => config.total_message_bytes = parsed!(u64),
            "--total-resident-bytes" => config.total_resident_bytes = parsed!(u64),
            "--default-deadline-ms" => {
                config.default_deadline = Some(Duration::from_millis(parsed!(u64)));
            }
            "--post-mortem-dir" => post_mortem_dir = Some(value!().clone()),
            "--post-mortem-keep" => post_mortem_keep = Some(parsed!(usize)),
            "--drain-timeout-ms" => config.drain_timeout = Duration::from_millis(parsed!(u64)),
            "--metrics-file" => metrics_file = Some(value!().clone()),
            // Force builtins onto the PIR interpreter (the default serves
            // them through the compiled-in rustgen modules).
            "--no-native-builtins" => config.native_builtins = false,
            other => {
                eprintln!("gmd: unknown flag {other}");
                return usage();
            }
        }
    }
    if let Some(dir) = post_mortem_dir {
        let mut pm = gm_pregel::PostMortemConfig::new(dir);
        if let Some(keep) = post_mortem_keep {
            pm = pm.with_keep(keep);
        }
        config.post_mortem = Some(pm);
    } else if let (Some(keep), Some(pm)) = (post_mortem_keep, config.post_mortem.take()) {
        config.post_mortem = Some(pm.with_keep(keep));
    }

    gm_obs::signal::install();
    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gmd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let state = daemon.state().clone();
    for (name, g) in state.graphs() {
        eprintln!(
            "gmd: loaded graph {name}: {} nodes, {} edges",
            g.graph.num_nodes(),
            g.graph.num_edges()
        );
    }
    eprintln!("gmd: serving on http://{}", daemon.addr());

    while !gm_obs::signal::requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("gmd: shutdown requested, draining...");
    let graceful = daemon.drain();
    if let Some(path) = metrics_file {
        if let Err(e) = state.registry().write_prometheus(&path) {
            eprintln!("gmd: cannot write metrics file {path}: {e}");
        }
    }
    eprintln!(
        "gmd: drained {}",
        if graceful {
            "cleanly"
        } else {
            "with cancelled stragglers"
        }
    );
    ExitCode::SUCCESS
}
