//! The `gmd` binary: flag parsing, signal handling, and the serve loop.
//!
//! ```text
//! gmd --graph <name>=<edges.txt | rmat:N:M:SEED | uniform:N:M:SEED> [--graph ...]
//!     [--listen 127.0.0.1:8080] [--max-concurrent N] [--queue-cap N]
//!     [--workers N] [--total-message-bytes N] [--total-resident-bytes N]
//!     [--default-deadline-ms N] [--post-mortem-dir DIR] [--post-mortem-keep N]
//!     [--drain-timeout-ms N] [--metrics-file PATH] [--addr-file PATH]
//!     [--journal-dir DIR] [--checkpoint-every N] [--job-history-keep N]
//!     [--max-retries N] [--retry-base-ms N] [--retry-cap-ms N]
//!     [--retry-tenant-tokens N] [--retry-tenant-refill-ms N]
//!     [--brownout-hold-ms N] [--brownout-saturation F] [--brownout-shed-to N]
//! ```
//!
//! The process serves until SIGINT/SIGTERM, then drains: new submissions
//! get `503 draining`, queued jobs fail as `cancelled`, running jobs get
//! `--drain-timeout-ms` to finish (then a cooperative cancel), the final
//! metrics exposition is flushed to `--metrics-file` when given, and the
//! process exits 0. A **second** SIGINT/SIGTERM escalates the drain to an
//! immediate cooperative abort (running jobs are cancelled at their next
//! superstep boundary) with the journal already flushed — every accepted
//! job's fate is on disk before it is acknowledged.
//!
//! With `--journal-dir` the daemon is crash-durable: accepted jobs are
//! journalled write-ahead, and on restart non-terminal jobs are re-queued
//! (resuming from their newest checkpoint when `--checkpoint-every` or a
//! per-job `checkpoint_every` armed snapshots).

use gmd::{Daemon, DaemonConfig, GraphSpec, JournalConfig};
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// Stops the second-signal watcher thread once the drain finished.
static ABORT_WATCHER_DONE: AtomicBool = AtomicBool::new(false);

fn usage() -> ExitCode {
    eprintln!("usage: gmd --graph <name>=<edges.txt|rmat:N:M:SEED|uniform:N:M:SEED> [--graph ...]");
    eprintln!("           [--listen 127.0.0.1:8080] [--max-concurrent N] [--queue-cap N]");
    eprintln!("           [--workers N] [--total-message-bytes N] [--total-resident-bytes N]");
    eprintln!(
        "           [--default-deadline-ms N] [--post-mortem-dir DIR] [--post-mortem-keep N]"
    );
    eprintln!("           [--drain-timeout-ms N] [--metrics-file PATH] [--addr-file PATH]");
    eprintln!("           [--journal-dir DIR] [--checkpoint-every N] [--job-history-keep N]");
    eprintln!("           [--max-retries N] [--retry-base-ms N] [--retry-cap-ms N]");
    eprintln!("           [--retry-tenant-tokens N] [--retry-tenant-refill-ms N]");
    eprintln!("           [--brownout-hold-ms N] [--brownout-saturation F] [--brownout-shed-to N]");
    eprintln!("           [--no-native-builtins]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = DaemonConfig::default();
    let mut metrics_file: Option<String> = None;
    let mut addr_file: Option<String> = None;
    let mut post_mortem_dir: Option<String> = None;
    let mut post_mortem_keep: Option<usize> = None;
    let mut journal_dir: Option<String> = None;
    let mut checkpoint_every: Option<u32> = None;
    let mut brownout = gmd::daemon::BrownoutConfig::default();
    let mut brownout_armed = false;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        macro_rules! value {
            () => {
                match it.next() {
                    Some(v) => v,
                    None => {
                        eprintln!("gmd: {flag} needs a value");
                        return usage();
                    }
                }
            };
        }
        macro_rules! parsed {
            ($ty:ty) => {
                match value!().parse::<$ty>() {
                    Ok(v) => v,
                    Err(e) => {
                        eprintln!("gmd: bad value for {flag}: {e}");
                        return usage();
                    }
                }
            };
        }
        match flag.as_str() {
            "--graph" => match GraphSpec::parse(value!()) {
                Ok(spec) => config.graphs.push(spec),
                Err(e) => {
                    eprintln!("gmd: {e}");
                    return usage();
                }
            },
            "--listen" => config.listen = value!().clone(),
            "--max-concurrent" => config.max_concurrent = parsed!(usize),
            "--queue-cap" => config.queue_cap = parsed!(usize),
            "--workers" => config.default_workers = parsed!(usize),
            "--total-message-bytes" => config.total_message_bytes = parsed!(u64),
            "--total-resident-bytes" => config.total_resident_bytes = parsed!(u64),
            "--default-deadline-ms" => {
                config.default_deadline = Some(Duration::from_millis(parsed!(u64)));
            }
            "--post-mortem-dir" => post_mortem_dir = Some(value!().clone()),
            "--post-mortem-keep" => post_mortem_keep = Some(parsed!(usize)),
            "--drain-timeout-ms" => config.drain_timeout = Duration::from_millis(parsed!(u64)),
            "--metrics-file" => metrics_file = Some(value!().clone()),
            // Written once the listener is bound — lets harnesses using
            // an ephemeral port discover where the daemon landed.
            "--addr-file" => addr_file = Some(value!().clone()),
            "--journal-dir" => journal_dir = Some(value!().clone()),
            "--checkpoint-every" => checkpoint_every = Some(parsed!(u32)),
            "--job-history-keep" => config.job_history_keep = parsed!(usize),
            "--max-retries" => config.retry.max_retries = parsed!(u32),
            "--retry-base-ms" => config.retry.base = Duration::from_millis(parsed!(u64)),
            "--retry-cap-ms" => config.retry.cap = Duration::from_millis(parsed!(u64)),
            "--retry-tenant-tokens" => config.retry.tenant_tokens = parsed!(u32),
            "--retry-tenant-refill-ms" => {
                config.retry.tenant_refill = Duration::from_millis(parsed!(u64));
            }
            "--brownout-hold-ms" => {
                brownout.hold = Duration::from_millis(parsed!(u64));
                brownout_armed = true;
            }
            "--brownout-saturation" => {
                brownout.saturation = parsed!(f64);
                brownout_armed = true;
            }
            "--brownout-shed-to" => {
                brownout.shed_to = parsed!(usize);
                brownout_armed = true;
            }
            // Force builtins onto the PIR interpreter (the default serves
            // them through the compiled-in rustgen modules).
            "--no-native-builtins" => config.native_builtins = false,
            other => {
                eprintln!("gmd: unknown flag {other}");
                return usage();
            }
        }
    }
    if let Some(dir) = post_mortem_dir {
        let mut pm = gm_pregel::PostMortemConfig::new(dir);
        if let Some(keep) = post_mortem_keep {
            pm = pm.with_keep(keep);
        }
        config.post_mortem = Some(pm);
    } else if let (Some(keep), Some(pm)) = (post_mortem_keep, config.post_mortem.take()) {
        config.post_mortem = Some(pm.with_keep(keep));
    }
    if let Some(dir) = journal_dir {
        let mut jc = JournalConfig::new(dir);
        jc.checkpoint_every = checkpoint_every;
        config.journal = Some(jc);
    } else if checkpoint_every.is_some() {
        eprintln!("gmd: --checkpoint-every needs --journal-dir");
        return usage();
    }
    if brownout_armed {
        config.brownout = Some(brownout);
    }

    gm_obs::signal::install();
    let abort = config.abort.clone();
    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("gmd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let state = daemon.state().clone();
    for (name, g) in state.graphs() {
        eprintln!(
            "gmd: loaded graph {name}: {} nodes, {} edges",
            g.graph.num_nodes(),
            g.graph.num_edges()
        );
    }
    eprintln!("gmd: serving on http://{}", daemon.addr());
    if let Some(path) = addr_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", daemon.addr())) {
            eprintln!("gmd: cannot write addr file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    while !gm_obs::signal::requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    eprintln!("gmd: shutdown requested, draining...");
    // A second signal escalates the drain into an immediate abort; the
    // watcher keeps polling while drain() blocks below.
    let watcher = std::thread::spawn(move || {
        while gm_obs::signal::count() < 2 {
            if ABORT_WATCHER_DONE.load(std::sync::atomic::Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("gmd: second signal, aborting drain");
        abort.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let graceful = daemon.drain();
    ABORT_WATCHER_DONE.store(true, std::sync::atomic::Ordering::Relaxed);
    let _ = watcher.join();
    if let Some(path) = metrics_file {
        if let Err(e) = state.registry().write_prometheus(&path) {
            eprintln!("gmd: cannot write metrics file {path}: {e}");
        }
    }
    eprintln!(
        "gmd: drained {}",
        if graceful {
            "cleanly"
        } else {
            "with cancelled stragglers"
        }
    );
    ExitCode::SUCCESS
}
