//! The write-ahead job journal: crash durability for the accepted-job
//! lifecycle.
//!
//! Every job transition the daemon makes is appended — fsync'd and
//! CRC-framed — *before* the in-memory state changes become observable,
//! so a `kill -9` loses at most the record being written, never an
//! acknowledged acceptance. On boot [`Journal::open`] replays every
//! segment, folds the records into per-job outcomes, compacts the
//! surviving history into a fresh segment, and hands the daemon a
//! [`Replay`] from which it re-queues non-terminal jobs.
//!
//! # On-disk format
//!
//! The journal is a directory of segment files `journal-NNNNNNNN.gmj`
//! (eight-digit sequence number). Each segment reuses the `gm-ckpt`
//! framing discipline:
//!
//! ```text
//! [4B magic "GMJL"] [u32 LE version]
//! repeated records:
//!   [u32 LE payload length] [payload bytes] [u32 LE CRC-32 of payload]
//! ```
//!
//! A payload is one compact JSON object (the same dependency-free
//! `gm_obs::json` codec the API uses) with a `type` tag:
//! `accepted` (carries the full [`JobSpec`]), `started`, `checkpointed`,
//! `retrying`, `completed` (fingerprints and globals, never full
//! property columns), `failed`, and `cancelled`.
//!
//! Replay is torn-tail tolerant: a record whose length field overruns
//! the file, whose CRC mismatches, or whose payload fails to parse ends
//! that segment's replay (counted in [`Replay::dropped`]) without
//! aborting the replay of other segments — exactly the contract an
//! append-only log interrupted by `kill -9` needs.
//!
//! Segments rotate once they pass `rotate_bytes`; startup compaction
//! rewrites the fold into one fresh segment (accepted + terminal record
//! per surviving job) and only then deletes the old segments, so a
//! crash *during* compaction replays duplicated records, which the fold
//! absorbs idempotently.

use crate::job::{value_json, JobResult, JobSpec, JobState};
use gm_ckpt::{crc32, FaultPlan};
use gm_obs::json::{parse, Json};
use gm_obs::metrics::MetricsRegistry;
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Segment-header magic.
pub const MAGIC: &[u8; 4] = b"GMJL";
/// Segment format version.
pub const FORMAT_VERSION: u32 = 1;
/// Sanity cap on one record's payload; anything larger is treated as a
/// torn/corrupt length field during replay.
const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// Journal configuration (`--journal-dir` and friends).
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Directory holding the segments (created if missing). Per-job
    /// checkpoint snapshots live under `<dir>/ckpt/<job-id>/`.
    pub dir: PathBuf,
    /// Rotate to a new segment once the live one passes this size.
    pub rotate_bytes: u64,
    /// Default snapshot interval for jobs that do not set
    /// `checkpoint_every` themselves; `None` arms no checkpoints.
    pub checkpoint_every: Option<u32>,
    /// Deterministic fault injection for journal appends (tests only).
    pub faults: FaultPlan,
}

impl JournalConfig {
    /// A journal under `dir` with a 1 MiB rotation threshold.
    pub fn new(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig {
            dir: dir.into(),
            rotate_bytes: 1 << 20,
            checkpoint_every: None,
            faults: FaultPlan::none(),
        }
    }
}

/// One journalled job transition.
#[derive(Clone, Debug)]
pub enum JournalRecord {
    /// The job passed admission; the full spec is persisted so a
    /// restarted daemon can re-admit it through the normal path.
    Accepted {
        id: String,
        backend: String,
        spec: JobSpec,
    },
    /// An execution attempt began (1-based).
    Started { id: String, attempt: u32 },
    /// A checkpoint snapshot for the job was durably written.
    Checkpointed { id: String, superstep: u32 },
    /// A transient failure; the job waits `delay_ms` then requeues.
    Retrying {
        id: String,
        attempt: u32,
        kind: String,
        delay_ms: u64,
    },
    /// Terminal success (fingerprints et al., never property columns).
    Completed {
        id: String,
        wall_ms: f64,
        result: JobResult,
    },
    /// Terminal failure.
    Failed {
        id: String,
        wall_ms: f64,
        kind: String,
        message: String,
        bundle: Option<PathBuf>,
    },
    /// Cancelled by drain or shutdown.
    Cancelled {
        id: String,
        wall_ms: f64,
        message: String,
    },
}

fn value_from_json(doc: &Json) -> Result<gm_core::value::Value, String> {
    use gm_core::value::Value;
    match doc {
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(n) => Ok(Value::Int(*n)),
        Json::UInt(n) => i64::try_from(*n)
            .map(Value::Int)
            .map_err(|_| "integer does not fit an i64".to_owned()),
        Json::Num(n) => Ok(Value::Double(*n)),
        Json::Str(s) => {
            if let Some(id) = s.strip_prefix("n:") {
                id.parse().map(Value::Node).map_err(|e| e.to_string())
            } else if let Some(id) = s.strip_prefix("e:") {
                id.parse().map(Value::Edge).map_err(|e| e.to_string())
            } else {
                Err(format!("untagged value string {s:?}"))
            }
        }
        _ => Err("value must be a scalar".to_owned()),
    }
}

fn result_json(r: &JobResult) -> Json {
    Json::obj([
        (
            "ret".to_owned(),
            r.ret.as_ref().map(value_json).unwrap_or(Json::Null),
        ),
        (
            "globals".to_owned(),
            Json::obj(
                r.globals
                    .iter()
                    .map(|(k, v)| (k.clone(), value_json(v)))
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "fingerprints".to_owned(),
            Json::obj(
                r.fingerprints
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect::<Vec<_>>(),
            ),
        ),
        ("supersteps".to_owned(), Json::UInt(u64::from(r.supersteps))),
        ("total_messages".to_owned(), Json::UInt(r.total_messages)),
        (
            "total_message_bytes".to_owned(),
            Json::UInt(r.total_message_bytes),
        ),
    ])
}

fn result_from_json(doc: &Json) -> Result<JobResult, String> {
    let obj_field = |key: &str| -> Result<BTreeMap<String, Json>, String> {
        match doc.get(key) {
            Some(Json::Obj(m)) => Ok(m.clone()),
            _ => Err(format!("result missing object field `{key}`")),
        }
    };
    let ret = match doc.get("ret") {
        None | Some(Json::Null) => None,
        Some(v) => Some(value_from_json(v)?),
    };
    let mut globals = BTreeMap::new();
    for (k, v) in obj_field("globals")? {
        globals.insert(k, value_from_json(&v)?);
    }
    let mut fingerprints = BTreeMap::new();
    for (k, v) in obj_field("fingerprints")? {
        let Json::Str(s) = v else {
            return Err(format!("fingerprint `{k}` is not a string"));
        };
        fingerprints.insert(k, s);
    }
    let uint = |key: &str| -> Result<u64, String> {
        doc.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("result missing integer field `{key}`"))
    };
    Ok(JobResult {
        ret,
        globals,
        fingerprints,
        // Property columns are deliberately not journalled: they can be
        // megabytes per job, and the fingerprints pin the same bits.
        props: None,
        supersteps: uint("supersteps")? as u32,
        total_messages: uint("total_messages")?,
        total_message_bytes: uint("total_message_bytes")?,
    })
}

impl JournalRecord {
    /// The record's `type` tag (also the metrics label).
    pub fn kind(&self) -> &'static str {
        match self {
            JournalRecord::Accepted { .. } => "accepted",
            JournalRecord::Started { .. } => "started",
            JournalRecord::Checkpointed { .. } => "checkpointed",
            JournalRecord::Retrying { .. } => "retrying",
            JournalRecord::Completed { .. } => "completed",
            JournalRecord::Failed { .. } => "failed",
            JournalRecord::Cancelled { .. } => "cancelled",
        }
    }

    /// The id of the job the record belongs to.
    pub fn id(&self) -> &str {
        match self {
            JournalRecord::Accepted { id, .. }
            | JournalRecord::Started { id, .. }
            | JournalRecord::Checkpointed { id, .. }
            | JournalRecord::Retrying { id, .. }
            | JournalRecord::Completed { id, .. }
            | JournalRecord::Failed { id, .. }
            | JournalRecord::Cancelled { id, .. } => id,
        }
    }

    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("type".to_owned(), Json::Str(self.kind().to_owned())),
            ("id".to_owned(), Json::Str(self.id().to_owned())),
        ];
        match self {
            JournalRecord::Accepted { backend, spec, .. } => {
                pairs.push(("backend".to_owned(), Json::Str(backend.clone())));
                pairs.push(("spec".to_owned(), spec.to_json()));
            }
            JournalRecord::Started { attempt, .. } => {
                pairs.push(("attempt".to_owned(), Json::UInt(u64::from(*attempt))));
            }
            JournalRecord::Checkpointed { superstep, .. } => {
                pairs.push(("superstep".to_owned(), Json::UInt(u64::from(*superstep))));
            }
            JournalRecord::Retrying {
                attempt,
                kind,
                delay_ms,
                ..
            } => {
                pairs.push(("attempt".to_owned(), Json::UInt(u64::from(*attempt))));
                pairs.push(("kind".to_owned(), Json::Str(kind.clone())));
                pairs.push(("delay_ms".to_owned(), Json::UInt(*delay_ms)));
            }
            JournalRecord::Completed {
                wall_ms, result, ..
            } => {
                pairs.push(("wall_ms".to_owned(), Json::Num(*wall_ms)));
                pairs.push(("result".to_owned(), result_json(result)));
            }
            JournalRecord::Failed {
                wall_ms,
                kind,
                message,
                bundle,
                ..
            } => {
                pairs.push(("wall_ms".to_owned(), Json::Num(*wall_ms)));
                pairs.push(("kind".to_owned(), Json::Str(kind.clone())));
                pairs.push(("message".to_owned(), Json::Str(message.clone())));
                pairs.push((
                    "bundle".to_owned(),
                    bundle
                        .as_ref()
                        .map(|p| Json::Str(p.display().to_string()))
                        .unwrap_or(Json::Null),
                ));
            }
            JournalRecord::Cancelled {
                wall_ms, message, ..
            } => {
                pairs.push(("wall_ms".to_owned(), Json::Num(*wall_ms)));
                pairs.push(("message".to_owned(), Json::Str(message.clone())));
            }
        }
        Json::obj(pairs)
    }

    fn from_json(doc: &Json) -> Result<JournalRecord, String> {
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("record missing string field `{key}`"))
        };
        let uint = |key: &str| -> Result<u64, String> {
            doc.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("record missing integer field `{key}`"))
        };
        let wall = || -> Result<f64, String> {
            doc.get("wall_ms")
                .and_then(Json::as_f64)
                .ok_or_else(|| "record missing `wall_ms`".to_owned())
        };
        let id = str_field("id")?;
        match str_field("type")?.as_str() {
            "accepted" => Ok(JournalRecord::Accepted {
                id,
                backend: str_field("backend")?,
                spec: JobSpec::from_json(doc.get("spec").ok_or("accepted record missing `spec`")?)?,
            }),
            "started" => Ok(JournalRecord::Started {
                id,
                attempt: uint("attempt")? as u32,
            }),
            "checkpointed" => Ok(JournalRecord::Checkpointed {
                id,
                superstep: uint("superstep")? as u32,
            }),
            "retrying" => Ok(JournalRecord::Retrying {
                id,
                attempt: uint("attempt")? as u32,
                kind: str_field("kind")?,
                delay_ms: uint("delay_ms")?,
            }),
            "completed" => Ok(JournalRecord::Completed {
                id,
                wall_ms: wall()?,
                result: result_from_json(
                    doc.get("result")
                        .ok_or("completed record missing `result`")?,
                )?,
            }),
            "failed" => Ok(JournalRecord::Failed {
                id,
                wall_ms: wall()?,
                kind: str_field("kind")?,
                message: str_field("message")?,
                bundle: doc.get("bundle").and_then(Json::as_str).map(PathBuf::from),
            }),
            "cancelled" => Ok(JournalRecord::Cancelled {
                id,
                wall_ms: wall()?,
                message: str_field("message")?,
            }),
            other => Err(format!("unknown record type {other:?}")),
        }
    }
}

/// One job as reconstructed by replay.
#[derive(Clone, Debug)]
pub struct ReplayedJob {
    /// Wire id (`"job-<n>"`).
    pub id: String,
    /// Backend recorded at acceptance (`"interp"` / `"native"`).
    pub backend: String,
    /// The spec, exactly as accepted.
    pub spec: JobSpec,
    /// Execution attempts started before the crash.
    pub attempts: u32,
    /// Newest journalled checkpoint superstep, when any.
    pub last_checkpoint: Option<u32>,
    /// [`JobState::Queued`] for a job that must be re-queued; a
    /// terminal state otherwise (`cancelled` records fold into
    /// [`JobState::Failed`] with kind `"cancelled"`).
    pub state: JobState,
    /// Journalled wall time, for terminal jobs.
    pub wall_ms: Option<f64>,
}

impl ReplayedJob {
    /// Whether the job still needs to run.
    pub fn needs_requeue(&self) -> bool {
        !self.state.is_terminal()
    }
}

/// The outcome of replaying every segment at startup.
#[derive(Debug, Default)]
pub struct Replay {
    /// Surviving jobs in original acceptance order.
    pub jobs: Vec<ReplayedJob>,
    /// Torn/corrupt/unparseable records dropped during replay.
    pub dropped: u64,
    /// Highest numeric suffix among replayed `job-<n>` ids (0 when
    /// none) — the daemon resumes its id sequence above it.
    pub max_job_seq: u64,
    /// Segments read at startup (before compaction).
    pub segments_read: u64,
}

struct Writer {
    file: File,
    seq: u64,
    bytes: u64,
    /// Appends attempted over the journal's lifetime, for fault
    /// injection indexing.
    appends: u32,
}

/// The live journal: one writer, shared via the daemon state.
pub struct Journal {
    dir: PathBuf,
    rotate_bytes: u64,
    faults: FaultPlan,
    registry: Arc<MetricsRegistry>,
    inner: Mutex<Writer>,
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("journal-{seq:08}.gmj"))
}

fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("journal-")
            .and_then(|s| s.strip_suffix(".gmj"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            segs.push((seq, entry.path()));
        }
    }
    segs.sort();
    Ok(segs)
}

/// Best-effort directory fsync so segment creates/deletes survive a
/// crash of the whole machine, not just the process.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Reads one segment, stopping (and counting a drop) at the first torn
/// or corrupt record. I/O errors reading the file count as one drop —
/// replay continues with the next segment either way.
fn read_segment(path: &Path) -> (Vec<Json>, u64) {
    let buf = match fs::read(path) {
        Ok(b) => b,
        Err(_) => return (Vec::new(), 1),
    };
    if buf.len() < 8 || &buf[0..4] != MAGIC {
        return (Vec::new(), 1);
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return (Vec::new(), 1);
    }
    let mut out = Vec::new();
    let mut dropped = 0u64;
    let mut pos = 8usize;
    while pos < buf.len() {
        if pos + 4 > buf.len() {
            dropped += 1; // torn length field
            break;
        }
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes"));
        let Some(end) = (len <= MAX_RECORD_BYTES)
            .then(|| pos.checked_add(8 + len as usize))
            .flatten()
            .filter(|&e| e <= buf.len())
        else {
            dropped += 1; // absurd or overrunning length: torn record
            break;
        };
        let payload = &buf[pos + 4..end - 4];
        let crc = u32::from_le_bytes(buf[end - 4..end].try_into().expect("4 bytes"));
        if crc32(payload) != crc {
            dropped += 1; // corrupt record
            break;
        }
        match std::str::from_utf8(payload)
            .ok()
            .and_then(|s| parse(s).ok())
        {
            Some(doc) => out.push(doc),
            // CRC-valid but unparseable should not happen; drop just
            // this record and keep going — the frame boundary is sound.
            None => dropped += 1,
        }
        pos = end;
    }
    (out, dropped)
}

/// Folds raw records into per-job outcomes. Idempotent under record
/// duplication (compaction interrupted by a crash replays both the
/// original and compacted copies).
fn fold(records: Vec<Json>, dropped: &mut u64) -> Vec<ReplayedJob> {
    let mut order: Vec<String> = Vec::new();
    let mut map: BTreeMap<String, ReplayedJob> = BTreeMap::new();
    for doc in records {
        let rec = match JournalRecord::from_json(&doc) {
            Ok(rec) => rec,
            Err(_) => {
                *dropped += 1;
                continue;
            }
        };
        if let JournalRecord::Accepted { id, backend, spec } = rec {
            if let Some(job) = map.get_mut(&id) {
                job.backend = backend;
                job.spec = spec;
            } else {
                order.push(id.clone());
                map.insert(
                    id.clone(),
                    ReplayedJob {
                        id,
                        backend,
                        spec,
                        attempts: 0,
                        last_checkpoint: None,
                        state: JobState::Queued,
                        wall_ms: None,
                    },
                );
            }
            continue;
        }
        // Transition records for an id whose acceptance was lost (torn
        // away with its segment) are orphans: drop them.
        let Some(job) = map.get_mut(rec.id()) else {
            *dropped += 1;
            continue;
        };
        match rec {
            JournalRecord::Accepted { .. } => unreachable!("handled above"),
            JournalRecord::Started { attempt, .. } => {
                job.attempts = job.attempts.max(attempt);
            }
            JournalRecord::Checkpointed { superstep, .. } => {
                job.last_checkpoint = Some(superstep);
            }
            JournalRecord::Retrying { attempt, .. } => {
                job.attempts = job.attempts.max(attempt);
            }
            JournalRecord::Completed {
                wall_ms, result, ..
            } => {
                job.state = JobState::Completed(result);
                job.wall_ms = Some(wall_ms);
            }
            JournalRecord::Failed {
                wall_ms,
                kind,
                message,
                bundle,
                ..
            } => {
                job.state = JobState::Failed {
                    kind,
                    message,
                    bundle,
                };
                job.wall_ms = Some(wall_ms);
            }
            JournalRecord::Cancelled {
                wall_ms, message, ..
            } => {
                job.state = JobState::Failed {
                    kind: "cancelled".to_owned(),
                    message,
                    bundle: None,
                };
                job.wall_ms = Some(wall_ms);
            }
        }
    }
    order
        .into_iter()
        .map(|id| map.remove(&id).expect("order tracks map"))
        .collect()
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

impl Writer {
    fn create(dir: &Path, seq: u64) -> io::Result<Writer> {
        let path = segment_path(dir, seq);
        let mut file = File::create(&path)?;
        file.write_all(MAGIC)?;
        file.write_all(&FORMAT_VERSION.to_le_bytes())?;
        file.sync_data()?;
        sync_dir(dir);
        Ok(Writer {
            file,
            seq,
            bytes: 8,
            appends: 0,
        })
    }

    /// Appends one framed record and fsyncs. No fault injection, no
    /// metrics — the raw primitive compaction also uses.
    fn append_raw(&mut self, rec: &JournalRecord) -> io::Result<u64> {
        let framed = frame(rec.to_json().to_string().as_bytes());
        self.file.write_all(&framed)?;
        self.file.sync_data()?;
        self.bytes += framed.len() as u64;
        Ok(framed.len() as u64)
    }
}

impl Journal {
    /// Opens (or creates) the journal under `config.dir`: replays every
    /// segment, compacts the surviving history into a fresh segment,
    /// deletes the old segments, and returns the replay alongside the
    /// live journal.
    ///
    /// `history_keep` bounds the *terminal* jobs carried forward
    /// (oldest dropped first; `0` keeps everything) — the journal-side
    /// mirror of the daemon's `--job-history-keep` GC.
    pub fn open(
        config: &JournalConfig,
        history_keep: usize,
        registry: Arc<MetricsRegistry>,
    ) -> io::Result<(Journal, Replay)> {
        fs::create_dir_all(&config.dir)?;
        let segments = list_segments(&config.dir)?;
        let mut records = Vec::new();
        let mut dropped = 0u64;
        for (_, path) in &segments {
            let (recs, d) = read_segment(path);
            records.extend(recs);
            dropped += d;
        }
        let mut jobs = fold(records, &mut dropped);

        // Oldest-first GC of terminal history, mirrored into the
        // compacted segment so restarts do not resurrect pruned jobs.
        if history_keep > 0 {
            let terminal = jobs.iter().filter(|j| j.state.is_terminal()).count();
            let mut excess = terminal.saturating_sub(history_keep);
            jobs.retain(|j| {
                if excess > 0 && j.state.is_terminal() {
                    excess -= 1;
                    return false;
                }
                true
            });
        }

        let max_job_seq = jobs
            .iter()
            .filter_map(|j| j.id.strip_prefix("job-"))
            .filter_map(|n| n.parse::<u64>().ok())
            .max()
            .unwrap_or(0);

        // Compact: fresh segment first, then delete the old ones. A
        // crash in between replays duplicates, which fold() absorbs.
        let next_seq = segments.last().map(|(s, _)| s + 1).unwrap_or(1);
        let mut writer = Writer::create(&config.dir, next_seq)?;
        for job in &jobs {
            writer.append_raw(&JournalRecord::Accepted {
                id: job.id.clone(),
                backend: job.backend.clone(),
                spec: job.spec.clone(),
            })?;
            match &job.state {
                JobState::Completed(result) => {
                    writer.append_raw(&JournalRecord::Completed {
                        id: job.id.clone(),
                        wall_ms: job.wall_ms.unwrap_or(0.0),
                        result: result.clone(),
                    })?;
                }
                JobState::Failed {
                    kind,
                    message,
                    bundle,
                } => {
                    writer.append_raw(&JournalRecord::Failed {
                        id: job.id.clone(),
                        wall_ms: job.wall_ms.unwrap_or(0.0),
                        kind: kind.clone(),
                        message: message.clone(),
                        bundle: bundle.clone(),
                    })?;
                }
                _ => {}
            }
        }
        for (_, path) in &segments {
            let _ = fs::remove_file(path);
        }
        sync_dir(&config.dir);

        // Checkpoint directories of jobs that no longer need them
        // (terminal, pruned, or never journalled) are garbage.
        let keep: std::collections::HashSet<&str> = jobs
            .iter()
            .filter(|j| j.needs_requeue())
            .map(|j| j.id.as_str())
            .collect();
        let ckpt_root = config.dir.join("ckpt");
        if let Ok(entries) = fs::read_dir(&ckpt_root) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if name.to_str().is_none_or(|n| !keep.contains(n)) {
                    let _ = fs::remove_dir_all(entry.path());
                }
            }
        }

        let replay = Replay {
            dropped,
            max_job_seq,
            segments_read: segments.len() as u64,
            jobs,
        };
        registry
            .counter(
                "gm_journal_dropped_records_total",
                "torn/corrupt journal records dropped during replay",
            )
            .add(replay.dropped);
        for job in &replay.jobs {
            registry
                .counter_with(
                    "gm_journal_replayed_total",
                    "jobs reconstructed from the journal at startup",
                    &[("state", job.state.status())],
                )
                .inc();
        }
        let journal = Journal {
            dir: config.dir.clone(),
            rotate_bytes: config.rotate_bytes.max(1),
            faults: config.faults.clone(),
            registry,
            inner: Mutex::new(writer),
        };
        Ok((journal, replay))
    }

    /// Appends one record, fsyncs it, and rotates the segment when the
    /// live one has grown past the threshold. An error means the record
    /// is *not* durable — callers must treat the transition as failed.
    pub fn append(&self, rec: &JournalRecord) -> io::Result<()> {
        let mut w = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let index = w.appends;
        w.appends += 1;
        if self.faults.trip_fail_journal_append(index) {
            return Err(io::Error::other(format!(
                "injected journal append failure (record {index})"
            )));
        }
        let written = w.append_raw(rec)?;
        self.registry
            .counter_with(
                "gm_journal_records_total",
                "journal records appended",
                &[("type", rec.kind())],
            )
            .inc();
        self.registry
            .counter("gm_journal_bytes_total", "journal bytes appended")
            .add(written);
        if w.bytes >= self.rotate_bytes {
            let next = Writer {
                appends: w.appends,
                ..Writer::create(&self.dir, w.seq + 1)?
            };
            *w = next;
            self.registry
                .counter("gm_journal_segments_total", "journal segments created")
                .inc();
        }
        Ok(())
    }

    /// The checkpoint-snapshot directory for one job.
    pub fn checkpoint_dir(&self, id: &str) -> PathBuf {
        self.dir.join("ckpt").join(id)
    }

    /// Removes a job's checkpoint snapshots (terminal jobs need none).
    pub fn remove_checkpoints(&self, id: &str) {
        let _ = fs::remove_dir_all(self.checkpoint_dir(id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn fresh_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gmd-journal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec(tenant: &str) -> JobSpec {
        let doc = parse(&format!(
            r#"{{"tenant":"{tenant}","graph":"g","program":"pagerank",
                "args":{{"d":0.85,"root":"n:3"}},"seed":7,"workers":2,
                "priority":1,"checkpoint_every":2}}"#
        ))
        .unwrap();
        JobSpec::from_json(&doc).unwrap()
    }

    fn registry() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::new())
    }

    fn completed(id: &str) -> JournalRecord {
        JournalRecord::Completed {
            id: id.to_owned(),
            wall_ms: 12.5,
            result: JobResult {
                ret: Some(gm_core::value::Value::Double(0.25)),
                globals: [("diff".to_owned(), gm_core::value::Value::Double(1e-9))]
                    .into_iter()
                    .collect(),
                fingerprints: [("rank".to_owned(), "00000000deadbeef".to_owned())]
                    .into_iter()
                    .collect(),
                props: None,
                supersteps: 13,
                total_messages: 42,
                total_message_bytes: 1234,
            },
        }
    }

    fn accept(id: &str, tenant: &str) -> JournalRecord {
        JournalRecord::Accepted {
            id: id.to_owned(),
            backend: "interp".to_owned(),
            spec: spec(tenant),
        }
    }

    #[test]
    fn replay_folds_transitions_and_resumes_the_id_sequence() {
        let dir = fresh_dir("fold");
        let config = JournalConfig::new(&dir);
        {
            let (journal, replay) = Journal::open(&config, 0, registry()).unwrap();
            assert!(replay.jobs.is_empty());
            journal.append(&accept("job-1", "acme")).unwrap();
            journal
                .append(&JournalRecord::Started {
                    id: "job-1".to_owned(),
                    attempt: 1,
                })
                .unwrap();
            journal
                .append(&JournalRecord::Checkpointed {
                    id: "job-1".to_owned(),
                    superstep: 4,
                })
                .unwrap();
            journal.append(&accept("job-2", "zeta")).unwrap();
            journal.append(&completed("job-2")).unwrap();
            journal.append(&accept("job-7", "acme")).unwrap();
        }
        let (_, replay) = Journal::open(&config, 0, registry()).unwrap();
        assert_eq!(replay.dropped, 0);
        assert_eq!(replay.max_job_seq, 7);
        let ids: Vec<&str> = replay.jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids, ["job-1", "job-2", "job-7"], "acceptance order");
        let j1 = &replay.jobs[0];
        assert!(j1.needs_requeue());
        assert_eq!(j1.attempts, 1);
        assert_eq!(j1.last_checkpoint, Some(4));
        assert_eq!(j1.spec, spec("acme"));
        let j2 = &replay.jobs[1];
        assert!(!j2.needs_requeue());
        let JobState::Completed(r) = &j2.state else {
            panic!("job-2 should be completed, got {:?}", j2.state);
        };
        assert_eq!(r.fingerprints["rank"], "00000000deadbeef");
        assert_eq!(r.supersteps, 13);
        assert_eq!(r.ret, Some(gm_core::value::Value::Double(0.25)));
        assert_eq!(j2.wall_ms, Some(12.5));
        assert!(replay.jobs[2].needs_requeue());

        // Compaction rewrote history into exactly one segment.
        let segs = list_segments(&dir).unwrap();
        assert_eq!(segs.len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_without_losing_earlier_records() {
        let dir = fresh_dir("torn");
        let config = JournalConfig::new(&dir);
        {
            let (journal, _) = Journal::open(&config, 0, registry()).unwrap();
            journal.append(&accept("job-1", "acme")).unwrap();
            journal.append(&completed("job-1")).unwrap();
            journal.append(&accept("job-2", "acme")).unwrap();
        }
        // Tear the final record: chop a few bytes off the segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (_, replay) = Journal::open(&config, 0, registry()).unwrap();
        assert_eq!(replay.dropped, 1, "exactly the torn tail");
        assert_eq!(replay.jobs.len(), 1, "job-2's acceptance was torn away");
        assert!(!replay.jobs[0].needs_requeue());

        // Corrupt a record body: CRC must reject it.
        let (journal, _) = Journal::open(&config, 0, registry()).unwrap();
        journal.append(&accept("job-3", "acme")).unwrap();
        drop(journal);
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() - 20;
        bytes[mid] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        let (_, replay) = Journal::open(&config, 0, registry()).unwrap();
        assert!(replay.dropped >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_compact_back_to_one() {
        let dir = fresh_dir("rotate");
        let mut config = JournalConfig::new(&dir);
        config.rotate_bytes = 256; // force rotation nearly every append
        {
            let (journal, _) = Journal::open(&config, 0, registry()).unwrap();
            for i in 1..=6 {
                journal
                    .append(&accept(&format!("job-{i}"), "acme"))
                    .unwrap();
            }
            assert!(
                list_segments(&dir).unwrap().len() > 1,
                "rotation must have produced several segments"
            );
        }
        let (_, replay) = Journal::open(&config, 0, registry()).unwrap();
        assert_eq!(replay.jobs.len(), 6);
        assert!(replay.segments_read > 1);
        assert_eq!(list_segments(&dir).unwrap().len(), 1, "compacted");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn history_keep_prunes_oldest_terminal_jobs_only() {
        let dir = fresh_dir("gc");
        let config = JournalConfig::new(&dir);
        {
            let (journal, _) = Journal::open(&config, 0, registry()).unwrap();
            for i in 1..=4 {
                let id = format!("job-{i}");
                journal.append(&accept(&id, "acme")).unwrap();
                if i <= 3 {
                    journal.append(&completed(&id)).unwrap();
                }
            }
        }
        let (_, replay) = Journal::open(&config, 2, registry()).unwrap();
        let ids: Vec<&str> = replay.jobs.iter().map(|j| j.id.as_str()).collect();
        // job-1 (oldest terminal) pruned; the non-terminal job-4 kept.
        assert_eq!(ids, ["job-2", "job-3", "job-4"]);
        assert_eq!(replay.max_job_seq, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_append_failure_surfaces_as_io_error() {
        let dir = fresh_dir("fault");
        let mut config = JournalConfig::new(&dir);
        config.faults = FaultPlan::builder().fail_journal_append(1).build();
        let (journal, _) = Journal::open(&config, 0, registry()).unwrap();
        journal.append(&accept("job-1", "acme")).unwrap();
        let err = journal.append(&accept("job-2", "acme")).unwrap_err();
        assert!(err.to_string().contains("injected"));
        // The failed append wrote nothing; the next one proceeds.
        journal.append(&accept("job-3", "acme")).unwrap();
        drop(journal);
        let (_, replay) = Journal::open(&config, 0, registry()).unwrap();
        let ids: Vec<&str> = replay.jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids, ["job-1", "job-3"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_dirs_of_finished_jobs_are_swept_at_open() {
        let dir = fresh_dir("sweep");
        let config = JournalConfig::new(&dir);
        {
            let (journal, _) = Journal::open(&config, 0, registry()).unwrap();
            journal.append(&accept("job-1", "acme")).unwrap();
            journal.append(&accept("job-2", "acme")).unwrap();
            journal.append(&completed("job-2")).unwrap();
            fs::create_dir_all(journal.checkpoint_dir("job-1")).unwrap();
            fs::create_dir_all(journal.checkpoint_dir("job-2")).unwrap();
            fs::create_dir_all(journal.checkpoint_dir("job-stale")).unwrap();
        }
        let (journal, _) = Journal::open(&config, 0, registry()).unwrap();
        assert!(journal.checkpoint_dir("job-1").is_dir(), "still queued");
        assert!(!journal.checkpoint_dir("job-2").exists(), "terminal");
        assert!(!journal.checkpoint_dir("job-stale").exists(), "orphan");
        fs::remove_dir_all(&dir).unwrap();
    }
}
