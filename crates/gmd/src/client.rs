//! A minimal blocking HTTP client for the `gmd` API.
//!
//! Dependency-free like everything else here: one request per
//! connection (`Connection: close`), which matches the server side and
//! keeps the client trivially correct. Used by the `loadgen` bench, the
//! CI smoke job, and the serving tests.

use gm_obs::json::{parse, Json};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A client bound to one daemon address.
#[derive(Clone, Copy, Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    /// When set, connection-level failures (refused/reset — a daemon
    /// restarting underneath us) are retried with capped exponential
    /// backoff for up to this long instead of surfacing immediately.
    reconnect: Option<Duration>,
}

/// A client-side failure: transport, HTTP framing, or a non-JSON body
/// where JSON was promised.
#[derive(Debug)]
pub struct ClientError(pub String);

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gmd client error: {}", self.0)
    }
}

impl std::error::Error for ClientError {}

fn err(m: impl Into<String>) -> ClientError {
    ClientError(m.into())
}

impl Client {
    /// A client for the daemon at `addr` with a 30s per-request timeout.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(30),
            reconnect: None,
        }
    }

    /// Overrides the per-request socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Retries connection-level failures for up to `window` with capped
    /// backoff (25ms doubling to 500ms). Failures *after* bytes were
    /// sent are only retried for idempotent requests (GETs), so a
    /// submission is never accidentally duplicated.
    pub fn with_reconnect(mut self, window: Duration) -> Client {
        self.reconnect = Some(window);
        self
    }

    fn request_once(&self, head: &str, body: &str) -> Result<(u16, String), RequestError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.timeout)
            .map_err(|e| RequestError::Connect(e.to_string()))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .map_err(|e| RequestError::Connect(e.to_string()))?;
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .map_err(|e| RequestError::Sent(format!("send failed: {e}")))?;
        let mut raw = String::new();
        stream
            .read_to_string(&mut raw)
            .map_err(|e| RequestError::Sent(format!("read failed: {e}")))?;
        let (head, payload) = raw
            .split_once("\r\n\r\n")
            .ok_or_else(|| RequestError::Sent(format!("malformed response: {raw:?}")))?;
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| RequestError::Sent(format!("bad status line: {head:?}")))?;
        Ok((status, payload.to_owned()))
    }

    fn request(
        &self,
        head: &str,
        body: &str,
        idempotent: bool,
    ) -> Result<(u16, String), ClientError> {
        let Some(window) = self.reconnect else {
            return self.request_once(head, body).map_err(|e| err(e.message()));
        };
        let deadline = Instant::now() + window;
        let mut backoff = Duration::from_millis(25);
        loop {
            let retryable = match self.request_once(head, body) {
                Ok(reply) => return Ok(reply),
                Err(RequestError::Connect(m)) => m,
                // The request may have reached the daemon: replaying a
                // non-idempotent one could double-submit.
                Err(RequestError::Sent(m)) if idempotent => m,
                Err(e) => return Err(err(e.message())),
            };
            if Instant::now() + backoff > deadline {
                return Err(err(format!(
                    "gave up reconnecting after {window:?}: {retryable}"
                )));
            }
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(Duration::from_millis(500));
        }
    }

    /// Issues a GET; returns `(status, body)`.
    pub fn get(&self, path: &str) -> Result<(u16, String), ClientError> {
        self.request(
            &format!("GET {path} HTTP/1.1\r\nHost: gmd\r\nConnection: close\r\n\r\n"),
            "",
            true,
        )
    }

    /// Issues a POST with a JSON body; returns `(status, body)`.
    pub fn post(&self, path: &str, json_body: &str) -> Result<(u16, String), ClientError> {
        self.request(
            &format!(
                "POST {path} HTTP/1.1\r\nHost: gmd\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                json_body.len()
            ),
            json_body,
            false,
        )
    }

    /// Issues a GET and parses the JSON body.
    pub fn get_json(&self, path: &str) -> Result<(u16, Json), ClientError> {
        let (status, raw) = self.get(path)?;
        let doc = parse(&raw).map_err(|e| err(format!("non-JSON body from {path}: {e:?}")))?;
        Ok((status, doc))
    }

    /// Submits a job document. `Ok` carries the job id on acceptance;
    /// rejections come back as `Err` with `(status, error body)`.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, job_json: &str) -> Result<String, SubmitError> {
        let (status, raw) = self
            .post("/v1/jobs", job_json)
            .map_err(|e| SubmitError::Transport(e.0))?;
        let doc =
            parse(&raw).map_err(|e| SubmitError::Transport(format!("non-JSON reply: {e:?}")))?;
        if status == 202 {
            let id = doc
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| SubmitError::Transport(format!("202 without id: {raw:?}")))?;
            Ok(id.to_owned())
        } else {
            Err(SubmitError::Rejected { status, body: doc })
        }
    }

    /// Polls a job until it reaches a terminal state or `timeout`
    /// elapses, returning the final status document.
    pub fn wait(&self, id: &str, timeout: Duration) -> Result<Json, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            let (status, doc) = self.get_json(&format!("/v1/jobs/{id}"))?;
            if status != 200 {
                return Err(err(format!("job {id}: status {status}: {doc:?}")));
            }
            match doc.get("status").and_then(Json::as_str) {
                Some("completed") | Some("failed") => return Ok(doc),
                _ if Instant::now() >= deadline => {
                    return Err(err(format!(
                        "job {id} still not terminal after {timeout:?}"
                    )))
                }
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }
}

/// How far a failed request got — decides whether a retry is safe.
enum RequestError {
    /// Nothing was sent (refused/reset on connect): always retryable.
    Connect(String),
    /// Bytes reached the wire: retryable only for idempotent requests.
    Sent(String),
}

impl RequestError {
    fn message(self) -> String {
        match self {
            RequestError::Connect(m) | RequestError::Sent(m) => m,
        }
    }
}

/// Outcome of a submission attempt that did not yield a job id.
#[derive(Debug)]
pub enum SubmitError {
    /// The daemon answered with a structured rejection.
    Rejected {
        /// HTTP status (`400`, `429`, `503`).
        status: u16,
        /// The parsed error body.
        body: Json,
    },
    /// The request never produced a parseable reply.
    Transport(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected { status, body } => {
                write!(f, "submission rejected ({status}): {body:?}")
            }
            SubmitError::Transport(m) => write!(f, "submission failed: {m}"),
        }
    }
}

impl std::error::Error for SubmitError {}
