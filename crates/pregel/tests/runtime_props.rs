//! Property-based and feature tests for the BSP runtime itself.

use gm_graph::{gen, GraphBuilder, NodeId};
use gm_pregel::{
    run, GlobalValue, MasterContext, MasterDecision, PregelConfig, ReduceOp, VertexContext,
    VertexProgram,
};
use proptest::prelude::*;

/// Sums incoming integer messages for a fixed number of rounds; generic
/// over combining.
struct RelaySum {
    rounds: u32,
    combining: bool,
}

impl VertexProgram for RelaySum {
    type VertexValue = i64;
    type Message = i64;

    fn message_bytes(&self, _m: &i64) -> u64 {
        8
    }

    fn has_combiner(&self) -> bool {
        self.combining
    }

    fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
        Some(a + b)
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        if ctx.superstep() > self.rounds {
            MasterDecision::Halt
        } else {
            MasterDecision::Continue
        }
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, i64>,
        value: &mut i64,
        messages: &[i64],
    ) {
        for m in messages {
            *value += *m;
        }
        let contribution = ctx.id().0 as i64 + 1;
        ctx.send_to_nbrs(contribution);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Results and total bytes are identical for every worker count.
    #[test]
    fn worker_count_invariance(n in 1u32..60, m in 0usize..300, seed in 0u64..500, rounds in 1u32..4) {
        let g = gen::uniform_random(n, m, seed);
        let base = run(
            &g,
            &mut RelaySum { rounds, combining: false },
            |_| 0i64,
            &PregelConfig::sequential(),
        )
        .unwrap();
        for workers in [2usize, 5] {
            let r = run(
                &g,
                &mut RelaySum { rounds, combining: false },
                |_| 0i64,
                &PregelConfig::with_workers(workers),
            )
            .unwrap();
            prop_assert_eq!(&r.values, &base.values, "workers = {}", workers);
            prop_assert_eq!(r.metrics.supersteps, base.metrics.supersteps);
            prop_assert_eq!(r.metrics.total_message_bytes, base.metrics.total_message_bytes);
        }
    }

    /// Combining preserves the summed results while never increasing the
    /// message count.
    #[test]
    fn combining_preserves_sums(n in 1u32..60, m in 0usize..300, seed in 0u64..500) {
        let g = gen::uniform_random(n, m, seed);
        for workers in [1usize, 3] {
            let plain = run(
                &g,
                &mut RelaySum { rounds: 2, combining: false },
                |_| 0i64,
                &PregelConfig::with_workers(workers),
            )
            .unwrap();
            let combined = run(
                &g,
                &mut RelaySum { rounds: 2, combining: true },
                |_| 0i64,
                &PregelConfig::with_workers(workers),
            )
            .unwrap();
            prop_assert_eq!(&plain.values, &combined.values);
            prop_assert!(combined.metrics.total_messages <= plain.metrics.total_messages);
        }
    }

    /// Aggregates reach the master identically for any worker count.
    #[test]
    fn aggregate_invariance(n in 1u32..60, seed in 0u64..500) {
        struct MinId {
            observed: Option<i64>,
        }
        impl VertexProgram for MinId {
            type VertexValue = ();
            type Message = ();
            fn message_bytes(&self, _m: &()) -> u64 {
                0
            }
            fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
                if ctx.superstep() == 1 {
                    self.observed = ctx.agg("m").map(|v| v.as_int());
                    MasterDecision::Halt
                } else {
                    MasterDecision::Continue
                }
            }
            fn vertex_compute(
                &self,
                ctx: &mut VertexContext<'_, '_, ()>,
                _value: &mut (),
                _messages: &[()],
            ) {
                let id = ctx.id().0 as i64;
                ctx.reduce_global("m", ReduceOp::Min, GlobalValue::Int(id * 3 - 7));
            }
        }
        let g = gen::uniform_random(n, 0, seed);
        let mut expected = None;
        for workers in [1usize, 2, 4] {
            let mut p = MinId { observed: None };
            run(&g, &mut p, |_| (), &PregelConfig::with_workers(workers)).unwrap();
            match &expected {
                None => expected = Some(p.observed),
                Some(e) => prop_assert_eq!(e, &p.observed),
            }
        }
        prop_assert_eq!(expected.flatten(), Some(-7));
    }
}

#[test]
fn combining_is_per_worker_like_pregel() {
    // A star hub receiving from every spoke: with one worker, everything
    // combines into a single message; with two workers, at most two.
    struct ToHub;
    impl VertexProgram for ToHub {
        type VertexValue = i64;
        type Message = i64;
        fn message_bytes(&self, _m: &i64) -> u64 {
            8
        }
        fn has_combiner(&self) -> bool {
            true
        }
        fn combine(&self, a: &i64, b: &i64) -> Option<i64> {
            Some(a + b)
        }
        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            if ctx.superstep() == 2 {
                MasterDecision::Halt
            } else {
                MasterDecision::Continue
            }
        }
        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, i64>,
            value: &mut i64,
            messages: &[i64],
        ) {
            if ctx.superstep() == 0 {
                if ctx.id().0 != 0 {
                    ctx.send(NodeId(0), 1);
                }
            } else {
                for m in messages {
                    *value += *m;
                }
            }
        }
    }
    // 0 is the hub; vertices 1..=8 send to it.
    let mut b = GraphBuilder::new(9);
    for i in 1..9 {
        b.add_edge(0, i);
    }
    let g = b.build();
    let one = run(&g, &mut ToHub, |_| 0, &PregelConfig::sequential()).unwrap();
    assert_eq!(one.values[0], 8);
    assert_eq!(
        one.metrics.total_messages, 1,
        "fully combined on one worker"
    );
    let two = run(&g, &mut ToHub, |_| 0, &PregelConfig::with_workers(2)).unwrap();
    assert_eq!(two.values[0], 8);
    assert!(
        (1..=2).contains(&two.metrics.total_messages),
        "per-worker combining: {} messages",
        two.metrics.total_messages
    );
}
