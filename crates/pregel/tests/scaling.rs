//! Worker-count scaling tests for the parallel message exchange: results
//! must be byte-identical for every worker count, and the exchange path
//! must never clone a message.

use gm_graph::{gen, NodeId};
use gm_pregel::{run, MasterContext, MasterDecision, PregelConfig, VertexContext, VertexProgram};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// PageRank with a fixed round count — the floating-point workload used by
/// the `message_exchange` bench.
struct PageRank {
    n: f64,
    rounds: u32,
}

impl VertexProgram for PageRank {
    type VertexValue = f64;
    type Message = f64;

    fn message_bytes(&self, _m: &f64) -> u64 {
        8
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        if ctx.superstep() > self.rounds {
            MasterDecision::Halt
        } else {
            MasterDecision::Continue
        }
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, f64>,
        value: &mut f64,
        messages: &[f64],
    ) {
        if ctx.superstep() == 0 {
            *value = 1.0 / self.n;
        } else {
            // Messages arrive ordered by sender id, so this sum is
            // reproducible for every worker count.
            let mut sum = 0.0;
            for m in messages {
                sum += *m;
            }
            *value = 0.15 / self.n + 0.85 * sum;
        }
        if ctx.out_degree() > 0 {
            ctx.send_to_nbrs(*value / ctx.out_degree() as f64);
        }
    }
}

/// PageRank on an R-MAT graph is byte-identical — values, supersteps and
/// message counters — for workers ∈ {1, 2, 3, 4, 5, 8}.
#[test]
fn pagerank_is_byte_identical_across_worker_counts() {
    let g = gen::rmat(2_000, 16_000, 7);
    let base = run(
        &g,
        &mut PageRank {
            n: g.num_nodes() as f64,
            rounds: 10,
        },
        |_| 0.0,
        &PregelConfig::sequential(),
    )
    .unwrap();
    let base_bits: Vec<u64> = base.values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(base.metrics.supersteps, 12);

    for workers in [2usize, 3, 4, 5, 8] {
        let r = run(
            &g,
            &mut PageRank {
                n: g.num_nodes() as f64,
                rounds: 10,
            },
            |_| 0.0,
            &PregelConfig::with_workers(workers),
        )
        .unwrap();
        let bits: Vec<u64> = r.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, base_bits, "values differ at workers = {workers}");
        assert_eq!(r.metrics.supersteps, base.metrics.supersteps);
        assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
        assert_eq!(
            r.metrics.total_message_bytes,
            base.metrics.total_message_bytes
        );
    }
}

/// The phase breakdown accounts for each superstep's wall-clock: the
/// barrier residual is recorded per superstep (the runtime saturates the
/// subtraction at zero, so it can never go negative), `phase_total()` is
/// exactly the four phases plus that residual, and the run totals are the
/// per-superstep sums — with the master total also covering the final
/// master-only superstep, which has no per-superstep entry.
#[test]
fn phase_breakdown_accounts_for_the_superstep_wall_clock() {
    let g = gen::rmat(2_000, 16_000, 7);
    for workers in [1usize, 4] {
        let r = run(
            &g,
            &mut PageRank {
                n: g.num_nodes() as f64,
                rounds: 10,
            },
            |_| 0.0,
            &PregelConfig::with_workers(workers),
        )
        .unwrap();
        let m = &r.metrics;
        assert_eq!(
            m.per_superstep.len() as u32 + 1,
            m.supersteps,
            "workers = {workers}: the halting superstep is master-only"
        );
        let mut sums = [Duration::ZERO; 5];
        for s in &m.per_superstep {
            assert_eq!(
                s.phase_total(),
                s.compute_time + s.combine_time + s.exchange_time + s.master_time + s.barrier_time,
                "workers = {workers}: phase_total must cover all five parts"
            );
            sums[0] += s.compute_time;
            sums[1] += s.combine_time;
            sums[2] += s.exchange_time;
            sums[3] += s.master_time;
            sums[4] += s.barrier_time;
        }
        assert_eq!(m.compute_time, sums[0], "workers = {workers}");
        assert_eq!(m.combine_time, sums[1], "workers = {workers}");
        assert_eq!(m.exchange_time, sums[2], "workers = {workers}");
        assert_eq!(m.barrier_time, sums[4], "workers = {workers}");
        // The final master-only superstep is metered into the master total.
        assert!(m.master_time >= sums[3], "workers = {workers}");
        if workers > 1 {
            // Dispatching jobs to the pool and collecting replies has a
            // real cost somewhere across eleven supersteps.
            assert!(
                m.barrier_time > Duration::ZERO,
                "multi-worker runs must observe a barrier residual"
            );
        }
    }
}

/// The exchange path moves messages; it must never clone them. (Cloning
/// happens only where the programming model requires a copy per recipient,
/// i.e. `send_to_nbrs` fan-out — this program sends point-to-point.)
static CLONES: AtomicUsize = AtomicUsize::new(0);

struct CountingMsg(u64);

impl gm_ckpt::Persist for CountingMsg {
    fn persist(&self, out: &mut Vec<u8>) {
        self.0.persist(out);
    }
    fn restore(r: &mut gm_ckpt::ByteReader<'_>) -> Result<Self, gm_ckpt::CkptError> {
        Ok(CountingMsg(u64::restore(r)?))
    }
}

impl Clone for CountingMsg {
    fn clone(&self) -> Self {
        CLONES.fetch_add(1, Ordering::Relaxed);
        CountingMsg(self.0)
    }
}

struct RingRelay {
    n: u32,
    rounds: u32,
}

impl VertexProgram for RingRelay {
    type VertexValue = u64;
    type Message = CountingMsg;

    fn message_bytes(&self, _m: &CountingMsg) -> u64 {
        8
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        if ctx.superstep() > self.rounds {
            MasterDecision::Halt
        } else {
            MasterDecision::Continue
        }
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, CountingMsg>,
        value: &mut u64,
        messages: &[CountingMsg],
    ) {
        for m in messages {
            *value += m.0;
        }
        let id = ctx.id().0;
        let next = NodeId((id + 1) % self.n);
        ctx.send(next, CountingMsg(id as u64));
    }
}

#[test]
fn exchange_path_never_clones_messages() {
    let g = gen::cycle(64);
    for workers in [1usize, 4] {
        CLONES.store(0, Ordering::Relaxed);
        let r = run(
            &g,
            &mut RingRelay { n: 64, rounds: 5 },
            |_| 0,
            &PregelConfig::with_workers(workers),
        )
        .unwrap();
        assert!(r.metrics.total_messages > 0);
        assert_eq!(
            CLONES.load(Ordering::Relaxed),
            0,
            "exchange cloned messages at workers = {workers}"
        );
    }
}
