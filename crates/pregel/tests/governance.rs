//! Resource-governance integration tests, driven entirely through the
//! public API: the superstep deadline watchdog kills an injected
//! infinite-loop compute kernel, checkpointed recovery survives a
//! transient hang, a deterministic poison exhausts the restart budget
//! into [`PregelError::Quarantined`], spill-write failures surface as
//! structured errors and are themselves recoverable, and the resident
//! budget trips [`PregelError::BudgetExceeded`] at the barrier.

use gm_graph::gen;
use gm_pregel::{
    run, run_with_recovery, CheckpointConfig, FaultPlan, MasterContext, MasterDecision,
    PregelConfig, PregelError, RecoveryPolicy, ResourceBudget, VertexContext, VertexProgram,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gm-governance-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic chatty program: every vertex floods its neighbors each
/// superstep and accumulates what it hears, for a fixed number of rounds.
struct Rounds {
    rounds: u32,
}

impl VertexProgram for Rounds {
    type VertexValue = u64;
    type Message = u64;

    fn message_bytes(&self, _m: &u64) -> u64 {
        8
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        if ctx.superstep() == self.rounds {
            MasterDecision::Halt
        } else {
            MasterDecision::Continue
        }
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, u64>,
        value: &mut u64,
        messages: &[u64],
    ) {
        *value += messages.iter().sum::<u64>();
        ctx.send_to_nbrs(*value + u64::from(ctx.id().0) + 1);
    }
}

/// A budget with only the deadline set, explicitly unbounded elsewhere so
/// the test is immune to `GM_*` environment variables set by a CI stress
/// job.
fn deadline_only(d: Duration) -> ResourceBudget {
    ResourceBudget::unbounded().with_superstep_deadline(d)
}

#[test]
fn watchdog_kills_a_hung_compute_kernel() {
    let g = gen::cycle(12);
    for workers in [1usize, 2] {
        let cfg = PregelConfig::with_workers(workers)
            .with_budget(deadline_only(Duration::from_millis(50)))
            .with_faults(FaultPlan::builder().hang_in_compute(3, None).build());
        // Variant matches look through any post-mortem wrap so the suite
        // also passes with GM_POST_MORTEM_DIR armed (as CI does).
        let (err, _) = run(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg)
            .unwrap_err()
            .detach_post_mortem();
        match err {
            PregelError::DeadlineExceeded {
                superstep,
                deadline,
                ..
            } => {
                assert_eq!(superstep, 3, "workers = {workers}");
                assert_eq!(deadline, Duration::from_millis(50));
            }
            other => panic!("workers = {workers}: expected deadline error, got {other}"),
        }
    }
}

#[test]
fn transient_hang_is_recovered_from_checkpoint() {
    let g = gen::cycle(12);
    // Baseline without faults or deadline.
    let base = run(
        &g,
        &mut Rounds { rounds: 8 },
        |_| 0,
        &PregelConfig::with_workers(2).with_budget(ResourceBudget::unbounded()),
    )
    .unwrap();

    let dir = fresh_dir("hang");
    let cfg = PregelConfig::with_workers(2)
        .with_budget(deadline_only(Duration::from_millis(50)))
        .with_checkpoints(CheckpointConfig::new(&dir, 2))
        .with_faults(FaultPlan::builder().hang_in_compute(5, Some(0)).build())
        .with_recovery(RecoveryPolicy::with_max_restarts(2));
    let r = run_with_recovery(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg).unwrap();
    assert_eq!(r.values, base.values);
    assert_eq!(r.metrics.supersteps, base.metrics.supersteps);
    assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
    assert_eq!(r.metrics.recovery.restarts, 1);
    assert!(
        r.metrics.recovery.wasted_supersteps > 0,
        "the killed attempt must be accounted as waste"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deterministic_hang_is_quarantined() {
    let g = gen::cycle(12);
    let dir = fresh_dir("poison");
    let cfg = PregelConfig::with_workers(2)
        .with_budget(deadline_only(Duration::from_millis(30)))
        .with_checkpoints(CheckpointConfig::new(&dir, 2))
        .with_faults(
            // Pinned to worker 0 so every attempt fails with an identical
            // signature — the definition of a deterministic poison.
            FaultPlan::builder()
                .hang_in_compute(4, Some(0))
                .times(u32::MAX)
                .build(),
        )
        .with_recovery(RecoveryPolicy::with_max_restarts(2));
    let (err, _) = run_with_recovery(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg)
        .unwrap_err()
        .detach_post_mortem();
    match err {
        PregelError::Quarantined {
            superstep,
            attempts,
            ..
        } => {
            assert_eq!(superstep, 4);
            assert_eq!(attempts, 3, "initial attempt + 2 restarts");
        }
        other => panic!("expected quarantine, got {other}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spill_write_failure_is_structured_and_recoverable() {
    let g = gen::cycle(12);
    let spilling = ResourceBudget::unbounded().with_max_message_bytes(1);

    // Plain run: the injected write failure surfaces as SpillFailed.
    let cfg = PregelConfig::with_workers(2)
        .with_budget(spilling.clone())
        .with_faults(FaultPlan::builder().fail_spill_write(3).build());
    let (err, _) = run(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg)
        .unwrap_err()
        .detach_post_mortem();
    match err {
        PregelError::SpillFailed { superstep, op, .. } => {
            assert_eq!(superstep, 3);
            assert_eq!(op, "write");
        }
        other => panic!("expected spill failure, got {other}"),
    }

    // Supervised run: the same failure is transient, so recovery replays
    // the superstep and finishes with results identical to an unspilled,
    // unfaulted baseline.
    let base = run(
        &g,
        &mut Rounds { rounds: 8 },
        |_| 0,
        &PregelConfig::with_workers(2).with_budget(ResourceBudget::unbounded()),
    )
    .unwrap();
    let dir = fresh_dir("spillfail");
    let cfg = PregelConfig::with_workers(2)
        .with_budget(spilling)
        .with_checkpoints(CheckpointConfig::new(&dir, 2))
        .with_faults(FaultPlan::builder().fail_spill_write(3).build())
        .with_recovery(RecoveryPolicy::with_max_restarts(1));
    let r = run_with_recovery(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg).unwrap();
    assert_eq!(r.values, base.values);
    assert_eq!(r.metrics.supersteps, base.metrics.supersteps);
    assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
    assert_eq!(r.metrics.recovery.restarts, 1);
    assert!(r.metrics.spill.buckets_spilled > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resident_budget_trips_at_the_barrier() {
    let g = gen::cycle(12);
    // The injected fault forces the barrier check to report an overrun at
    // superstep 2 without needing an actually-huge value store.
    let cfg = PregelConfig::with_workers(2)
        .with_budget(ResourceBudget::unbounded().with_max_resident_bytes(1 << 30))
        .with_faults(FaultPlan::builder().oom_at_barrier(2).build());
    let (err, _) = run(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg)
        .unwrap_err()
        .detach_post_mortem();
    match err {
        PregelError::BudgetExceeded {
            superstep,
            what,
            used,
            budget,
        } => {
            assert_eq!(superstep, 2);
            assert_eq!(what, "resident value-store bytes");
            assert!(used > budget, "reported usage must exceed the budget");
        }
        other => panic!("expected budget error, got {other}"),
    }

    // A genuinely tiny budget trips without any injected fault.
    let cfg = PregelConfig::with_workers(2)
        .with_budget(ResourceBudget::unbounded().with_max_resident_bytes(8));
    let (err, _) = run(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg)
        .unwrap_err()
        .detach_post_mortem();
    assert!(
        matches!(err, PregelError::BudgetExceeded { .. }),
        "got {err}"
    );
}

#[test]
fn governed_run_with_all_limits_set_still_matches_baseline() {
    let g = gen::rmat(200, 1400, 5);
    let base = run(
        &g,
        &mut Rounds { rounds: 6 },
        |_| 0,
        &PregelConfig::with_workers(2).with_budget(ResourceBudget::unbounded()),
    )
    .unwrap();
    // Generous-but-finite limits on every axis at once: the governed run
    // must spill (tiny message budget) yet stay bit-identical.
    let spill_dir = fresh_dir("alllimits");
    let budget = ResourceBudget::unbounded()
        .with_max_message_bytes(64)
        .with_superstep_deadline(Duration::from_secs(60))
        .with_max_resident_bytes(1 << 30)
        .with_spill_dir(&spill_dir);
    let r = run(
        &g,
        &mut Rounds { rounds: 6 },
        |_| 0,
        &PregelConfig::with_workers(2).with_budget(budget),
    )
    .unwrap();
    assert_eq!(r.values, base.values);
    assert_eq!(r.metrics.supersteps, base.metrics.supersteps);
    assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
    assert_eq!(
        r.metrics.total_message_bytes,
        base.metrics.total_message_bytes
    );
    assert!(r.metrics.spill.buckets_spilled > 0);
    let _ = std::fs::remove_dir_all(&spill_dir);
}

#[test]
fn cancellation_token_stops_the_run_at_a_superstep_boundary() {
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    let g = gen::cycle(16);
    let cancel = Arc::new(AtomicBool::new(true));
    let cfg = PregelConfig::with_workers(2)
        .with_budget(ResourceBudget::unbounded())
        .with_cancel(cancel.clone());
    let err = run(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg).unwrap_err();
    match err {
        PregelError::Cancelled { superstep } => assert_eq!(superstep, 0),
        other => panic!("expected Cancelled, got {other}"),
    }
    assert_eq!(err.kind(), "cancelled");
    assert!(!err.is_recoverable(), "hosts cancel on purpose");

    // A cleared token is inert: the same config runs to completion.
    cancel.store(false, Ordering::Relaxed);
    let r = run(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg).unwrap();
    assert_eq!(r.metrics.supersteps, 9);

    // And run_with_recovery must not retry a cancellation: it is not
    // recoverable, so the error comes back directly (no quarantine
    // wrapper from exhausted restarts).
    cancel.store(true, Ordering::Relaxed);
    let cfg = cfg.with_recovery(RecoveryPolicy::with_max_restarts(3));
    let err = run_with_recovery(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg).unwrap_err();
    assert!(matches!(err, PregelError::Cancelled { .. }), "{err}");
}
