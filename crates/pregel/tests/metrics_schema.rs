//! Golden-file test pinning the `Metrics::to_json` schema.
//!
//! Downstream consumers — `gm-bench regress`, dashboards, the post-mortem
//! bundles — parse this document, so its field set is a compatibility
//! surface. The test runs a workload that populates every stats block
//! (spill, recovery, schedule counters), extracts the set of JSON field
//! paths with their value types, and compares against the checked-in
//! golden file. Regenerate intentionally with:
//!
//! ```text
//! GM_UPDATE_GOLDEN=1 cargo test -p gm-pregel --test metrics_schema
//! ```

use gm_obs::json::{parse, Json};
use gm_pregel::{
    run, CheckpointConfig, MasterContext, MasterDecision, Metrics, PregelConfig, PullMode,
    ResourceBudget, Schedule, VertexContext, VertexProgram,
};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gm-metrics-schema-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Flooding program, pullable so auto-scheduling can pick gather steps.
struct Rounds {
    rounds: u32,
}

impl VertexProgram for Rounds {
    type VertexValue = u64;
    type Message = u64;

    fn message_bytes(&self, _m: &u64) -> u64 {
        8
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        if ctx.superstep() == self.rounds {
            MasterDecision::Halt
        } else {
            MasterDecision::Continue
        }
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, u64>,
        value: &mut u64,
        messages: &[u64],
    ) {
        *value += messages.iter().sum::<u64>();
        ctx.send_to_nbrs(*value + u64::from(ctx.id().0) + 1);
    }

    fn pull_supported(&self) -> bool {
        true
    }

    fn pull_mode(&self) -> PullMode {
        PullMode::Captured
    }
}

/// Runs a workload that leaves no stats block at its default: checkpoints
/// are written (Recovery), a 1-byte message budget forces spilling
/// (Spill), and the forced-pull run contributes schedule counters.
fn populated_metrics() -> Metrics {
    let g = gm_graph::gen::cycle(16);
    let ckpt_dir = fresh_dir("ckpt");
    let spill_dir = fresh_dir("spill");
    let cfg = PregelConfig::with_workers(2)
        .with_schedule(Schedule::Pull)
        .with_checkpoints(CheckpointConfig::new(&ckpt_dir, 2))
        .with_budget(
            ResourceBudget::unbounded()
                .with_max_message_bytes(1)
                .with_spill_dir(&spill_dir),
        );
    let pulled = run(&g, &mut Rounds { rounds: 6 }, |_| 0, &cfg).unwrap();

    // A second, push-scheduled run actually spills (pull supersteps bypass
    // the outbox); merge its spill/recovery-relevant counters by just
    // using its metrics and grafting the pull counters in via JSON —
    // instead, simply run push and return whichever has spill activity,
    // asserting the other populated the schedule counters.
    let cfg = PregelConfig::with_workers(2)
        .with_schedule(Schedule::Push)
        .with_checkpoints(CheckpointConfig::new(&ckpt_dir, 2))
        .with_budget(
            ResourceBudget::unbounded()
                .with_max_message_bytes(1)
                .with_spill_dir(&spill_dir),
        );
    let mut pushed = run(&g, &mut Rounds { rounds: 6 }, |_| 0, &cfg).unwrap();
    assert!(pulled.metrics.pull_supersteps > 0);
    assert!(pushed.metrics.spill.buckets_spilled > 0);
    assert!(pushed.metrics.recovery.checkpoints_written > 0);
    // Fold the pull counters into the pushed run's metrics so one document
    // carries every populated block.
    pushed.metrics.pull_supersteps = pulled.metrics.pull_supersteps;
    pushed.metrics.direction_switches = 1;

    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let _ = std::fs::remove_dir_all(&spill_dir);
    pushed.metrics
}

fn type_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::Num(_) | Json::Int(_) | Json::UInt(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

/// Collects `path: type` lines for every field, with array indices
/// collapsed to `[]` so the schema is independent of superstep count.
fn collect_paths(v: &Json, prefix: &str, out: &mut BTreeSet<String>) {
    match v {
        Json::Obj(m) => {
            for (k, child) in m {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                out.insert(format!("{path}: {}", type_name(child)));
                collect_paths(child, &path, out);
            }
        }
        Json::Arr(items) => {
            for item in items {
                collect_paths(item, &format!("{prefix}[]"), out);
            }
        }
        _ => {}
    }
}

#[test]
fn metrics_json_schema_matches_golden_file() {
    let metrics = populated_metrics();
    let doc = parse(&metrics.to_json()).expect("Metrics::to_json parses");
    let mut paths = BTreeSet::new();
    collect_paths(&doc, "", &mut paths);
    let mut schema = paths.into_iter().collect::<Vec<_>>().join("\n");
    schema.push('\n');

    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics_schema.txt");
    if std::env::var_os("GM_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &schema).expect("write golden");
        return;
    }
    let golden =
        std::fs::read_to_string(&golden_path).expect("read tests/golden/metrics_schema.txt");
    assert_eq!(
        schema, golden,
        "Metrics::to_json schema drifted from tests/golden/metrics_schema.txt; \
         this breaks gm-bench regress and post-mortem consumers — if the change \
         is intentional, regenerate with GM_UPDATE_GOLDEN=1"
    );
}

#[test]
fn all_stats_blocks_are_populated_in_the_golden_scenario() {
    let metrics = populated_metrics();
    let doc = parse(&metrics.to_json()).unwrap();
    // Spill block.
    let spill = doc.get("spill").expect("spill block");
    assert!(spill.get("buckets_spilled").unwrap().as_u64().unwrap() > 0);
    assert!(
        spill
            .get("spilled_message_bytes")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    // Recovery block.
    let recovery = doc.get("recovery").expect("recovery block");
    assert!(
        recovery
            .get("checkpoints_written")
            .unwrap()
            .as_u64()
            .unwrap()
            > 0
    );
    // Schedule counters (satellite: exported since the direction-switching
    // runtime landed).
    assert!(doc.get("pull_supersteps").unwrap().as_u64().unwrap() > 0);
    assert!(doc.get("direction_switches").unwrap().as_u64().unwrap() > 0);
    // Totals and breakdown.
    assert!(doc.get("supersteps").unwrap().as_u64().unwrap() > 0);
    assert!(!doc
        .get("per_superstep")
        .unwrap()
        .as_arr()
        .unwrap()
        .is_empty());
}
