//! Crash-forensics integration tests: a fault-injected run configured
//! with [`PostMortemConfig`] must leave behind a self-contained bundle
//! directory — manifest, structured error, effective config, metrics
//! snapshot, and the flight recorder's last trace events — and the
//! returned error must carry the bundle path.

use gm_obs::json::{parse, Json};
use gm_obs::metrics::MetricsRegistry;
use gm_pregel::{
    run, run_with_recovery, CheckpointConfig, FaultPlan, MasterContext, MasterDecision,
    PostMortemConfig, PregelConfig, PregelError, RecoveryPolicy, ResourceBudget, VertexContext,
    VertexProgram,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn fresh_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gm-postmortem-{}-{}-{}",
        std::process::id(),
        tag,
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic flooding program, identical in shape to the governance
/// tests' workload.
struct Rounds {
    rounds: u32,
}

impl VertexProgram for Rounds {
    type VertexValue = u64;
    type Message = u64;

    fn message_bytes(&self, _m: &u64) -> u64 {
        8
    }

    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
        if ctx.superstep() == self.rounds {
            MasterDecision::Halt
        } else {
            MasterDecision::Continue
        }
    }

    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, u64>,
        value: &mut u64,
        messages: &[u64],
    ) {
        *value += messages.iter().sum::<u64>();
        ctx.send_to_nbrs(*value + u64::from(ctx.id().0) + 1);
    }
}

fn read_json(bundle: &Path, file: &str) -> Json {
    let text = std::fs::read_to_string(bundle.join(file))
        .unwrap_or_else(|e| panic!("bundle is missing {file}: {e}"));
    parse(&text).unwrap_or_else(|e| panic!("{file} is not valid JSON: {e:?}"))
}

#[test]
fn worker_panic_produces_a_complete_bundle() {
    let g = gm_graph::gen::cycle(16);
    let dir = fresh_dir("panic");
    let registry = Arc::new(MetricsRegistry::new());
    let cfg = PregelConfig::with_workers(2)
        .with_faults(FaultPlan::builder().panic_in_compute(2, Some(1)).build())
        .with_post_mortem(PostMortemConfig::new(&dir))
        .with_registry(registry);
    let err = run(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg).unwrap_err();

    // The error carries the bundle path and still classifies as the
    // underlying panic.
    let bundle = err
        .post_mortem_bundle()
        .expect("error must reference its bundle")
        .to_path_buf();
    assert!(bundle.starts_with(&dir));
    assert!(bundle.is_dir(), "{bundle:?} must exist");
    assert!(err.is_recoverable(), "panics stay recoverable when wrapped");
    assert!(
        err.to_string().contains("post-mortem bundle"),
        "rendered error must point at the bundle: {err}"
    );
    match &err {
        PregelError::PostMortem { source, .. } => match **source {
            PregelError::WorkerPanicked {
                superstep, worker, ..
            } => {
                assert_eq!(superstep, 2);
                assert_eq!(worker, Some(1));
            }
            ref other => panic!("expected a worker panic inside the wrapper, got {other}"),
        },
        other => panic!("expected PostMortem, got {other}"),
    }

    // MANIFEST.json names the failing superstep and worker, and every file
    // it lists is present.
    let manifest = read_json(&bundle, "MANIFEST.json");
    assert_eq!(manifest.get("schema").unwrap().as_u64(), Some(1));
    assert_eq!(
        manifest.get("kind").unwrap().as_str(),
        Some("worker_panicked")
    );
    assert_eq!(manifest.get("superstep").unwrap().as_u64(), Some(2));
    assert_eq!(manifest.get("worker").unwrap().as_u64(), Some(1));
    let files = manifest.get("files").unwrap().as_arr().unwrap();
    let names: Vec<&str> = files.iter().filter_map(Json::as_str).collect();
    for required in [
        "MANIFEST.json",
        "error.json",
        "config.json",
        "metrics.json",
        "trace.jsonl",
        "prometheus.txt",
    ] {
        assert!(names.contains(&required), "manifest lacks {required}");
    }
    for name in &names {
        assert!(bundle.join(name).is_file(), "listed file {name} is absent");
    }

    // error.json repeats the attribution in structured form.
    let error = read_json(&bundle, "error.json");
    assert_eq!(error.get("kind").unwrap().as_str(), Some("worker_panicked"));
    assert_eq!(error.get("superstep").unwrap().as_u64(), Some(2));
    assert_eq!(error.get("worker").unwrap().as_u64(), Some(1));

    // config.json records the effective run configuration and graph shape.
    let config = read_json(&bundle, "config.json");
    assert_eq!(config.get("num_workers").unwrap().as_u64(), Some(2));
    assert_eq!(
        config.get("graph").unwrap().get("nodes").unwrap().as_u64(),
        Some(16)
    );

    // metrics.json holds the supersteps up to the failure: the `supersteps`
    // counter includes the started-but-failed superstep 2, while the
    // per-superstep breakdown only has the two that completed.
    let metrics = read_json(&bundle, "metrics.json");
    assert_eq!(metrics.get("supersteps").unwrap().as_u64(), Some(3));
    assert_eq!(
        metrics
            .get("per_superstep")
            .unwrap()
            .as_arr()
            .unwrap()
            .len(),
        2
    );

    // trace.jsonl: the flight recorder retained events even though no
    // user tracer was configured, and every line is standalone JSON.
    let trace = std::fs::read_to_string(bundle.join("trace.jsonl")).unwrap();
    assert!(!trace.trim().is_empty(), "flight recorder captured nothing");
    for line in trace.lines() {
        parse(line).unwrap_or_else(|e| panic!("bad trace line {line:?}: {e:?}"));
    }
    let retained = manifest
        .get("trace_events")
        .unwrap()
        .get("retained")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(retained, trace.lines().count() as u64);

    // prometheus.txt: the registry snapshot includes the per-phase
    // histograms fed by the completed supersteps.
    let prom = std::fs::read_to_string(bundle.join("prometheus.txt")).unwrap();
    assert!(prom.contains("gm_phase_seconds_bucket"), "{prom}");
    assert!(prom.contains("gm_failures_total{kind=\"worker_panicked\"} 1"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn deadline_overrun_is_bundled_too() {
    let g = gm_graph::gen::cycle(12);
    let dir = fresh_dir("deadline");
    let cfg = PregelConfig::with_workers(1)
        .with_budget(ResourceBudget::unbounded().with_superstep_deadline(Duration::from_millis(40)))
        .with_faults(FaultPlan::builder().hang_in_compute(3, None).build())
        .with_post_mortem(PostMortemConfig::new(&dir).with_capacity(64));
    let err = run(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg).unwrap_err();
    let bundle = err.post_mortem_bundle().expect("bundle path").to_path_buf();
    let manifest = read_json(&bundle, "MANIFEST.json");
    assert_eq!(
        manifest.get("kind").unwrap().as_str(),
        Some("deadline_exceeded")
    );
    assert_eq!(manifest.get("superstep").unwrap().as_u64(), Some(3));
    // No registry attached: the manifest must not promise prometheus.txt.
    let files = manifest.get("files").unwrap().as_arr().unwrap();
    assert!(!files.iter().any(|f| f.as_str() == Some("prometheus.txt")));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quarantine_keeps_the_newest_bundle_and_a_clean_signature() {
    let g = gm_graph::gen::cycle(12);
    let dir = fresh_dir("quarantine");
    let ckpt_dir = fresh_dir("quarantine-ckpt");
    let cfg = PregelConfig::with_workers(2)
        .with_budget(ResourceBudget::unbounded().with_superstep_deadline(Duration::from_millis(30)))
        .with_checkpoints(CheckpointConfig::new(&ckpt_dir, 2))
        .with_faults(
            FaultPlan::builder()
                .hang_in_compute(4, Some(0))
                .times(u32::MAX)
                .build(),
        )
        .with_recovery(RecoveryPolicy::with_max_restarts(2))
        .with_post_mortem(PostMortemConfig::new(&dir));
    let err = run_with_recovery(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg).unwrap_err();

    // Each attempt wrote its own bundle; the distinct paths must not stop
    // the supervisor from recognising the identical failure signature.
    let bundle = err
        .post_mortem_bundle()
        .expect("quarantine keeps a bundle")
        .to_path_buf();
    match &err {
        PregelError::PostMortem { source, .. } => {
            assert!(
                matches!(**source, PregelError::Quarantined { attempts: 3, .. }),
                "expected quarantine after 3 identical attempts, got {source}"
            );
        }
        other => panic!("expected PostMortem-wrapped quarantine, got {other}"),
    }
    assert!(bundle.is_dir());
    let bundles = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(bundles, 3, "one bundle per attempt");
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn bundle_retention_keeps_only_the_newest_bundles() {
    let g = gm_graph::gen::cycle(12);
    let dir = fresh_dir("retention");
    let cfg = PregelConfig::with_workers(2)
        .with_faults(
            FaultPlan::builder()
                .panic_in_compute(2, Some(1))
                .times(u32::MAX)
                .build(),
        )
        .with_post_mortem(PostMortemConfig::new(&dir).with_keep(2));

    // Three independent failing runs write three bundles; the GC after
    // each write keeps the count at the cap.
    let mut last_bundle = PathBuf::new();
    for _ in 0..3 {
        let err = run(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg).unwrap_err();
        last_bundle = err.post_mortem_bundle().unwrap().to_path_buf();
    }

    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(names.len(), 2, "keep=2 caps the directory: {names:?}");
    // The newest bundle (the one the last error points at) survives.
    assert!(last_bundle.is_dir(), "newest bundle was GC'd: {names:?}");

    // Stray non-bundle entries are never touched by the GC.
    let stray = dir.join("notes.txt");
    std::fs::write(&stray, "operator notes").unwrap();
    let err = run(&g, &mut Rounds { rounds: 8 }, |_| 0, &cfg).unwrap_err();
    assert!(err.post_mortem_bundle().unwrap().is_dir());
    assert!(stray.is_file(), "GC must ignore non-bundle entries");
    assert_eq!(
        std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| e.as_ref().unwrap().file_type().unwrap().is_dir())
            .count(),
        2
    );
    let _ = std::fs::remove_dir_all(&dir);
}
