//! Per-run and per-superstep execution metrics.
//!
//! The paper's evaluation (§5.2) reports three quantities per experiment:
//! run-time, network I/O due to messages, and the number of timesteps. The
//! runtime meters all three, plus active-vertex counts (used to discuss the
//! missing `voteToHalt` optimization: "less than 1.5% of the vertices were
//! active in the last 30 timesteps" of SSSP on Twitter).
//!
//! Since the parallel-exchange rework the runtime also meters *where* each
//! superstep's wall-clock goes, split into the four BSP phases:
//!
//! * **master** — the sequential [`master_compute`] kernel;
//! * **compute** — the vertex kernels (slowest worker's kernel loop);
//! * **combine** — sender-side combining plus message metering, run inside
//!   worker threads (slowest worker);
//! * **exchange** — routing the per-destination-worker buckets and the
//!   parallel zero-copy delivery into the destination inboxes.
//!
//! Compute and combine are per-worker measurements folded with `max` (the
//! barrier waits for the slowest worker, so the max is the wall-clock
//! contribution); exchange and master are measured by the coordinating
//! thread directly.
//!
//! [`master_compute`]: crate::VertexProgram::master_compute

use std::time::Duration;

/// Counters for a single superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuperstepMetrics {
    /// Vertices whose `vertex_compute` ran this superstep.
    pub active_vertices: u32,
    /// Messages sent during this superstep.
    pub messages_sent: u64,
    /// Serialized bytes of those messages.
    pub message_bytes: u64,
    /// Messages whose destination lives on a different worker — the subset
    /// that would cross the network in a distributed deployment.
    pub remote_messages: u64,
    /// Serialized bytes of remote messages.
    pub remote_message_bytes: u64,
    /// Wall-clock of the slowest worker's vertex kernel loop.
    pub compute_time: Duration,
    /// Wall-clock of the slowest worker's combining + metering pass.
    pub combine_time: Duration,
    /// Wall-clock of the message exchange: bucket routing plus parallel
    /// delivery into the destination workers' inboxes.
    pub exchange_time: Duration,
    /// Wall-clock of the sequential master kernel that opened this superstep.
    pub master_time: Duration,
}

impl SuperstepMetrics {
    /// Sum of the four phase times — the metered portion of this superstep.
    pub fn phase_total(&self) -> Duration {
        self.compute_time + self.combine_time + self.exchange_time + self.master_time
    }
}

/// Aggregate counters for a whole run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Number of supersteps executed, counting the final master-only
    /// superstep in which the master halts the computation.
    pub supersteps: u32,
    /// Total messages sent.
    pub total_messages: u64,
    /// Total serialized message bytes — the "network I/O" column of the
    /// paper, measured in a worker-count-independent way.
    pub total_message_bytes: u64,
    /// Messages that crossed a worker boundary.
    pub remote_messages: u64,
    /// Bytes that crossed a worker boundary (depends on worker count).
    pub remote_message_bytes: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Total vertex-kernel time (sum over supersteps of the slowest
    /// worker's kernel loop).
    pub compute_time: Duration,
    /// Total combining + metering time (sum of slowest-worker times).
    pub combine_time: Duration,
    /// Total message-exchange time (routing + parallel delivery).
    pub exchange_time: Duration,
    /// Total sequential master time, including the final master-only
    /// superstep in which the computation halts.
    pub master_time: Duration,
    /// Per-superstep breakdown, indexed by superstep number.
    pub per_superstep: Vec<SuperstepMetrics>,
}

impl Metrics {
    /// Folds one superstep's counters into the totals.
    pub(crate) fn record(&mut self, step: SuperstepMetrics) {
        self.total_messages += step.messages_sent;
        self.total_message_bytes += step.message_bytes;
        self.remote_messages += step.remote_messages;
        self.remote_message_bytes += step.remote_message_bytes;
        self.compute_time += step.compute_time;
        self.combine_time += step.combine_time;
        self.exchange_time += step.exchange_time;
        self.master_time += step.master_time;
        self.per_superstep.push(step);
    }

    /// Largest number of active vertices in any superstep.
    pub fn peak_active_vertices(&self) -> u32 {
        self.per_superstep
            .iter()
            .map(|s| s.active_vertices)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = Metrics::default();
        m.record(SuperstepMetrics {
            active_vertices: 10,
            messages_sent: 5,
            message_bytes: 40,
            remote_messages: 2,
            remote_message_bytes: 16,
            compute_time: Duration::from_millis(3),
            combine_time: Duration::from_millis(1),
            exchange_time: Duration::from_millis(2),
            master_time: Duration::from_millis(1),
        });
        m.record(SuperstepMetrics {
            active_vertices: 3,
            messages_sent: 1,
            message_bytes: 8,
            remote_messages: 0,
            remote_message_bytes: 0,
            compute_time: Duration::from_millis(2),
            ..Default::default()
        });
        assert_eq!(m.total_messages, 6);
        assert_eq!(m.total_message_bytes, 48);
        assert_eq!(m.remote_messages, 2);
        assert_eq!(m.remote_message_bytes, 16);
        assert_eq!(m.per_superstep.len(), 2);
        assert_eq!(m.peak_active_vertices(), 10);
        assert_eq!(m.compute_time, Duration::from_millis(5));
        assert_eq!(m.combine_time, Duration::from_millis(1));
        assert_eq!(m.exchange_time, Duration::from_millis(2));
        assert_eq!(m.master_time, Duration::from_millis(1));
        assert_eq!(m.per_superstep[0].phase_total(), Duration::from_millis(7));
    }

    #[test]
    fn peak_of_empty_run_is_zero() {
        assert_eq!(Metrics::default().peak_active_vertices(), 0);
    }
}
