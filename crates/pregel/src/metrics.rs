//! Per-run and per-superstep execution metrics.
//!
//! The paper's evaluation (§5.2) reports three quantities per experiment:
//! run-time, network I/O due to messages, and the number of timesteps. The
//! runtime meters all three, plus active-vertex counts (used to discuss the
//! missing `voteToHalt` optimization: "less than 1.5% of the vertices were
//! active in the last 30 timesteps" of SSSP on Twitter).
//!
//! Since the parallel-exchange rework the runtime also meters *where* each
//! superstep's wall-clock goes, split into the four BSP phases:
//!
//! * **master** — the sequential [`master_compute`] kernel;
//! * **compute** — the vertex kernels (slowest worker's kernel loop);
//! * **combine** — sender-side combining plus message metering, run inside
//!   worker threads (slowest worker);
//! * **exchange** — routing the per-destination-worker buckets and the
//!   parallel zero-copy delivery into the destination inboxes.
//!
//! Compute and combine are per-worker measurements folded with `max` (the
//! barrier waits for the slowest worker, so the max is the wall-clock
//! contribution); exchange and master are measured by the coordinating
//! thread directly. The residual between the measured superstep wall-clock
//! and those four phases — job dispatch, reply collection, and the time
//! the barrier spends waiting on skewed workers — is kept as
//! [`SuperstepMetrics::barrier_time`], so [`SuperstepMetrics::phase_total`]
//! accounts for (approximately) the whole superstep.
//!
//! [`Metrics::to_json`] exports everything as a machine-readable document
//! so bench runs produce diffable artifacts instead of ad-hoc prints.
//!
//! [`master_compute`]: crate::VertexProgram::master_compute

use gm_obs::json::Json;
use gm_obs::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use std::time::Duration;

/// Counters for a single superstep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuperstepMetrics {
    /// Vertices whose `vertex_compute` ran this superstep.
    pub active_vertices: u32,
    /// Messages sent during this superstep.
    pub messages_sent: u64,
    /// Serialized bytes of those messages.
    pub message_bytes: u64,
    /// Messages whose destination lives on a different worker — the subset
    /// that would cross the network in a distributed deployment.
    pub remote_messages: u64,
    /// Serialized bytes of remote messages.
    pub remote_message_bytes: u64,
    /// Wall-clock of the slowest worker's vertex kernel loop.
    pub compute_time: Duration,
    /// Wall-clock of the slowest worker's combining + metering pass.
    pub combine_time: Duration,
    /// Wall-clock of the message exchange: bucket routing plus parallel
    /// delivery into the destination workers' inboxes.
    pub exchange_time: Duration,
    /// Wall-clock of the sequential master kernel that opened this superstep.
    pub master_time: Duration,
    /// Residual between the measured superstep wall-clock and the four
    /// phases above: job dispatch, reply collection, and barrier waiting.
    /// Saturates at zero in the rare case the per-worker maxima of compute
    /// and combine land on different workers (their sum can then slightly
    /// exceed the wall-clock).
    pub barrier_time: Duration,
    /// Whether this superstep ran gathered (pull): the exchange was
    /// replaced by receiver-side in-edge gathering. When `true`,
    /// `exchange_time` measures the gather phase and `combine_time` is
    /// zero (folding happens inside the gather).
    pub pulled: bool,
}

impl SuperstepMetrics {
    /// Sum of all metered phase times including the barrier residual —
    /// approximately the superstep's measured wall-clock.
    pub fn phase_total(&self) -> Duration {
        self.compute_time
            + self.combine_time
            + self.exchange_time
            + self.master_time
            + self.barrier_time
    }

    /// This superstep's counters and timings as a JSON object (durations
    /// in microseconds).
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            (
                "active_vertices".to_owned(),
                Json::UInt(self.active_vertices as u64),
            ),
            ("messages_sent".to_owned(), Json::UInt(self.messages_sent)),
            ("message_bytes".to_owned(), Json::UInt(self.message_bytes)),
            (
                "remote_messages".to_owned(),
                Json::UInt(self.remote_messages),
            ),
            (
                "remote_message_bytes".to_owned(),
                Json::UInt(self.remote_message_bytes),
            ),
            ("compute_us".to_owned(), dur_us(self.compute_time)),
            ("combine_us".to_owned(), dur_us(self.combine_time)),
            ("exchange_us".to_owned(), dur_us(self.exchange_time)),
            ("master_us".to_owned(), dur_us(self.master_time)),
            ("barrier_us".to_owned(), dur_us(self.barrier_time)),
            ("pulled".to_owned(), Json::Bool(self.pulled)),
        ])
    }
}

fn dur_us(d: Duration) -> Json {
    Json::UInt(d.as_micros() as u64)
}

/// Checkpoint and recovery counters for a run.
///
/// Unlike the structural counters above, these are *not* required to be
/// identical between an uninterrupted run and a run that recovered from a
/// fault: a recovered run restores the counters persisted in the snapshot
/// it resumed from, then keeps counting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Snapshots successfully written to the checkpoint directory.
    pub checkpoints_written: u32,
    /// Checkpoint writes that failed (I/O error or injected fault). A
    /// failed write never aborts the run — the job continues and retries
    /// at the next checkpoint interval.
    pub checkpoint_failures: u32,
    /// Total bytes of all successfully written snapshots.
    pub snapshot_bytes: u64,
    /// Successful restores from a snapshot (resume paths taken).
    pub restores: u32,
    /// Snapshots rejected during recovery scans because they failed
    /// checksum or framing validation.
    pub corrupt_snapshots_discarded: u32,
    /// Times the recovery supervisor restarted the job after a failure.
    pub restarts: u32,
    /// Supersteps executed by failed attempts whose work was thrown away —
    /// accumulated across [`run_with_recovery`](crate::run_with_recovery)
    /// restarts, so the cost of recovering is visible, not just the fact
    /// that it happened.
    pub wasted_supersteps: u32,
    /// Wall-clock burned by failed attempts (accumulated across restarts).
    pub wasted_time: Duration,
    /// Wall-clock spent capturing and writing snapshots.
    pub checkpoint_time: Duration,
    /// Wall-clock spent locating, validating, and decoding snapshots on
    /// the resume path.
    pub restore_time: Duration,
}

impl RecoveryStats {
    /// The recovery counters as a JSON object (durations in microseconds).
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            (
                "checkpoints_written".to_owned(),
                Json::UInt(self.checkpoints_written as u64),
            ),
            (
                "checkpoint_failures".to_owned(),
                Json::UInt(self.checkpoint_failures as u64),
            ),
            ("snapshot_bytes".to_owned(), Json::UInt(self.snapshot_bytes)),
            ("restores".to_owned(), Json::UInt(self.restores as u64)),
            (
                "corrupt_snapshots_discarded".to_owned(),
                Json::UInt(self.corrupt_snapshots_discarded as u64),
            ),
            ("restarts".to_owned(), Json::UInt(self.restarts as u64)),
            (
                "wasted_supersteps".to_owned(),
                Json::UInt(self.wasted_supersteps as u64),
            ),
            ("wasted_us".to_owned(), dur_us(self.wasted_time)),
            ("checkpoint_us".to_owned(), dur_us(self.checkpoint_time)),
            ("restore_us".to_owned(), dur_us(self.restore_time)),
        ])
    }
}

/// Message-spill counters for a run.
///
/// All zero unless a message budget was configured and exceeded. Like
/// [`RecoveryStats`], these are *not* part of the structural contract: a
/// spilled run reports identical supersteps/messages/bytes to an unspilled
/// one, and these counters record only where the bytes physically went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Destination buckets diverted to disk instead of staying resident.
    pub buckets_spilled: u64,
    /// Metered message bytes of the spilled buckets (the amount kept out
    /// of memory between combine and delivery).
    pub spilled_message_bytes: u64,
    /// Bytes written to spill files (payload + framing).
    pub spill_file_bytes: u64,
    /// Spill files replayed (CRC-checked) at delivery.
    pub files_replayed: u64,
    /// Wall-clock spent encoding and writing spill files.
    pub spill_write_time: Duration,
    /// Wall-clock spent reading, validating, and decoding spill files.
    pub spill_read_time: Duration,
    /// Largest resident in-flight message volume of any superstep, in
    /// metered bytes, after spilling (what actually stayed in memory).
    pub peak_in_flight_bytes: u64,
    /// Gathered (pull) supersteps that ran while a message budget was
    /// configured. Pull supersteps never route messages through the
    /// outbox, so the budget's spill machinery cannot see their traffic —
    /// these counters make the bypass explicit instead of silent.
    pub pull_bypassed_supersteps: u64,
    /// Metered message bytes of those gathered supersteps (traffic that
    /// was never subject to the budget).
    pub pull_bypassed_bytes: u64,
}

impl SpillStats {
    /// The spill counters as a JSON object (durations in microseconds).
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            (
                "buckets_spilled".to_owned(),
                Json::UInt(self.buckets_spilled),
            ),
            (
                "spilled_message_bytes".to_owned(),
                Json::UInt(self.spilled_message_bytes),
            ),
            (
                "spill_file_bytes".to_owned(),
                Json::UInt(self.spill_file_bytes),
            ),
            ("files_replayed".to_owned(), Json::UInt(self.files_replayed)),
            ("spill_write_us".to_owned(), dur_us(self.spill_write_time)),
            ("spill_read_us".to_owned(), dur_us(self.spill_read_time)),
            (
                "peak_in_flight_bytes".to_owned(),
                Json::UInt(self.peak_in_flight_bytes),
            ),
            (
                "pull_bypassed_supersteps".to_owned(),
                Json::UInt(self.pull_bypassed_supersteps),
            ),
            (
                "pull_bypassed_bytes".to_owned(),
                Json::UInt(self.pull_bypassed_bytes),
            ),
        ])
    }
}

/// Aggregate counters for a whole run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Number of supersteps executed, counting the final master-only
    /// superstep in which the master halts the computation.
    pub supersteps: u32,
    /// Total messages sent.
    pub total_messages: u64,
    /// Total serialized message bytes — the "network I/O" column of the
    /// paper, measured in a worker-count-independent way.
    pub total_message_bytes: u64,
    /// Messages that crossed a worker boundary.
    pub remote_messages: u64,
    /// Bytes that crossed a worker boundary (depends on worker count).
    pub remote_message_bytes: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Total vertex-kernel time (sum over supersteps of the slowest
    /// worker's kernel loop).
    pub compute_time: Duration,
    /// Total combining + metering time (sum of slowest-worker times).
    pub combine_time: Duration,
    /// Total message-exchange time (routing + parallel delivery).
    pub exchange_time: Duration,
    /// Total sequential master time, including the final master-only
    /// superstep in which the computation halts.
    pub master_time: Duration,
    /// Total barrier residual (dispatch + reply collection + waiting).
    pub barrier_time: Duration,
    /// Supersteps that ran gathered (pull) instead of pushed. Part of the
    /// structural contract: identical across worker counts and between
    /// uninterrupted and recovered runs.
    pub pull_supersteps: u32,
    /// Times consecutive executed supersteps changed direction
    /// (push→pull or pull→push); only `Schedule::Auto` produces nonzero
    /// values on programs with mixed phases.
    pub direction_switches: u32,
    /// Per-superstep breakdown, indexed by superstep number.
    pub per_superstep: Vec<SuperstepMetrics>,
    /// Checkpoint and recovery counters (all zero when checkpointing is
    /// disabled and no fault occurred).
    pub recovery: RecoveryStats,
    /// Message-spill counters (all zero when no message budget is set or
    /// the budget was never exceeded).
    pub spill: SpillStats,
}

impl Metrics {
    /// Folds one superstep's counters into the totals.
    pub(crate) fn record(&mut self, step: SuperstepMetrics) {
        self.total_messages += step.messages_sent;
        self.total_message_bytes += step.message_bytes;
        self.remote_messages += step.remote_messages;
        self.remote_message_bytes += step.remote_message_bytes;
        self.compute_time += step.compute_time;
        self.combine_time += step.combine_time;
        self.exchange_time += step.exchange_time;
        self.master_time += step.master_time;
        self.barrier_time += step.barrier_time;
        if step.pulled {
            self.pull_supersteps += 1;
        }
        if let Some(prev) = self.per_superstep.last() {
            if prev.pulled != step.pulled {
                self.direction_switches += 1;
            }
        }
        self.per_superstep.push(step);
    }

    /// Largest number of active vertices in any superstep.
    pub fn peak_active_vertices(&self) -> u32 {
        self.per_superstep
            .iter()
            .map(|s| s.active_vertices)
            .max()
            .unwrap_or(0)
    }

    /// The whole run as a JSON value: aggregate counters, phase totals in
    /// microseconds, and the per-superstep breakdown.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("supersteps".to_owned(), Json::UInt(self.supersteps as u64)),
            ("total_messages".to_owned(), Json::UInt(self.total_messages)),
            (
                "total_message_bytes".to_owned(),
                Json::UInt(self.total_message_bytes),
            ),
            (
                "remote_messages".to_owned(),
                Json::UInt(self.remote_messages),
            ),
            (
                "remote_message_bytes".to_owned(),
                Json::UInt(self.remote_message_bytes),
            ),
            (
                "peak_active_vertices".to_owned(),
                Json::UInt(self.peak_active_vertices() as u64),
            ),
            ("elapsed_us".to_owned(), dur_us(self.elapsed)),
            ("compute_us".to_owned(), dur_us(self.compute_time)),
            ("combine_us".to_owned(), dur_us(self.combine_time)),
            ("exchange_us".to_owned(), dur_us(self.exchange_time)),
            ("master_us".to_owned(), dur_us(self.master_time)),
            ("barrier_us".to_owned(), dur_us(self.barrier_time)),
            (
                "pull_supersteps".to_owned(),
                Json::UInt(self.pull_supersteps as u64),
            ),
            (
                "direction_switches".to_owned(),
                Json::UInt(self.direction_switches as u64),
            ),
            (
                "per_superstep".to_owned(),
                Json::Arr(
                    self.per_superstep
                        .iter()
                        .map(SuperstepMetrics::to_json_value)
                        .collect(),
                ),
            ),
            ("recovery".to_owned(), self.recovery.to_json_value()),
            ("spill".to_owned(), self.spill.to_json_value()),
        ])
    }

    /// [`Metrics::to_json_value`] serialized to a compact JSON string —
    /// the machine-readable artifact bench runs export via `--trace`.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }
}

/// Pre-registered handles into a [`MetricsRegistry`], created once per run
/// so the superstep loop records through lock-free atomics instead of
/// touching the registry's family table.
///
/// All counters are cumulative across runs sharing the registry (the
/// Prometheus contract — a scraping daemon serves many jobs from one
/// registry); gauges reflect the most recent superstep.
pub(crate) struct RegistryFeed {
    superstep_seconds: Histogram,
    master_seconds: Histogram,
    compute_seconds: Histogram,
    combine_seconds: Histogram,
    exchange_seconds: Histogram,
    barrier_seconds: Histogram,
    messages_total: Counter,
    message_bytes_total: Counter,
    remote_message_bytes_total: Counter,
    supersteps_push: Counter,
    supersteps_pull: Counter,
    direction_switches_total: Counter,
    spilled_message_bytes_total: Counter,
    checkpoints_ok: Counter,
    checkpoints_failed: Counter,
    active_vertices: Gauge,
    frontier_density: Gauge,
}

const PHASE_HELP: &str = "wall-clock seconds per BSP phase, one observation per superstep";

impl RegistryFeed {
    pub(crate) fn new(registry: &MetricsRegistry) -> Self {
        let phase = |name: &str| {
            registry.histogram_with("gm_phase_seconds", PHASE_HELP, &[("phase", name)])
        };
        RegistryFeed {
            superstep_seconds: registry.histogram(
                "gm_superstep_seconds",
                "wall-clock seconds per superstep (master through barrier)",
            ),
            master_seconds: phase("master"),
            compute_seconds: phase("compute"),
            combine_seconds: phase("combine"),
            exchange_seconds: phase("exchange"),
            barrier_seconds: phase("barrier"),
            messages_total: registry.counter("gm_messages_total", "messages sent"),
            message_bytes_total: registry
                .counter("gm_message_bytes_total", "serialized message bytes sent"),
            remote_message_bytes_total: registry.counter(
                "gm_remote_message_bytes_total",
                "message bytes that crossed a worker boundary",
            ),
            supersteps_push: registry.counter_with(
                "gm_supersteps_total",
                "supersteps executed, by message-movement direction",
                &[("direction", "push")],
            ),
            supersteps_pull: registry.counter_with(
                "gm_supersteps_total",
                "supersteps executed, by message-movement direction",
                &[("direction", "pull")],
            ),
            direction_switches_total: registry.counter(
                "gm_direction_switches_total",
                "consecutive supersteps that changed push/pull direction",
            ),
            spilled_message_bytes_total: registry.counter(
                "gm_spilled_message_bytes_total",
                "message bytes diverted to spill files by the resource budget",
            ),
            checkpoints_ok: registry.counter_with(
                "gm_checkpoints_total",
                "checkpoint snapshot writes, by result",
                &[("result", "ok")],
            ),
            checkpoints_failed: registry.counter_with(
                "gm_checkpoints_total",
                "checkpoint snapshot writes, by result",
                &[("result", "failed")],
            ),
            active_vertices: registry.gauge(
                "gm_active_vertices",
                "active vertices entering the next superstep",
            ),
            frontier_density: registry.gauge(
                "gm_frontier_density",
                "active vertices as a fraction of all vertices",
            ),
        }
    }

    /// Records one completed superstep. `wall` is the measured superstep
    /// wall-clock, `active` the frontier entering the next superstep, and
    /// `switched` whether the direction changed from the previous executed
    /// superstep.
    pub(crate) fn record_superstep(
        &self,
        step: &SuperstepMetrics,
        wall: Duration,
        active: u32,
        num_nodes: u32,
        spilled_bytes: u64,
        switched: bool,
    ) {
        self.superstep_seconds.observe(wall.as_secs_f64());
        self.master_seconds.observe(step.master_time.as_secs_f64());
        self.compute_seconds
            .observe(step.compute_time.as_secs_f64());
        self.combine_seconds
            .observe(step.combine_time.as_secs_f64());
        self.exchange_seconds
            .observe(step.exchange_time.as_secs_f64());
        self.barrier_seconds
            .observe(step.barrier_time.as_secs_f64());
        self.messages_total.add(step.messages_sent);
        self.message_bytes_total.add(step.message_bytes);
        self.remote_message_bytes_total
            .add(step.remote_message_bytes);
        if step.pulled {
            self.supersteps_pull.inc();
        } else {
            self.supersteps_push.inc();
        }
        if switched {
            self.direction_switches_total.inc();
        }
        self.spilled_message_bytes_total.add(spilled_bytes);
        self.active_vertices.set(f64::from(active));
        self.frontier_density
            .set(f64::from(active) / f64::from(num_nodes.max(1)));
    }

    /// Records one checkpoint write attempt.
    pub(crate) fn record_checkpoint(&self, ok: bool) {
        if ok {
            self.checkpoints_ok.inc();
        } else {
            self.checkpoints_failed.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = Metrics::default();
        m.record(SuperstepMetrics {
            active_vertices: 10,
            messages_sent: 5,
            message_bytes: 40,
            remote_messages: 2,
            remote_message_bytes: 16,
            compute_time: Duration::from_millis(3),
            combine_time: Duration::from_millis(1),
            exchange_time: Duration::from_millis(2),
            master_time: Duration::from_millis(1),
            barrier_time: Duration::from_millis(1),
            pulled: false,
        });
        m.record(SuperstepMetrics {
            active_vertices: 3,
            messages_sent: 1,
            message_bytes: 8,
            remote_messages: 0,
            remote_message_bytes: 0,
            compute_time: Duration::from_millis(2),
            ..Default::default()
        });
        assert_eq!(m.total_messages, 6);
        assert_eq!(m.total_message_bytes, 48);
        assert_eq!(m.remote_messages, 2);
        assert_eq!(m.remote_message_bytes, 16);
        assert_eq!(m.per_superstep.len(), 2);
        assert_eq!(m.peak_active_vertices(), 10);
        assert_eq!(m.compute_time, Duration::from_millis(5));
        assert_eq!(m.combine_time, Duration::from_millis(1));
        assert_eq!(m.exchange_time, Duration::from_millis(2));
        assert_eq!(m.master_time, Duration::from_millis(1));
        assert_eq!(m.barrier_time, Duration::from_millis(1));
        // phase_total includes the barrier residual.
        assert_eq!(m.per_superstep[0].phase_total(), Duration::from_millis(8));
    }

    #[test]
    fn to_json_exports_recovery_stats() {
        let m = Metrics {
            recovery: RecoveryStats {
                checkpoints_written: 3,
                checkpoint_failures: 1,
                snapshot_bytes: 4096,
                restores: 2,
                corrupt_snapshots_discarded: 1,
                restarts: 2,
                wasted_supersteps: 7,
                wasted_time: Duration::from_micros(900),
                checkpoint_time: Duration::from_micros(250),
                restore_time: Duration::from_micros(80),
            },
            spill: SpillStats {
                buckets_spilled: 6,
                spilled_message_bytes: 512,
                spill_file_bytes: 700,
                files_replayed: 6,
                spill_write_time: Duration::from_micros(40),
                spill_read_time: Duration::from_micros(30),
                peak_in_flight_bytes: 128,
                pull_bypassed_supersteps: 2,
                pull_bypassed_bytes: 256,
            },
            ..Metrics::default()
        };
        let doc = gm_obs::json::parse(&m.to_json()).expect("to_json output parses");
        let rec = doc.get("recovery").unwrap();
        assert_eq!(rec.get("checkpoints_written").unwrap().as_u64(), Some(3));
        assert_eq!(rec.get("checkpoint_failures").unwrap().as_u64(), Some(1));
        assert_eq!(rec.get("snapshot_bytes").unwrap().as_u64(), Some(4096));
        assert_eq!(rec.get("restores").unwrap().as_u64(), Some(2));
        assert_eq!(
            rec.get("corrupt_snapshots_discarded").unwrap().as_u64(),
            Some(1)
        );
        assert_eq!(rec.get("restarts").unwrap().as_u64(), Some(2));
        assert_eq!(rec.get("wasted_supersteps").unwrap().as_u64(), Some(7));
        assert_eq!(rec.get("wasted_us").unwrap().as_u64(), Some(900));
        assert_eq!(rec.get("checkpoint_us").unwrap().as_u64(), Some(250));
        assert_eq!(rec.get("restore_us").unwrap().as_u64(), Some(80));
        let spill = doc.get("spill").unwrap();
        assert_eq!(spill.get("buckets_spilled").unwrap().as_u64(), Some(6));
        assert_eq!(
            spill.get("spilled_message_bytes").unwrap().as_u64(),
            Some(512)
        );
        assert_eq!(spill.get("spill_file_bytes").unwrap().as_u64(), Some(700));
        assert_eq!(spill.get("files_replayed").unwrap().as_u64(), Some(6));
        assert_eq!(spill.get("spill_write_us").unwrap().as_u64(), Some(40));
        assert_eq!(spill.get("spill_read_us").unwrap().as_u64(), Some(30));
        assert_eq!(
            spill.get("peak_in_flight_bytes").unwrap().as_u64(),
            Some(128)
        );
    }

    #[test]
    fn to_json_exports_schedule_counters() {
        let mut m = Metrics::default();
        m.record(SuperstepMetrics {
            pulled: false,
            ..Default::default()
        });
        m.record(SuperstepMetrics {
            pulled: true,
            ..Default::default()
        });
        m.record(SuperstepMetrics {
            pulled: true,
            ..Default::default()
        });
        let doc = gm_obs::json::parse(&m.to_json()).unwrap();
        assert_eq!(doc.get("pull_supersteps").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("direction_switches").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn registry_feed_populates_per_phase_series() {
        let registry = MetricsRegistry::new();
        let feed = RegistryFeed::new(&registry);
        let step = SuperstepMetrics {
            messages_sent: 5,
            message_bytes: 40,
            compute_time: Duration::from_millis(2),
            master_time: Duration::from_millis(1),
            pulled: true,
            ..Default::default()
        };
        feed.record_superstep(&step, Duration::from_millis(4), 7, 100, 16, true);
        feed.record_checkpoint(true);
        feed.record_checkpoint(false);
        let text = registry.render_prometheus();
        assert!(text.contains("gm_superstep_seconds_bucket{le="));
        assert!(text.contains("gm_phase_seconds_bucket{phase=\"compute\",le="));
        assert!(text.contains("gm_supersteps_total{direction=\"pull\"} 1"));
        assert!(text.contains("gm_direction_switches_total 1"));
        assert!(text.contains("gm_spilled_message_bytes_total 16"));
        assert!(text.contains("gm_checkpoints_total{result=\"failed\"} 1"));
        assert!(text.contains("gm_active_vertices 7"));
        assert!(text.contains("gm_frontier_density 0.07"));
        assert!(text.contains("gm_message_bytes_total 40"));
    }

    #[test]
    fn peak_of_empty_run_is_zero() {
        assert_eq!(Metrics::default().peak_active_vertices(), 0);
    }

    #[test]
    fn to_json_exports_totals_and_breakdown() {
        let mut m = Metrics {
            supersteps: 2,
            elapsed: Duration::from_micros(1500),
            ..Metrics::default()
        };
        m.record(SuperstepMetrics {
            active_vertices: 4,
            messages_sent: 3,
            message_bytes: 24,
            compute_time: Duration::from_micros(100),
            barrier_time: Duration::from_micros(7),
            ..Default::default()
        });
        let text = m.to_json();
        let doc = gm_obs::json::parse(&text).expect("to_json output parses");
        assert_eq!(doc.get("supersteps").unwrap().as_u64(), Some(2));
        assert_eq!(doc.get("total_messages").unwrap().as_u64(), Some(3));
        assert_eq!(doc.get("elapsed_us").unwrap().as_u64(), Some(1500));
        assert_eq!(doc.get("barrier_us").unwrap().as_u64(), Some(7));
        let steps = doc.get("per_superstep").unwrap().as_arr().unwrap();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].get("active_vertices").unwrap().as_u64(), Some(4));
        assert_eq!(steps[0].get("compute_us").unwrap().as_u64(), Some(100));
        assert_eq!(steps[0].get("barrier_us").unwrap().as_u64(), Some(7));
    }
}
