//! Checkpoint configuration and the runtime ⇄ snapshot mapping.
//!
//! # What a snapshot contains
//!
//! A checkpoint taken "at superstep k" captures the BSP frontier at the
//! top of superstep k, *before* its master phase runs — exactly the state
//! a resumed run needs to re-enter the superstep loop at k:
//!
//! | section   | contents                                                    |
//! |-----------|-------------------------------------------------------------|
//! | `coord`   | active-vertex count, pending-message count, previous-superstep [`AggMap`], broadcast [`Globals`] |
//! | `master`  | opaque [`VertexProgram::save_master_state`] bytes           |
//! | `values`  | per-vertex values in vertex-id order                        |
//! | `halted`  | per-vertex halted flags in vertex-id order                  |
//! | `inbox`   | per-vertex undelivered message lists in vertex-id order     |
//! | `metrics` | accumulated [`Metrics`] (wall-clock durations included)     |
//!
//! The vertex-indexed sections are written in ascending vertex order (the
//! coordinator concatenates worker ranges in ascending worker order), so a
//! snapshot is **partition-independent**: a job checkpointed with one
//! worker count can resume with another. The only caveat is inherited from
//! the runtime's documented float semantics: floating-point `Sum`
//! aggregates are bit-reproducible only for a fixed worker count, so
//! exact-resume equivalence holds when the worker count is unchanged.
//!
//! Every section except `metrics` is byte-deterministic for identical runs
//! (metrics contain measured wall-clock durations); the determinism test
//! in `gm-algorithms` pins that property.
//!
//! [`VertexProgram::save_master_state`]: crate::VertexProgram::save_master_state

use std::path::PathBuf;
use std::time::Duration;

use crate::globals::{AggMap, Globals};
use crate::metrics::Metrics;
use crate::program::VertexProgram;
use gm_ckpt::{ByteReader, CkptError, Persist, Snapshot, SnapshotBuilder};
use gm_graph::Graph;

/// Section names of the snapshot container.
pub(crate) const SEC_COORD: &str = "coord";
pub(crate) const SEC_MASTER: &str = "master";
pub(crate) const SEC_VALUES: &str = "values";
pub(crate) const SEC_HALTED: &str = "halted";
pub(crate) const SEC_INBOX: &str = "inbox";
pub(crate) const SEC_METRICS: &str = "metrics";

/// Checkpointing configuration, attached to
/// [`PregelConfig::checkpoint`](crate::PregelConfig).
#[derive(Clone)]
pub struct CheckpointConfig {
    /// Snapshot interval in supersteps (must be ≥ 1): a snapshot is
    /// written at the top of every superstep `k` with `k % every == 0`,
    /// `k > 0`.
    pub every: u32,
    /// Directory holding the snapshot files (created if missing).
    pub dir: PathBuf,
    /// When `true`, [`run`](crate::run) scans `dir` before starting and
    /// resumes from the newest valid snapshot (falling back to a fresh
    /// start when none exists).
    pub resume: bool,
    /// Keep only the newest `keep` snapshots, pruning older ones after
    /// each write; `0` keeps everything.
    pub keep: usize,
    /// Called with the superstep number after each snapshot is durably
    /// written (and survived any post-write fault injection). `gmd`'s job
    /// journal hooks this to record `checkpointed` transitions; must not
    /// block for long — it runs on the coordinator thread between
    /// supersteps.
    pub on_write: Option<std::sync::Arc<dyn Fn(u32) + Send + Sync>>,
}

impl std::fmt::Debug for CheckpointConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointConfig")
            .field("every", &self.every)
            .field("dir", &self.dir)
            .field("resume", &self.resume)
            .field("keep", &self.keep)
            .field("on_write", &self.on_write.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every `every` supersteps.
    pub fn new(dir: impl Into<PathBuf>, every: u32) -> Self {
        CheckpointConfig {
            every,
            dir: dir.into(),
            resume: false,
            keep: 0,
            on_write: None,
        }
    }

    /// Sets whether the run resumes from the newest valid snapshot.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Keeps only the newest `keep` snapshots.
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }

    /// Registers a callback invoked after every durable snapshot write.
    pub fn with_on_write(mut self, f: impl Fn(u32) + Send + Sync + 'static) -> Self {
        self.on_write = Some(std::sync::Arc::new(f));
        self
    }
}

/// Retry policy for [`run_with_recovery`](crate::run_with_recovery).
#[derive(Clone, Debug)]
pub struct RecoveryPolicy {
    /// Maximum restarts after recoverable failures before giving up and
    /// returning the error.
    pub max_restarts: u32,
    /// Base delay between restarts; attempt `i` (1-based) sleeps
    /// `backoff × i` (linear backoff). Zero disables sleeping.
    pub backoff: Duration,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_restarts: 3,
            backoff: Duration::ZERO,
        }
    }
}

impl RecoveryPolicy {
    /// Policy with an explicit restart budget and no backoff.
    pub fn with_max_restarts(max_restarts: u32) -> Self {
        RecoveryPolicy {
            max_restarts,
            ..Self::default()
        }
    }
}

/// Coordinator-side state captured in the `coord` section.
pub(crate) struct CoordState {
    pub active_vertices: u32,
    pub pending_messages: u64,
    pub agg_prev: AggMap,
    pub globals: Globals,
}

pub(crate) fn encode_coord(coord: &CoordState) -> Vec<u8> {
    let mut out = Vec::new();
    coord.active_vertices.persist(&mut out);
    coord.pending_messages.persist(&mut out);
    coord.agg_prev.persist(&mut out);
    coord.globals.persist(&mut out);
    out
}

/// Everything [`run`](crate::run) needs to re-enter the superstep loop
/// where the snapshot left off. Vertex-indexed fields span the whole
/// graph; the runtime re-splits them across the current partition.
pub(crate) struct ResumeState<P: VertexProgram> {
    pub superstep: u32,
    pub coord: CoordState,
    pub metrics: Metrics,
    pub values: Vec<P::VertexValue>,
    pub halted: Vec<bool>,
    pub inboxes: Vec<Vec<P::Message>>,
}

/// Decodes a validated snapshot back into runtime state, restoring the
/// program's master state in the process. Fails if the snapshot was taken
/// for a different graph size or any section is malformed.
pub(crate) fn decode_snapshot<P>(
    snap: &Snapshot,
    graph: &Graph,
    program: &mut P,
) -> Result<ResumeState<P>, CkptError>
where
    P: VertexProgram,
    P::VertexValue: Persist,
    P::Message: Persist,
{
    let n = graph.num_nodes();
    if snap.num_nodes != n {
        return Err(CkptError::Decode(format!(
            "snapshot is for a {}-vertex graph, current graph has {n}",
            snap.num_nodes
        )));
    }
    let n = n as usize;

    let mut r = ByteReader::new(snap.require(SEC_COORD)?);
    let coord = CoordState {
        active_vertices: Persist::restore(&mut r)?,
        pending_messages: Persist::restore(&mut r)?,
        agg_prev: Persist::restore(&mut r)?,
        globals: Persist::restore(&mut r)?,
    };
    r.expect_end()?;

    let mut r = ByteReader::new(snap.require(SEC_VALUES)?);
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(P::VertexValue::restore(&mut r)?);
    }
    r.expect_end()?;

    let mut r = ByteReader::new(snap.require(SEC_HALTED)?);
    let mut halted = Vec::with_capacity(n);
    for _ in 0..n {
        halted.push(bool::restore(&mut r)?);
    }
    r.expect_end()?;

    let mut r = ByteReader::new(snap.require(SEC_INBOX)?);
    let mut inboxes = Vec::with_capacity(n);
    for _ in 0..n {
        inboxes.push(Vec::<P::Message>::restore(&mut r)?);
    }
    r.expect_end()?;

    let mut r = ByteReader::new(snap.require(SEC_MASTER)?);
    program.restore_master_state(&mut r)?;
    r.expect_end()?;

    let metrics = Metrics::from_bytes(snap.require(SEC_METRICS)?)?;

    Ok(ResumeState {
        superstep: snap.superstep,
        coord,
        metrics,
        values,
        halted,
        inboxes,
    })
}

/// Assembles the snapshot container from the coordinator state, the
/// worker-captured vertex sections (already concatenated in ascending
/// vertex order), the program's master bytes, and the metrics so far.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_snapshot(
    superstep: u32,
    num_nodes: u32,
    coord: &CoordState,
    master: Vec<u8>,
    values: Vec<u8>,
    halted: Vec<u8>,
    inbox: Vec<u8>,
    metrics: &Metrics,
) -> SnapshotBuilder {
    SnapshotBuilder::new(superstep, num_nodes)
        .section(SEC_COORD, encode_coord(coord))
        .section(SEC_MASTER, master)
        .section(SEC_VALUES, values)
        .section(SEC_HALTED, halted)
        .section(SEC_INBOX, inbox)
        .section(SEC_METRICS, metrics.to_bytes())
}
