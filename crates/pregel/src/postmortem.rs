//! Post-mortem bundles: self-contained crash-forensics directories.
//!
//! When a run configured with [`PostMortemConfig`] ends in a
//! [`PregelError`], the runtime dumps everything needed to explain the
//! failure *without re-running it* into a fresh bundle directory:
//!
//! * `MANIFEST.json` — schema version, creation time, the error's message
//!   and attribution (superstep / worker / vertex), the file list, and
//!   flight-recorder occupancy;
//! * `error.json` — the error in structured form;
//! * `config.json` — the effective [`PregelConfig`] (workers, schedule,
//!   budget, checkpointing) plus graph shape;
//! * `metrics.json` — the [`Metrics`] accumulated up to the failure,
//!   including the per-superstep breakdown;
//! * `trace.jsonl` — the last-N trace events retained by the
//!   [`FlightRecorder`] (present whenever post-mortems are enabled: the
//!   runtime tees a recorder behind any user tracer, or creates one when
//!   tracing is off);
//! * `prometheus.txt` — the metrics-registry exposition, when a registry
//!   is attached to the config.
//!
//! The returned error is wrapped in [`PregelError::PostMortem`], so the
//! bundle path travels with the failure to whoever logs it.
//!
//! [`PregelError::PostMortem`]: crate::PregelError::PostMortem

use crate::metrics::Metrics;
use crate::runtime::{failure_site, PregelConfig, PregelError, Schedule};
use gm_graph::Graph;
use gm_obs::json::Json;
use gm_obs::recorder::{FlightRecorder, DEFAULT_CAPACITY};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Environment variable enabling post-mortem bundles: the directory they
/// are written under.
pub const ENV_POST_MORTEM_DIR: &str = "GM_POST_MORTEM_DIR";
/// Environment variable overriding the flight-recorder ring capacity
/// (number of retained trace events, default 512).
pub const ENV_FLIGHT_RECORDER_EVENTS: &str = "GM_FLIGHT_RECORDER_EVENTS";
/// Environment variable capping the number of retained `bundle-*`
/// directories per bundle dir (oldest-first GC); `0` or unset keeps all.
pub const ENV_POST_MORTEM_KEEP: &str = "GM_POST_MORTEM_KEEP";

/// Configuration for crash forensics: where bundles go and how many trace
/// events the flight recorder retains.
#[derive(Clone, Debug)]
pub struct PostMortemConfig {
    /// Directory bundles are created under (one fresh subdirectory per
    /// failure). Created on demand.
    pub dir: PathBuf,
    /// Flight-recorder ring capacity in events.
    pub capacity: usize,
    /// Maximum `bundle-*` directories retained under `dir` (oldest
    /// removed first after each new bundle); `0` means unlimited. A
    /// long-lived daemon stuck in a quarantine loop would otherwise fill
    /// the disk one bundle per failure.
    pub keep: usize,
}

impl PostMortemConfig {
    /// Bundles under `dir` with the default ring capacity.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PostMortemConfig {
            dir: dir.into(),
            capacity: DEFAULT_CAPACITY,
            keep: 0,
        }
    }

    /// Overrides the flight-recorder capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Caps the number of retained bundle directories (`0` = unlimited).
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep;
        self
    }

    /// Reads `GM_POST_MORTEM_DIR` (and `GM_FLIGHT_RECORDER_EVENTS`);
    /// `None` when unset — the default is no post-mortem capture.
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var_os(ENV_POST_MORTEM_DIR)?;
        if dir.is_empty() {
            return None;
        }
        let mut pm = PostMortemConfig::new(PathBuf::from(dir));
        if let Some(cap) = std::env::var(ENV_FLIGHT_RECORDER_EVENTS)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            pm = pm.with_capacity(cap);
        }
        if let Some(keep) = std::env::var(ENV_POST_MORTEM_KEEP)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            pm = pm.with_keep(keep);
        }
        Some(pm)
    }
}

fn schedule_str(s: Schedule) -> &'static str {
    match s {
        Schedule::Push => "push",
        Schedule::Pull => "pull",
        Schedule::Auto => "auto",
    }
}

fn opt_u64(v: Option<u64>) -> Json {
    v.map(Json::UInt).unwrap_or(Json::Null)
}

fn error_json(error: &PregelError) -> Json {
    let (superstep, worker, vertex) = failure_site(error);
    Json::obj([
        ("message".to_owned(), Json::Str(error.to_string())),
        ("kind".to_owned(), Json::Str(error.kind().to_owned())),
        ("superstep".to_owned(), Json::UInt(superstep as u64)),
        (
            "worker".to_owned(),
            worker.map(|w| Json::UInt(w as u64)).unwrap_or(Json::Null),
        ),
        (
            "vertex".to_owned(),
            vertex.map(|v| Json::UInt(v as u64)).unwrap_or(Json::Null),
        ),
        ("recoverable".to_owned(), Json::Bool(error.is_recoverable())),
    ])
}

fn config_json(config: &PregelConfig, graph: &Graph) -> Json {
    let budget = Json::obj([
        (
            "max_message_bytes".to_owned(),
            opt_u64(config.budget.max_message_bytes),
        ),
        (
            "superstep_deadline_ms".to_owned(),
            opt_u64(
                config
                    .budget
                    .superstep_deadline
                    .map(|d| d.as_millis() as u64),
            ),
        ),
        (
            "max_resident_bytes".to_owned(),
            opt_u64(config.budget.max_resident_bytes),
        ),
        (
            "spill_dir".to_owned(),
            config
                .budget
                .spill_dir
                .as_ref()
                .map(|p| Json::Str(p.display().to_string()))
                .unwrap_or(Json::Null),
        ),
    ]);
    let checkpoint = match &config.checkpoint {
        None => Json::Null,
        Some(c) => Json::obj([
            ("every".to_owned(), Json::UInt(c.every as u64)),
            ("dir".to_owned(), Json::Str(c.dir.display().to_string())),
            ("resume".to_owned(), Json::Bool(c.resume)),
            ("keep".to_owned(), Json::UInt(c.keep as u64)),
        ]),
    };
    Json::obj([
        (
            "num_workers".to_owned(),
            Json::UInt(config.num_workers as u64),
        ),
        (
            "max_supersteps".to_owned(),
            Json::UInt(config.max_supersteps as u64),
        ),
        (
            "schedule".to_owned(),
            Json::Str(schedule_str(config.schedule).to_owned()),
        ),
        (
            "dense_threshold".to_owned(),
            Json::Num(config.dense_threshold),
        ),
        ("budget".to_owned(), budget),
        ("checkpoint".to_owned(), checkpoint),
        (
            "graph".to_owned(),
            Json::obj([
                ("nodes".to_owned(), Json::UInt(graph.num_nodes() as u64)),
                ("edges".to_owned(), Json::UInt(graph.num_edges().into())),
            ]),
        ),
    ])
}

/// Writes one post-mortem bundle and returns its directory.
///
/// Best-effort by design: the caller reports the original `PregelError`
/// either way, so any I/O failure here is returned for the caller to
/// swallow (a broken disk must not mask the real failure).
pub(crate) fn write_bundle(
    pm: &PostMortemConfig,
    error: &PregelError,
    config: &PregelConfig,
    graph: &Graph,
    metrics: &Metrics,
    recorder: Option<&FlightRecorder>,
) -> io::Result<PathBuf> {
    // Unique, sortable bundle names: wall-clock millis plus a process-wide
    // sequence number (two failures in the same millisecond stay distinct).
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let millis = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let bundle = pm.dir.join(format!("bundle-{millis}-{seq}"));
    std::fs::create_dir_all(&bundle)?;

    let mut files = vec!["MANIFEST.json", "error.json", "config.json", "metrics.json"];

    write_json(&bundle.join("error.json"), &error_json(error))?;
    write_json(&bundle.join("config.json"), &config_json(config, graph))?;
    std::fs::write(bundle.join("metrics.json"), metrics.to_json())?;

    let (retained, dropped) = match recorder {
        Some(rec) => {
            let events = rec.events();
            let mut out = String::new();
            for event in &events {
                out.push_str(&event.to_jsonl().to_string());
                out.push('\n');
            }
            std::fs::write(bundle.join("trace.jsonl"), out)?;
            files.push("trace.jsonl");
            (events.len() as u64, rec.dropped())
        }
        None => (0, 0),
    };

    if let Some(registry) = &config.registry {
        registry.write_prometheus(bundle.join("prometheus.txt"))?;
        files.push("prometheus.txt");
    }

    let (superstep, worker, _) = failure_site(error);
    let manifest = Json::obj([
        ("schema".to_owned(), Json::UInt(1)),
        ("created_unix_ms".to_owned(), Json::UInt(millis)),
        ("error".to_owned(), Json::Str(error.to_string())),
        ("kind".to_owned(), Json::Str(error.kind().to_owned())),
        ("superstep".to_owned(), Json::UInt(superstep as u64)),
        (
            "worker".to_owned(),
            worker.map(|w| Json::UInt(w as u64)).unwrap_or(Json::Null),
        ),
        (
            "files".to_owned(),
            Json::Arr(files.iter().map(|f| Json::Str((*f).to_owned())).collect()),
        ),
        (
            "trace_events".to_owned(),
            Json::obj([
                ("retained".to_owned(), Json::UInt(retained)),
                ("dropped".to_owned(), Json::UInt(dropped)),
            ]),
        ),
    ]);
    write_json(&bundle.join("MANIFEST.json"), &manifest)?;
    if pm.keep > 0 {
        // Best-effort retention: a GC hiccup must not mask the failure
        // the bundle documents.
        let _ = gc_bundles(&pm.dir, pm.keep);
    }
    Ok(bundle)
}

/// Removes the oldest `bundle-*` directories under `dir` until at most
/// `keep` remain. Age order is the numeric (millis, seq) encoded in the
/// bundle name, so retention is stable even when directory mtimes are
/// coarse.
fn gc_bundles(dir: &Path, keep: usize) -> io::Result<()> {
    let mut bundles: Vec<(u64, u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let name = entry.file_name();
        let Some(rest) = name.to_str().and_then(|n| n.strip_prefix("bundle-")) else {
            continue;
        };
        let Some((millis, seq)) = rest.split_once('-') else {
            continue;
        };
        let (Ok(millis), Ok(seq)) = (millis.parse::<u64>(), seq.parse::<u64>()) else {
            continue;
        };
        bundles.push((millis, seq, entry.path()));
    }
    if bundles.len() <= keep {
        return Ok(());
    }
    bundles.sort();
    let excess = bundles.len() - keep;
    for (_, _, path) in bundles.into_iter().take(excess) {
        std::fs::remove_dir_all(path)?;
    }
    Ok(())
}

fn write_json(path: &Path, value: &Json) -> io::Result<()> {
    let mut text = value.to_string();
    text.push('\n');
    std::fs::write(path, text)
}
