//! The BSP execution loop: partitioning, worker fan-out, message exchange.

use crate::globals::{AggMap, Globals};
use crate::metrics::{Metrics, SuperstepMetrics};
use crate::program::{MasterContext, MasterDecision, VertexContext, VertexProgram};
use gm_graph::{Graph, NodeId};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct PregelConfig {
    /// Number of simulated workers (≥ 1). Vertices are split into this many
    /// contiguous, edge-balanced ranges; with more than one worker the
    /// vertex phase runs on real threads.
    pub num_workers: usize,
    /// Safety limit on supersteps; exceeding it returns
    /// [`PregelError::SuperstepLimitExceeded`] instead of spinning forever.
    pub max_supersteps: u32,
}

impl Default for PregelConfig {
    fn default() -> Self {
        PregelConfig {
            num_workers: std::thread::available_parallelism()
                .map(|p| p.get().min(4))
                .unwrap_or(1),
            max_supersteps: 100_000,
        }
    }
}

impl PregelConfig {
    /// Single-threaded configuration, convenient for tests.
    pub fn sequential() -> Self {
        PregelConfig {
            num_workers: 1,
            ..Self::default()
        }
    }

    /// Configuration with an explicit worker count.
    pub fn with_workers(num_workers: usize) -> Self {
        PregelConfig {
            num_workers,
            ..Self::default()
        }
    }
}

/// Errors surfaced by [`run`].
#[derive(Debug)]
pub enum PregelError {
    /// The master never halted within the configured superstep budget.
    SuperstepLimitExceeded {
        /// The configured limit.
        limit: u32,
    },
    /// Invalid [`PregelConfig`] (e.g. zero workers).
    InvalidConfig(String),
}

impl fmt::Display for PregelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PregelError::SuperstepLimitExceeded { limit } => {
                write!(f, "superstep limit of {limit} exceeded without halting")
            }
            PregelError::InvalidConfig(msg) => write!(f, "invalid pregel config: {msg}"),
        }
    }
}

impl Error for PregelError {}

/// Output of [`run`]: final vertex values in id order plus metrics.
#[derive(Debug, Clone)]
pub struct PregelResult<V> {
    /// Final per-vertex state, indexed by vertex id.
    pub values: Vec<V>,
    /// Superstep, message and timing counters.
    pub metrics: Metrics,
}

/// Executes `program` on `graph` until the master halts.
///
/// `init` produces the initial value for each vertex.
///
/// # Errors
///
/// Returns [`PregelError::InvalidConfig`] for a zero worker count and
/// [`PregelError::SuperstepLimitExceeded`] if the program never halts.
///
/// # Determinism
///
/// For a fixed program, graph and seed the result is deterministic. Message
/// delivery order at each vertex is ascending in sender id regardless of
/// `num_workers`; integer and boolean aggregates are worker-count
/// independent, while floating-point `Sum` aggregates may differ across
/// worker counts by rounding (partial sums are merged in worker order).
pub fn run<P: VertexProgram + Sync>(
    graph: &Graph,
    program: &mut P,
    init: impl Fn(NodeId) -> P::VertexValue,
    config: &PregelConfig,
) -> Result<PregelResult<P::VertexValue>, PregelError> {
    if config.num_workers == 0 {
        return Err(PregelError::InvalidConfig("num_workers must be ≥ 1".into()));
    }
    let n = graph.num_nodes() as usize;
    let num_workers = config.num_workers.min(n.max(1));
    let starts = partition(graph, num_workers);

    let mut values: Vec<P::VertexValue> = graph.nodes().map(init).collect();
    let mut inbox: Vec<Vec<P::Message>> = (0..n).map(|_| Vec::new()).collect();
    let mut halted = vec![false; n];
    let mut globals = Globals::new();
    let mut agg_prev = AggMap::new();
    let mut metrics = Metrics::default();
    let start = Instant::now();

    let mut superstep: u32 = 0;
    loop {
        if superstep >= config.max_supersteps {
            return Err(PregelError::SuperstepLimitExceeded {
                limit: config.max_supersteps,
            });
        }

        let pending_messages: u64 = inbox.iter().map(|m| m.len() as u64).sum();
        let active_vertices = halted
            .iter()
            .zip(&inbox)
            .filter(|(h, msgs)| !**h || !msgs.is_empty())
            .count() as u32;

        let mut mctx = MasterContext {
            superstep,
            aggregates: &agg_prev,
            broadcast: &mut globals,
            num_nodes: graph.num_nodes(),
            active_vertices,
            pending_messages,
        };
        let decision = program.master_compute(&mut mctx);
        metrics.supersteps = superstep + 1;
        if decision == MasterDecision::Halt {
            break;
        }
        // Pregel's default termination: every vertex inactive, no messages.
        if active_vertices == 0 && pending_messages == 0 {
            break;
        }

        // ---- vertex phase ----
        let worker_outputs = run_vertex_phase(
            graph,
            &*program,
            &globals,
            &starts,
            superstep,
            &mut values,
            &mut inbox,
            &mut halted,
        );

        // ---- barrier: merge aggregates, exchange messages, meter ----
        let mut step = SuperstepMetrics::default();
        agg_prev = AggMap::new();
        let mut worker_outputs = worker_outputs;
        for out in &worker_outputs {
            agg_prev.merge(&out.agg);
            step.active_vertices += out.computed;
        }
        // Sender-side combining (Pregel's combiner API): fold same-
        // destination messages within each worker bucket before they hit
        // the wire. A stable sort keeps the per-destination order of
        // uncombinable messages intact.
        if program.has_combiner() {
            for out in &mut worker_outputs {
                for bucket in &mut out.outbox {
                    bucket.sort_by_key(|(dst, _)| *dst);
                    let drained = std::mem::take(bucket);
                    for (dst, m) in drained {
                        match bucket.last_mut() {
                            Some((prev_dst, prev)) if *prev_dst == dst => {
                                match program.combine(prev, &m) {
                                    Some(combined) => *prev = combined,
                                    None => bucket.push((dst, m)),
                                }
                            }
                            _ => bucket.push((dst, m)),
                        }
                    }
                }
            }
        }
        for (sender, out) in worker_outputs.iter().enumerate() {
            for (dest_w, bucket) in out.outbox.iter().enumerate() {
                for (dst, m) in bucket {
                    step.messages_sent += 1;
                    let bytes = program.message_bytes(m);
                    step.message_bytes += bytes;
                    if dest_w != sender {
                        step.remote_messages += 1;
                        step.remote_message_bytes += bytes;
                    }
                    inbox[*dst as usize].push(m.clone());
                }
            }
        }
        metrics.record(step);
        superstep += 1;
    }

    metrics.elapsed = start.elapsed();
    Ok(PregelResult { values, metrics })
}

/// Per-worker results of one vertex phase.
struct WorkerOutput<M> {
    outbox: Vec<Vec<(u32, M)>>,
    agg: AggMap,
    computed: u32,
}

/// Runs the vertex kernels, one worker per contiguous range, in parallel
/// when there is more than one worker.
#[allow(clippy::too_many_arguments)]
fn run_vertex_phase<P: VertexProgram + Sync>(
    graph: &Graph,
    program: &P,
    globals: &Globals,
    starts: &[u32],
    superstep: u32,
    values: &mut [P::VertexValue],
    inbox: &mut [Vec<P::Message>],
    halted: &mut [bool],
) -> Vec<WorkerOutput<P::Message>> {
    let num_workers = starts.len() - 1;

    // Split the per-vertex arrays into disjoint worker slices.
    let mut value_slices = Vec::with_capacity(num_workers);
    let mut inbox_slices = Vec::with_capacity(num_workers);
    let mut halted_slices = Vec::with_capacity(num_workers);
    {
        let (mut vs, mut ibs, mut hs) = (values, inbox, halted);
        for w in 0..num_workers {
            let len = (starts[w + 1] - starts[w]) as usize;
            let (v_head, v_tail) = vs.split_at_mut(len);
            let (i_head, i_tail) = ibs.split_at_mut(len);
            let (h_head, h_tail) = hs.split_at_mut(len);
            value_slices.push(v_head);
            inbox_slices.push(i_head);
            halted_slices.push(h_head);
            vs = v_tail;
            ibs = i_tail;
            hs = h_tail;
        }
    }

    let worker_body = |w: usize,
                       values: &mut [P::VertexValue],
                       inbox: &mut [Vec<P::Message>],
                       halted: &mut [bool]|
     -> WorkerOutput<P::Message> {
        let base = starts[w];
        let mut outbox: Vec<Vec<(u32, P::Message)>> =
            (0..num_workers).map(|_| Vec::new()).collect();
        let mut agg = AggMap::new();
        let mut computed = 0u32;
        for local in 0..values.len() {
            let msgs = std::mem::take(&mut inbox[local]);
            if halted[local] && msgs.is_empty() {
                continue;
            }
            halted[local] = false;
            computed += 1;
            let mut ctx = VertexContext {
                id: NodeId(base + local as u32),
                superstep,
                graph,
                broadcast: globals,
                agg: &mut agg,
                outbox: &mut outbox,
                range_starts: starts,
                halted: &mut halted[local],
            };
            program.vertex_compute(&mut ctx, &mut values[local], &msgs);
        }
        WorkerOutput {
            outbox,
            agg,
            computed,
        }
    };

    if num_workers == 1 {
        vec![worker_body(0, value_slices.remove(0), inbox_slices.remove(0), halted_slices.remove(0))]
    } else {
        let mut outputs: Vec<Option<WorkerOutput<P::Message>>> =
            (0..num_workers).map(|_| None).collect();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(num_workers);
            for (w, ((vs, ibs), hs)) in value_slices
                .into_iter()
                .zip(inbox_slices)
                .zip(halted_slices)
                .enumerate()
            {
                let body = &worker_body;
                handles.push(scope.spawn(move |_| (w, body(w, vs, ibs, hs))));
            }
            for h in handles {
                let (w, out) = h.join().expect("pregel worker panicked");
                outputs[w] = Some(out);
            }
        })
        .expect("pregel worker scope panicked");
        outputs.into_iter().map(|o| o.expect("worker output missing")).collect()
    }
}

/// Splits vertices into `num_workers` contiguous ranges balanced by
/// `1 + out_degree` weight. Returns `num_workers + 1` range starts.
fn partition(graph: &Graph, num_workers: usize) -> Vec<u32> {
    let n = graph.num_nodes();
    let total: u64 = n as u64 + graph.num_edges() as u64;
    let mut starts = Vec::with_capacity(num_workers + 1);
    starts.push(0u32);
    let mut acc: u64 = 0;
    let mut next_cut = 1;
    for v in 0..n {
        acc += 1 + graph.out_degree(NodeId(v)) as u64;
        while next_cut < num_workers && acc >= next_cut as u64 * total / num_workers as u64 {
            starts.push(v + 1);
            next_cut += 1;
        }
    }
    while starts.len() < num_workers {
        starts.push(n);
    }
    starts.push(n);
    debug_assert_eq!(starts.len(), num_workers + 1);
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{GlobalValue, ReduceOp};
    use gm_graph::gen;

    /// Sums all vertex ids into a global via aggregation, checks the master
    /// sees it next superstep.
    struct SumIds {
        observed: Option<i64>,
    }

    impl VertexProgram for SumIds {
        type VertexValue = ();
        type Message = ();

        fn message_bytes(&self, _m: &()) -> u64 {
            0
        }

        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            if ctx.superstep() == 1 {
                self.observed = Some(ctx.agg_or("S", GlobalValue::Int(0)).as_int());
                MasterDecision::Halt
            } else {
                MasterDecision::Continue
            }
        }

        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, ()>,
            _value: &mut (),
            _messages: &[()],
        ) {
            let id = ctx.id().0 as i64;
            ctx.reduce_global("S", ReduceOp::Sum, GlobalValue::Int(id));
        }
    }

    #[test]
    fn aggregates_reach_master_next_superstep() {
        let g = gen::path(10);
        for workers in [1, 2, 3, 4] {
            let mut p = SumIds { observed: None };
            let cfg = PregelConfig {
                num_workers: workers,
                max_supersteps: 10,
            };
            let r = run(&g, &mut p, |_| (), &cfg).unwrap();
            assert_eq!(p.observed, Some(45), "workers = {workers}");
            assert_eq!(r.metrics.supersteps, 2);
        }
    }

    /// Forwards a token along a path; vertex i receives it at superstep i.
    struct Token;

    impl VertexProgram for Token {
        type VertexValue = u32; // superstep at which the token arrived
        type Message = u64;

        fn message_bytes(&self, _m: &u64) -> u64 {
            8
        }

        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            // Run until nothing is active (everything votes to halt).
            let _ = ctx;
            MasterDecision::Continue
        }

        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, u64>,
            value: &mut u32,
            messages: &[u64],
        ) {
            let has_token = (ctx.superstep() == 0 && ctx.id().0 == 0) || !messages.is_empty();
            if has_token {
                *value = ctx.superstep();
                ctx.send_to_nbrs(ctx.superstep() as u64 + 1);
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn message_delivery_and_vote_to_halt() {
        let g = gen::path(6);
        let r = run(&g, &mut Token, |_| 0, &PregelConfig::sequential()).unwrap();
        for v in 0..6u32 {
            assert_eq!(r.values[v as usize], v);
        }
        // 5 messages of 8 bytes each.
        assert_eq!(r.metrics.total_messages, 5);
        assert_eq!(r.metrics.total_message_bytes, 40);
        // Natural halt once everything is quiet.
        assert!(r.metrics.supersteps >= 6);
    }

    /// Each vertex collects sender ids; checks delivery order is ascending
    /// by sender regardless of worker count.
    struct Collect;

    impl VertexProgram for Collect {
        type VertexValue = Vec<u32>;
        type Message = u32;

        fn message_bytes(&self, _m: &u32) -> u64 {
            4
        }

        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            if ctx.superstep() == 2 {
                MasterDecision::Halt
            } else {
                MasterDecision::Continue
            }
        }

        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, u32>,
            value: &mut Vec<u32>,
            messages: &[u32],
        ) {
            if ctx.superstep() == 0 {
                let id = ctx.id().0;
                ctx.send_to_nbrs(id);
            } else {
                value.extend_from_slice(messages);
            }
        }
    }

    #[test]
    fn delivery_order_is_sender_ascending_for_any_worker_count() {
        let g = gen::rmat(128, 512, 99);
        let baseline = run(&g, &mut Collect, |_| Vec::new(), &PregelConfig::sequential())
            .unwrap()
            .values;
        for v in &baseline {
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "not sorted: {v:?}");
        }
        for workers in [2, 3, 5, 8] {
            let cfg = PregelConfig {
                num_workers: workers,
                max_supersteps: 10,
            };
            let r = run(&g, &mut Collect, |_| Vec::new(), &cfg).unwrap();
            assert_eq!(r.values, baseline, "workers = {workers}");
        }
    }

    #[test]
    fn superstep_limit_is_enforced() {
        struct Forever;
        impl VertexProgram for Forever {
            type VertexValue = ();
            type Message = ();
            fn message_bytes(&self, _m: &()) -> u64 {
                0
            }
            fn master_compute(&mut self, _ctx: &mut MasterContext<'_>) -> MasterDecision {
                MasterDecision::Continue
            }
            fn vertex_compute(
                &self,
                _ctx: &mut VertexContext<'_, '_, ()>,
                _value: &mut (),
                _messages: &[()],
            ) {
            }
        }
        let g = gen::path(3);
        let cfg = PregelConfig {
            num_workers: 1,
            max_supersteps: 5,
        };
        let err = run(&g, &mut Forever, |_| (), &cfg).unwrap_err();
        assert!(matches!(err, PregelError::SuperstepLimitExceeded { limit: 5 }));
        assert!(err.to_string().contains("superstep limit"));
    }

    #[test]
    fn zero_workers_is_invalid() {
        let g = gen::path(3);
        let cfg = PregelConfig {
            num_workers: 0,
            max_supersteps: 5,
        };
        let err = run(&g, &mut Token, |_| 0, &cfg).unwrap_err();
        assert!(matches!(err, PregelError::InvalidConfig(_)));
    }

    #[test]
    fn empty_graph_runs() {
        let g = gen::path(0);
        let r = run(&g, &mut Token, |_| 0, &PregelConfig::default()).unwrap();
        assert!(r.values.is_empty());
    }

    #[test]
    fn partition_covers_all_vertices() {
        let g = gen::rmat(100, 1000, 5);
        for w in 1..10 {
            let starts = partition(&g, w);
            assert_eq!(starts.len(), w + 1);
            assert_eq!(starts[0], 0);
            assert_eq!(*starts.last().unwrap(), 100);
            assert!(starts.windows(2).all(|s| s[0] <= s[1]));
        }
    }

    #[test]
    fn remote_messages_depend_on_partition() {
        let g = gen::cycle(16);
        let r1 = run(&g, &mut Collect, |_| Vec::new(), &PregelConfig::sequential()).unwrap();
        assert_eq!(r1.metrics.remote_messages, 0);
        let cfg = PregelConfig {
            num_workers: 4,
            max_supersteps: 10,
        };
        let r4 = run(&g, &mut Collect, |_| Vec::new(), &cfg).unwrap();
        assert!(r4.metrics.remote_messages > 0);
        // Total counts are worker-independent.
        assert_eq!(r1.metrics.total_messages, r4.metrics.total_messages);
        assert_eq!(r1.metrics.total_message_bytes, r4.metrics.total_message_bytes);
    }
}
