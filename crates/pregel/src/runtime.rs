//! The BSP execution loop: partitioning, a persistent worker pool, and a
//! parallel zero-copy message exchange.
//!
//! # Execution architecture
//!
//! A run owns one [`WorkerState`] per worker: the worker's contiguous vertex
//! range (values, halted flags) plus a **double-buffered inbox**
//! (`inbox_in` / `inbox_out`). Each superstep proceeds in three phases:
//!
//! 1. **master** — the sequential master kernel runs on the coordinating
//!    thread with the previous superstep's merged aggregates.
//! 2. **compute + combine** — every worker runs its vertex kernels against
//!    `inbox_in`, routing outgoing messages into per-destination-worker
//!    buckets, then combines and meters those buckets locally. Each inbox
//!    slot is cleared (capacity retained) as it is consumed.
//! 3. **exchange** — each sender's buckets are routed to their destination
//!    workers (a worker-count-squared pointer move, no message is copied),
//!    and every destination worker *moves* the incoming messages into its
//!    `inbox_out` in ascending sender-worker order. The buffers are then
//!    swapped, so the next superstep's compute drains what was just
//!    delivered while delivery never aliases the inbox being read.
//!
//! With more than one worker, phases 2 and 3 run on a pool of threads that
//! persists for the whole run (workers park between phases on their job
//! channel); nothing is spawned per superstep. Aggregates and metrics are
//! produced per worker and merged at the barrier in ascending worker order,
//! which keeps every metric and floating-point aggregate identical to the
//! single-threaded execution order documented in [`run`].

use crate::checkpoint::{
    build_snapshot, decode_snapshot, CheckpointConfig, CoordState, RecoveryPolicy, ResumeState,
};
use crate::globals::{AggMap, Globals};
use crate::metrics::{Metrics, SuperstepMetrics};
use crate::program::{MasterContext, MasterDecision, VertexContext, VertexProgram};
use gm_ckpt::{ByteReader, CheckpointStore, CkptError, FaultPlan, Persist};
use gm_graph::{Graph, NodeId};
use gm_obs::{Category, Tracer};
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct PregelConfig {
    /// Number of workers (≥ 1). Vertices are split into this many
    /// contiguous, edge-balanced ranges; with more than one worker the
    /// vertex and exchange phases run on a persistent pool of threads.
    pub num_workers: usize,
    /// Safety limit on supersteps; exceeding it returns
    /// [`PregelError::SuperstepLimitExceeded`] instead of spinning forever.
    pub max_supersteps: u32,
    /// Optional trace destination. When set, the runtime emits structured
    /// per-worker, per-superstep events (phase spans, message and bucket
    /// counters, inbox high-water marks, compute-skew summaries) into it.
    /// When `None` — the default — instrumentation collapses to a single
    /// branch per phase, so the untraced hot path is unaffected.
    pub tracer: Option<Tracer>,
    /// Superstep-granular checkpointing. `None` (the default) disables
    /// snapshots entirely; see [`CheckpointConfig`] for interval, directory
    /// and resume semantics.
    pub checkpoint: Option<CheckpointConfig>,
    /// Deterministic fault injection for recovery testing. The default
    /// empty plan never trips and costs one atomic load per armed fault
    /// per phase (zero loads when empty).
    pub faults: FaultPlan,
    /// Retry policy for [`run_with_recovery`]; `None` makes it equivalent
    /// to a single [`run`] attempt. Plain [`run`] ignores this field.
    pub recovery: Option<RecoveryPolicy>,
}

impl Default for PregelConfig {
    fn default() -> Self {
        PregelConfig {
            // One worker per available core. Use `with_workers` to pin an
            // explicit count (e.g. the old behaviour of capping at 4).
            num_workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            max_supersteps: 100_000,
            tracer: None,
            checkpoint: None,
            faults: FaultPlan::none(),
            recovery: None,
        }
    }
}

impl PregelConfig {
    /// Single-threaded configuration, convenient for tests.
    pub fn sequential() -> Self {
        PregelConfig {
            num_workers: 1,
            ..Self::default()
        }
    }

    /// Configuration with an explicit worker count.
    pub fn with_workers(num_workers: usize) -> Self {
        PregelConfig {
            num_workers,
            ..Self::default()
        }
    }

    /// Attaches a trace destination.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Enables superstep-granular checkpointing.
    pub fn with_checkpoints(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Arms a fault-injection plan (testing only).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the retry policy used by [`run_with_recovery`].
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = Some(recovery);
        self
    }
}

/// Errors surfaced by [`run`] and [`run_with_recovery`].
#[derive(Debug)]
pub enum PregelError {
    /// The master never halted within the configured superstep budget.
    SuperstepLimitExceeded {
        /// The configured limit.
        limit: u32,
    },
    /// Invalid [`PregelConfig`] (e.g. zero workers, zero checkpoint
    /// interval).
    InvalidConfig(String),
    /// A worker thread panicked during the given superstep (a vertex
    /// kernel bug, or an injected fault). Recoverable: a supervisor can
    /// restart the job from the latest valid snapshot.
    WorkerPanicked {
        /// Superstep whose phase lost a worker.
        superstep: u32,
    },
    /// A checkpoint or resume operation failed in a way the run cannot
    /// proceed past (an unreadable mandatory snapshot section, a graph
    /// mismatch, or an I/O failure opening the checkpoint directory).
    /// Failed snapshot *writes* are not fatal and are only counted in
    /// [`RecoveryStats`](crate::RecoveryStats).
    Checkpoint(CkptError),
}

impl fmt::Display for PregelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PregelError::SuperstepLimitExceeded { limit } => {
                write!(f, "superstep limit of {limit} exceeded without halting")
            }
            PregelError::InvalidConfig(msg) => write!(f, "invalid pregel config: {msg}"),
            PregelError::WorkerPanicked { superstep } => {
                write!(f, "worker panicked during superstep {superstep}")
            }
            PregelError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl Error for PregelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PregelError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CkptError> for PregelError {
    fn from(e: CkptError) -> Self {
        PregelError::Checkpoint(e)
    }
}

/// Output of [`run`]: final vertex values in id order plus metrics.
#[derive(Debug, Clone)]
pub struct PregelResult<V> {
    /// Final per-vertex state, indexed by vertex id.
    pub values: Vec<V>,
    /// Superstep, message, phase-timing and byte counters.
    pub metrics: Metrics,
}

/// One worker's outgoing messages, bucketed by destination worker.
type RoutedOutbox<M> = Vec<Vec<(u32, M)>>;

/// One worker's incoming messages, one bucket per sender worker in
/// ascending sender order.
type IncomingBuckets<M> = Vec<Vec<(u32, M)>>;

/// Executes `program` on `graph` until the master halts.
///
/// `init` produces the initial value for each vertex.
///
/// # Checkpointing and resume
///
/// With [`PregelConfig::checkpoint`] set, the coordinator captures the
/// complete BSP frontier at the top of every `every`-th superstep and
/// writes it as a checksummed snapshot (see [`CheckpointConfig`]). When
/// the config additionally sets `resume`, the run first scans the
/// checkpoint directory and — if a valid snapshot exists — skips `init`
/// entirely and re-enters the superstep loop exactly where the snapshot
/// was taken; corrupt snapshots are discarded by checksum in favor of the
/// newest valid one. A resumed run continues as if uninterrupted: final
/// vertex values, superstep count, and message counters are identical to
/// a run that never stopped (for a fixed worker count; see Determinism).
///
/// # Errors
///
/// Returns [`PregelError::InvalidConfig`] for a zero worker count or zero
/// checkpoint interval, [`PregelError::SuperstepLimitExceeded`] if the
/// program never halts, [`PregelError::WorkerPanicked`] if a vertex
/// kernel (or injected fault) panics on a worker, and
/// [`PregelError::Checkpoint`] if a resume path cannot be completed.
///
/// # Determinism
///
/// For a fixed program, graph and seed the result is deterministic. Message
/// delivery order at each vertex is ascending in sender id regardless of
/// `num_workers`; integer and boolean aggregates are worker-count
/// independent. Floating-point `Sum` aggregates are reduced in vertex order
/// inside each worker and the per-worker partial sums are merged in
/// ascending worker order, so they are bit-reproducible for a fixed worker
/// count but may differ across worker counts by rounding (see
/// [`AggMap::merge`]).
pub fn run<P>(
    graph: &Graph,
    program: &mut P,
    init: impl Fn(NodeId) -> P::VertexValue,
    config: &PregelConfig,
) -> Result<PregelResult<P::VertexValue>, PregelError>
where
    P: VertexProgram + Send + Sync,
    P::VertexValue: Persist,
    P::Message: Persist,
{
    if config.num_workers == 0 {
        return Err(PregelError::InvalidConfig("num_workers must be ≥ 1".into()));
    }
    if let Some(c) = &config.checkpoint {
        if c.every == 0 {
            return Err(PregelError::InvalidConfig(
                "checkpoint interval must be ≥ 1".into(),
            ));
        }
    }
    let n = graph.num_nodes() as usize;
    let num_workers = config.num_workers.min(n.max(1));
    let starts = partition(graph, num_workers);
    let tracer = config.tracer.as_ref();

    // Resume path: locate and decode the newest valid snapshot before any
    // state is initialized. Also opens the store for checkpoint writes.
    let mut resume: Option<ResumeState<P>> = None;
    let mut ckpt: Option<CkptRunner> = None;
    if let Some(c) = &config.checkpoint {
        let store = CheckpointStore::create(&c.dir)?;
        let mut runner = CkptRunner {
            store,
            every: c.every,
            keep: c.keep,
            skip: None,
        };
        if c.resume {
            let restore_started = Instant::now();
            let restore_start_us = tracer.map(Tracer::now_us);
            if let Some(rec) = runner.store.latest_valid()? {
                let mut rs = decode_snapshot::<P>(&rec.snapshot, graph, program)?;
                rs.metrics.recovery.restores += 1;
                rs.metrics.recovery.corrupt_snapshots_discarded += rec.discarded;
                rs.metrics.recovery.restore_time += restore_started.elapsed();
                if let (Some(t), Some(ts)) = (tracer, restore_start_us) {
                    t.span_at(
                        "restore",
                        Category::Ckpt,
                        0,
                        ts,
                        restore_started.elapsed().as_micros() as u64,
                        vec![
                            ("superstep", rs.superstep.into()),
                            ("discarded", rec.discarded.into()),
                        ],
                    );
                }
                runner.skip = Some(rs.superstep);
                resume = Some(rs);
            } else if let Some(t) = tracer {
                // Nothing valid to resume from: start from scratch.
                t.instant("restore_empty", Category::Ckpt, 0, Vec::new());
            }
        }
        ckpt = Some(runner);
    }

    // Build worker states either from `init` or from the restored
    // vertex-indexed vectors, re-split across the current partition.
    let (mut states, globals, drive_init): (Vec<WorkerState<P>>, Globals, DriveInit) = match resume
    {
        None => (
            (0..num_workers)
                .map(|w| WorkerState::new(w, &starts, &init))
                .collect(),
            Globals::new(),
            DriveInit::fresh(graph.num_nodes()),
        ),
        Some(rs) => {
            let ResumeState {
                superstep,
                coord,
                metrics,
                mut values,
                mut halted,
                mut inboxes,
            } = rs;
            // Split the vertex-indexed vectors at the partition boundaries,
            // back to front so each split is O(tail).
            let mut states = Vec::with_capacity(num_workers);
            for w in (0..num_workers).rev() {
                let base = starts[w] as usize;
                states.push(WorkerState::from_restored(
                    w,
                    starts[w],
                    values.split_off(base),
                    halted.split_off(base),
                    inboxes.split_off(base),
                ));
            }
            states.reverse();
            let drive_init = DriveInit {
                superstep,
                active_vertices: coord.active_vertices,
                pending_messages: coord.pending_messages,
                agg_prev: coord.agg_prev,
                metrics,
            };
            (states, coord.globals, drive_init)
        }
    };

    let shared = Shared {
        graph,
        program: RwLock::new(program),
        globals: RwLock::new(globals),
        tracer: config.tracer.clone(),
        faults: config.faults.clone(),
    };

    if num_workers == 1 {
        // Inline execution on the calling thread; same phase structure,
        // no pool.
        let mut state = states.pop().expect("one worker state");
        let metrics = drive(
            &shared,
            &starts,
            config,
            drive_init,
            ckpt,
            |job| match job {
                PhaseJob::Compute {
                    superstep,
                    mut spares,
                } => {
                    let program = read_lock(&shared.program);
                    let globals = read_lock(&shared.globals);
                    let spare = spares.pop().unwrap_or_default();
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        state.compute_phase(
                            graph,
                            &**program,
                            &globals,
                            &starts,
                            superstep,
                            spare,
                            &shared.faults,
                            shared.tracer.as_ref(),
                        )
                    }))
                    .map_err(|_| PhasePanic)?;
                    Ok(PhaseResult::Computed(vec![out]))
                }
                PhaseJob::Deliver(mut incoming) => {
                    let buckets = incoming.pop().expect("single worker bucket set");
                    Ok(PhaseResult::Delivered(vec![
                        state.deliver_phase(buckets, shared.tracer.as_ref())
                    ]))
                }
                PhaseJob::Snapshot => Ok(PhaseResult::Snapshotted(vec![
                    state.snapshot_phase(shared.tracer.as_ref())
                ])),
            },
        )?;
        return Ok(PregelResult {
            values: state.values,
            metrics,
        });
    }

    // Persistent worker pool: one thread per worker for the whole run,
    // parked on its job channel between phases.
    std::thread::scope(|scope| {
        let (reply_tx, reply_rx) = mpsc::channel::<Reply<P::Message>>();
        let mut job_txs: Vec<mpsc::Sender<Job<P::Message>>> = Vec::with_capacity(num_workers);
        let mut handles = Vec::with_capacity(num_workers);
        let shared_ref = &shared;
        let starts_ref: &[u32] = &starts;
        for (w, state) in states.into_iter().enumerate() {
            let (job_tx, job_rx) = mpsc::channel::<Job<P::Message>>();
            let worker_reply_tx = reply_tx.clone();
            job_txs.push(job_tx);
            handles.push(scope.spawn(move || {
                worker_loop(w, state, shared_ref, starts_ref, job_rx, worker_reply_tx)
            }));
        }
        drop(reply_tx);

        let drive_result = drive(
            &shared,
            &starts,
            config,
            drive_init,
            ckpt,
            |job| match job {
                PhaseJob::Compute { superstep, spares } => {
                    let mut spares = spares.into_iter();
                    for tx in &job_txs {
                        let spare = spares.next().unwrap_or_default();
                        tx.send(Job::Compute { superstep, spare })
                            .map_err(|_| PhasePanic)?;
                    }
                    Ok(PhaseResult::Computed(collect_compute_replies(
                        &reply_rx,
                        num_workers,
                    )?))
                }
                PhaseJob::Deliver(incoming) => {
                    for (tx, buckets) in job_txs.iter().zip(incoming) {
                        tx.send(Job::Deliver { incoming: buckets })
                            .map_err(|_| PhasePanic)?;
                    }
                    Ok(PhaseResult::Delivered(collect_deliver_replies(
                        &reply_rx,
                        num_workers,
                    )?))
                }
                PhaseJob::Snapshot => {
                    for tx in &job_txs {
                        tx.send(Job::Snapshot).map_err(|_| PhasePanic)?;
                    }
                    Ok(PhaseResult::Snapshotted(collect_snapshot_replies(
                        &reply_rx,
                        num_workers,
                    )?))
                }
            },
        );

        // Shut the pool down and join every worker whether the run
        // succeeded or a worker died; no thread may outlive the scope.
        for tx in &job_txs {
            let _ = tx.send(Job::Finish);
        }
        let mut values = Vec::with_capacity(n);
        let mut join_panic = None;
        for handle in handles {
            match handle.join() {
                Ok(state) => values.extend(state.values),
                Err(panic) => join_panic = Some(panic),
            }
        }
        let metrics = drive_result?;
        if let Some(panic) = join_panic {
            // A panic escaped a worker's catch_unwind — not an injected or
            // kernel fault; re-raise it.
            std::panic::resume_unwind(panic);
        }
        Ok(PregelResult { values, metrics })
    })
}

/// Supervised execution: like [`run`], but on a recoverable failure
/// ([`PregelError::WorkerPanicked`]) the job is restarted — resuming from
/// the newest valid snapshot when checkpointing is configured, from scratch
/// otherwise — up to [`RecoveryPolicy::max_restarts`] times with linear
/// backoff. The program's master state is rolled back to its pre-run
/// baseline before each retry so the resume path replays it exactly.
///
/// With [`PregelConfig::recovery`] unset this is identical to [`run`].
/// The number of restarts taken is reported in
/// [`RecoveryStats::restarts`](crate::RecoveryStats::restarts).
pub fn run_with_recovery<P>(
    graph: &Graph,
    program: &mut P,
    init: impl Fn(NodeId) -> P::VertexValue,
    config: &PregelConfig,
) -> Result<PregelResult<P::VertexValue>, PregelError>
where
    P: VertexProgram + Send + Sync,
    P::VertexValue: Persist,
    P::Message: Persist,
{
    let Some(policy) = config.recovery.clone() else {
        return run(graph, program, &init, config);
    };
    // The master state must roll back together with the snapshot: a retry
    // that falls back to an older snapshot (or a fresh start) must not see
    // a master already mutated by the failed attempt.
    let mut baseline = Vec::new();
    program.save_master_state(&mut baseline);

    let mut config = config.clone();
    let mut attempt: u32 = 0;
    loop {
        match run(graph, program, &init, &config) {
            Ok(mut result) => {
                result.metrics.recovery.restarts += attempt;
                return Ok(result);
            }
            Err(PregelError::WorkerPanicked { superstep }) if attempt < policy.max_restarts => {
                attempt += 1;
                if let Some(t) = config.tracer.as_ref() {
                    t.instant(
                        "restart",
                        Category::Ckpt,
                        0,
                        vec![("attempt", attempt.into()), ("superstep", superstep.into())],
                    );
                }
                if !policy.backoff.is_zero() {
                    std::thread::sleep(policy.backoff * attempt);
                }
                let mut r = ByteReader::new(&baseline);
                program.restore_master_state(&mut r)?;
                // Retries resume from the newest valid snapshot.
                if let Some(c) = &mut config.checkpoint {
                    c.resume = true;
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Read-only state shared with the worker pool. The program sits behind a
/// lock because the master kernel needs `&mut P` between phases while the
/// workers read `&P` during them; the lock is only ever contended across
/// phase boundaries, never within one.
struct Shared<'a, P> {
    graph: &'a Graph,
    program: RwLock<&'a mut P>,
    globals: RwLock<Globals>,
    /// Trace destination, cloned out of the config; `None` disables all
    /// instrumentation at the cost of one branch per phase.
    tracer: Option<Tracer>,
    /// Fault-injection plan; the production default is empty and costs one
    /// slice iteration (over zero elements) per consultation.
    faults: FaultPlan,
}

fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// A phase dispatched by the BSP driver to its executor (inline or pool).
enum PhaseJob<M> {
    /// Run vertex kernels + combining for this superstep. `spares[w]` is
    /// worker `w`'s recycled outbox (empty buckets whose capacity was grown
    /// by earlier supersteps).
    Compute {
        superstep: u32,
        spares: Vec<RoutedOutbox<M>>,
    },
    /// Deliver routed buckets; `incoming[d]` is destination worker `d`'s
    /// bucket list in ascending sender order.
    Deliver(Vec<IncomingBuckets<M>>),
    /// Serialize every worker's vertex range (values, halted flags,
    /// pending inbox) for a checkpoint.
    Snapshot,
}

/// Executor response, worker-ordered.
enum PhaseResult<M> {
    Computed(Vec<ComputeOut<M>>),
    Delivered(Vec<DeliverOut<M>>),
    Snapshotted(Vec<SnapshotOut>),
}

/// Marker for a phase that lost a worker (a panicked kernel, an injected
/// fault, or a dead job channel); the driver converts it to
/// [`PregelError::WorkerPanicked`] at the failing superstep.
struct PhasePanic;

/// One worker's serialized vertex range, concatenated across workers (in
/// ascending worker order) into the snapshot's vertex-indexed sections.
struct SnapshotOut {
    values: Vec<u8>,
    halted: Vec<u8>,
    inbox: Vec<u8>,
}

/// Where the superstep loop starts: superstep 0 with everything active for
/// a fresh run, or the restored frontier for a resumed one.
struct DriveInit {
    superstep: u32,
    active_vertices: u32,
    pending_messages: u64,
    agg_prev: AggMap,
    metrics: Metrics,
}

impl DriveInit {
    fn fresh(num_nodes: u32) -> Self {
        DriveInit {
            superstep: 0,
            active_vertices: num_nodes,
            pending_messages: 0,
            agg_prev: AggMap::new(),
            metrics: Metrics::default(),
        }
    }
}

/// Coordinator-side checkpoint machinery for one run.
struct CkptRunner {
    store: CheckpointStore,
    every: u32,
    keep: usize,
    /// The superstep this run resumed at, whose snapshot (just read) must
    /// not be immediately rewritten.
    skip: Option<u32>,
}

/// The BSP superstep loop, common to the inline and pooled executors.
/// `phase` runs one phase across all workers and returns their outputs in
/// ascending worker order, or [`PhasePanic`] if a worker died.
fn drive<P, F>(
    shared: &Shared<'_, P>,
    starts: &[u32],
    config: &PregelConfig,
    init: DriveInit,
    mut ckpt: Option<CkptRunner>,
    mut phase: F,
) -> Result<Metrics, PregelError>
where
    P: VertexProgram,
    F: FnMut(PhaseJob<P::Message>) -> Result<PhaseResult<P::Message>, PhasePanic>,
{
    let num_workers = starts.len() - 1;
    let num_nodes = shared.graph.num_nodes();
    let tracer = shared.tracer.as_ref();
    let DriveInit {
        mut superstep,
        mut active_vertices,
        mut pending_messages,
        mut agg_prev,
        mut metrics,
    } = init;
    let start = Instant::now();

    // Empty outbox buckets recycled from the previous exchange, per sender.
    let mut spares: Vec<RoutedOutbox<P::Message>> = (0..num_workers).map(|_| Vec::new()).collect();

    loop {
        if superstep >= config.max_supersteps {
            return Err(PregelError::SuperstepLimitExceeded {
                limit: config.max_supersteps,
            });
        }

        // ---- checkpoint (coordinator + workers, before the master) ----
        // Taken at the top of the superstep so the snapshot is exactly the
        // state a resumed run needs to re-enter the loop here: `agg_prev`
        // still holds the previous superstep's aggregates and the inboxes
        // hold this superstep's undelivered messages.
        if let Some(ck) = &mut ckpt {
            if superstep > 0 && superstep % ck.every == 0 && ck.skip != Some(superstep) {
                let ckpt_start_us = tracer.map(Tracer::now_us);
                let ckpt_started = Instant::now();
                let outs = match phase(PhaseJob::Snapshot)
                    .map_err(|PhasePanic| PregelError::WorkerPanicked { superstep })?
                {
                    PhaseResult::Snapshotted(outs) => outs,
                    _ => unreachable!("executor answered snapshot with another phase"),
                };
                let (mut values, mut halted, mut inbox) = (Vec::new(), Vec::new(), Vec::new());
                for out in outs {
                    values.extend_from_slice(&out.values);
                    halted.extend_from_slice(&out.halted);
                    inbox.extend_from_slice(&out.inbox);
                }
                let mut master = Vec::new();
                read_lock(&shared.program).save_master_state(&mut master);
                let coord = CoordState {
                    active_vertices,
                    pending_messages,
                    agg_prev: agg_prev.clone(),
                    globals: read_lock(&shared.globals).clone(),
                };
                // The snapshot's metrics carry the wall-clock accumulated
                // so far, so a resumed run reports end-to-end totals.
                let mut snap_metrics = metrics.clone();
                snap_metrics.elapsed += start.elapsed();
                if shared.faults.trip_fail_checkpoint_write(superstep) {
                    metrics.recovery.checkpoint_failures += 1;
                    if let Some(t) = tracer {
                        t.instant(
                            "checkpoint_failed",
                            Category::Ckpt,
                            0,
                            vec![("superstep", superstep.into()), ("injected", true.into())],
                        );
                    }
                } else {
                    let builder = build_snapshot(
                        superstep,
                        num_nodes,
                        &coord,
                        master,
                        values,
                        halted,
                        inbox,
                        &snap_metrics,
                    );
                    match ck.store.write(&builder, superstep) {
                        Ok((path, bytes)) => {
                            metrics.recovery.checkpoints_written += 1;
                            metrics.recovery.snapshot_bytes += bytes;
                            if let Ok(Some(what)) =
                                shared.faults.corrupt_after_write(superstep, &path)
                            {
                                if let Some(t) = tracer {
                                    t.instant(
                                        "snapshot_corrupted",
                                        Category::Ckpt,
                                        0,
                                        vec![
                                            ("superstep", superstep.into()),
                                            ("what", what.into()),
                                        ],
                                    );
                                }
                            }
                            // A failed prune never fails the run.
                            let _ = ck.store.prune(ck.keep);
                            if let (Some(t), Some(ts)) = (tracer, ckpt_start_us) {
                                t.span_at(
                                    "checkpoint",
                                    Category::Ckpt,
                                    0,
                                    ts,
                                    ckpt_started.elapsed().as_micros() as u64,
                                    vec![("superstep", superstep.into()), ("bytes", bytes.into())],
                                );
                            }
                        }
                        Err(_) => {
                            // A failed snapshot write is not fatal — the run
                            // proceeds with one fewer recovery point.
                            metrics.recovery.checkpoint_failures += 1;
                            if let Some(t) = tracer {
                                t.instant(
                                    "checkpoint_failed",
                                    Category::Ckpt,
                                    0,
                                    vec![("superstep", superstep.into())],
                                );
                            }
                        }
                    }
                }
                metrics.recovery.checkpoint_time += ckpt_started.elapsed();
            }
        }

        // ---- master phase (sequential) ----
        let step_start_us = tracer.map(Tracer::now_us);
        let master_started = Instant::now();
        let decision = {
            let mut program = write_lock(&shared.program);
            let mut globals = write_lock(&shared.globals);
            let mut mctx = MasterContext {
                superstep,
                aggregates: &agg_prev,
                broadcast: &mut globals,
                num_nodes,
                active_vertices,
                pending_messages,
            };
            program.master_compute(&mut mctx)
        };
        let master_time = master_started.elapsed();
        metrics.supersteps = superstep + 1;
        if let (Some(t), Some(ts)) = (tracer, step_start_us) {
            t.span_at(
                "master",
                Category::Runtime,
                0,
                ts,
                master_time.as_micros() as u64,
                vec![("superstep", superstep.into())],
            );
        }
        // Explicit halt, or Pregel's default termination: every vertex
        // inactive and no messages in flight.
        if decision == MasterDecision::Halt || (active_vertices == 0 && pending_messages == 0) {
            metrics.master_time += master_time;
            if let Some(t) = tracer {
                t.instant(
                    "halt",
                    Category::Runtime,
                    0,
                    vec![
                        ("superstep", superstep.into()),
                        ("active", active_vertices.into()),
                        ("pending", pending_messages.into()),
                    ],
                );
            }
            break;
        }

        // ---- vertex + combine phase (parallel) ----
        let job = PhaseJob::Compute {
            superstep,
            spares: std::mem::take(&mut spares),
        };
        let computes =
            match phase(job).map_err(|PhasePanic| PregelError::WorkerPanicked { superstep })? {
                PhaseResult::Computed(outs) => outs,
                _ => unreachable!("executor answered compute with another phase"),
            };

        // ---- barrier: merge worker outputs in ascending worker order ----
        let mut step = SuperstepMetrics {
            master_time,
            ..SuperstepMetrics::default()
        };
        agg_prev = AggMap::new();
        let mut not_halted: u32 = 0;
        for out in &computes {
            agg_prev.merge(&out.agg);
            step.active_vertices += out.computed;
            not_halted += out.not_halted;
            step.messages_sent += out.messages_sent;
            step.message_bytes += out.message_bytes;
            step.remote_messages += out.remote_messages;
            step.remote_message_bytes += out.remote_message_bytes;
            step.compute_time = step.compute_time.max(out.compute_time);
            step.combine_time = step.combine_time.max(out.combine_time);
        }
        if let Some(t) = tracer {
            // Compute-skew summary: the barrier waits for the slowest
            // worker, so max/mean spread is wasted wall-clock.
            let max_us = step.compute_time.as_micros() as u64;
            let sum_us: u64 = computes
                .iter()
                .map(|o| o.compute_time.as_micros() as u64)
                .sum();
            let mean_us = sum_us / computes.len().max(1) as u64;
            t.counter(
                "compute_skew",
                Category::Runtime,
                vec![
                    ("superstep", superstep.into()),
                    ("max_us", max_us.into()),
                    ("mean_us", mean_us.into()),
                ],
            );
        }

        // ---- exchange phase: route buckets, deliver in parallel ----
        // The transpose moves whole buckets (sender → destination), never
        // individual messages; delivery below moves the messages once.
        let exchange_start_us = tracer.map(Tracer::now_us);
        let exchange_started = Instant::now();
        let mut incoming: Vec<IncomingBuckets<P::Message>> = (0..num_workers)
            .map(|_| Vec::with_capacity(num_workers))
            .collect();
        for out in computes {
            for (dest, bucket) in out.outbox.into_iter().enumerate() {
                incoming[dest].push(bucket);
            }
        }
        let delivers = match phase(PhaseJob::Deliver(incoming))
            .map_err(|PhasePanic| PregelError::WorkerPanicked { superstep })?
        {
            PhaseResult::Delivered(outs) => outs,
            _ => unreachable!("executor answered delivery with another phase"),
        };
        step.exchange_time = exchange_started.elapsed();
        if let (Some(t), Some(ts)) = (tracer, exchange_start_us) {
            t.span_at(
                "exchange",
                Category::Runtime,
                0,
                ts,
                step.exchange_time.as_micros() as u64,
                vec![
                    ("superstep", superstep.into()),
                    ("messages", step.messages_sent.into()),
                    ("remote", step.remote_messages.into()),
                ],
            );
        }

        pending_messages = 0;
        let mut reactivated: u32 = 0;
        spares = (0..num_workers)
            .map(|_| Vec::with_capacity(num_workers))
            .collect();
        for out in delivers {
            pending_messages += out.delivered;
            reactivated += out.reactivated;
            // Reverse transpose: destination `d` drained buckets from every
            // sender; hand each empty bucket back to its sender for reuse.
            for (sender, bucket) in out.spent.into_iter().enumerate() {
                spares[sender].push(bucket);
            }
        }
        active_vertices = not_halted + reactivated;

        // The residual between the measured superstep wall-clock and the
        // four metered phases: job dispatch, reply collection, and barrier
        // waiting. Saturating because the per-worker maxima of compute and
        // combine can land on different workers.
        let wall = master_started.elapsed();
        step.barrier_time = wall.saturating_sub(
            step.master_time + step.compute_time + step.combine_time + step.exchange_time,
        );
        if let (Some(t), Some(ts)) = (tracer, step_start_us) {
            t.span_at(
                "superstep",
                Category::Runtime,
                0,
                ts,
                wall.as_micros() as u64,
                vec![
                    ("superstep", superstep.into()),
                    ("computed", step.active_vertices.into()),
                    ("messages", step.messages_sent.into()),
                ],
            );
            t.counter(
                "active_vertices",
                Category::Runtime,
                vec![("active", active_vertices.into())],
            );
        }

        metrics.record(step);
        superstep += 1;
    }

    // `+=` so a resumed run accumulates on top of the restored elapsed.
    metrics.elapsed += start.elapsed();
    Ok(metrics)
}

/// Per-worker results of one compute + combine phase.
struct ComputeOut<M> {
    agg: AggMap,
    /// Vertices whose kernel ran.
    computed: u32,
    /// Vertices in this range left unhalted after the kernel ran.
    not_halted: u32,
    /// Outgoing messages, bucketed by destination worker, combined and
    /// metered.
    outbox: RoutedOutbox<M>,
    messages_sent: u64,
    message_bytes: u64,
    remote_messages: u64,
    remote_message_bytes: u64,
    compute_time: Duration,
    combine_time: Duration,
}

/// Per-worker results of one delivery phase.
struct DeliverOut<M> {
    /// Messages moved into this worker's inbox (next superstep's pending).
    delivered: u64,
    /// Halted vertices reactivated by a delivered message.
    reactivated: u32,
    /// Drained buckets (in sender order) handed back so their capacity can
    /// be recycled into the senders' next outboxes.
    spent: IncomingBuckets<M>,
}

/// Jobs sent to a pooled worker.
enum Job<M> {
    Compute {
        superstep: u32,
        spare: RoutedOutbox<M>,
    },
    Deliver {
        incoming: IncomingBuckets<M>,
    },
    Snapshot,
    Finish,
}

/// Replies from a pooled worker.
enum Reply<M> {
    Computed { worker: usize, out: ComputeOut<M> },
    Delivered { worker: usize, out: DeliverOut<M> },
    Snapshotted { worker: usize, out: SnapshotOut },
    Panicked,
}

fn collect_compute_replies<M>(
    reply_rx: &mpsc::Receiver<Reply<M>>,
    num_workers: usize,
) -> Result<Vec<ComputeOut<M>>, PhasePanic> {
    let mut outs: Vec<Option<ComputeOut<M>>> = (0..num_workers).map(|_| None).collect();
    for _ in 0..num_workers {
        match reply_rx.recv() {
            Ok(Reply::Computed { worker, out }) => outs[worker] = Some(out),
            Ok(Reply::Panicked) | Err(_) => return Err(PhasePanic),
            Ok(_) => unreachable!("mismatched reply during compute phase"),
        }
    }
    outs.into_iter().map(|o| o.ok_or(PhasePanic)).collect()
}

fn collect_deliver_replies<M>(
    reply_rx: &mpsc::Receiver<Reply<M>>,
    num_workers: usize,
) -> Result<Vec<DeliverOut<M>>, PhasePanic> {
    let mut outs: Vec<Option<DeliverOut<M>>> = (0..num_workers).map(|_| None).collect();
    for _ in 0..num_workers {
        match reply_rx.recv() {
            Ok(Reply::Delivered { worker, out }) => outs[worker] = Some(out),
            Ok(Reply::Panicked) | Err(_) => return Err(PhasePanic),
            Ok(_) => unreachable!("mismatched reply during delivery phase"),
        }
    }
    outs.into_iter().map(|o| o.ok_or(PhasePanic)).collect()
}

fn collect_snapshot_replies<M>(
    reply_rx: &mpsc::Receiver<Reply<M>>,
    num_workers: usize,
) -> Result<Vec<SnapshotOut>, PhasePanic> {
    let mut outs: Vec<Option<SnapshotOut>> = (0..num_workers).map(|_| None).collect();
    for _ in 0..num_workers {
        match reply_rx.recv() {
            Ok(Reply::Snapshotted { worker, out }) => outs[worker] = Some(out),
            Ok(Reply::Panicked) | Err(_) => return Err(PhasePanic),
            Ok(_) => unreachable!("mismatched reply during snapshot phase"),
        }
    }
    outs.into_iter().map(|o| o.ok_or(PhasePanic)).collect()
}

/// Body of a pooled worker thread: park on the job channel, execute phases
/// against the locally-owned state, return the state at shutdown so the
/// coordinator can assemble the final values.
fn worker_loop<P>(
    index: usize,
    mut state: WorkerState<P>,
    shared: &Shared<'_, P>,
    starts: &[u32],
    jobs: mpsc::Receiver<Job<P::Message>>,
    replies: mpsc::Sender<Reply<P::Message>>,
) -> WorkerState<P>
where
    P: VertexProgram + Send + Sync,
    P::VertexValue: Persist,
    P::Message: Persist,
{
    while let Ok(job) = jobs.recv() {
        let reply = match job {
            Job::Compute { superstep, spare } => {
                let out = catch_unwind(AssertUnwindSafe(|| {
                    let program = read_lock(&shared.program);
                    let globals = read_lock(&shared.globals);
                    state.compute_phase(
                        shared.graph,
                        &**program,
                        &globals,
                        starts,
                        superstep,
                        spare,
                        &shared.faults,
                        shared.tracer.as_ref(),
                    )
                }));
                match out {
                    Ok(out) => Reply::Computed { worker: index, out },
                    Err(_) => Reply::Panicked,
                }
            }
            Job::Deliver { incoming } => {
                let out = catch_unwind(AssertUnwindSafe(|| {
                    state.deliver_phase(incoming, shared.tracer.as_ref())
                }));
                match out {
                    Ok(out) => Reply::Delivered { worker: index, out },
                    Err(_) => Reply::Panicked,
                }
            }
            Job::Snapshot => {
                let out = catch_unwind(AssertUnwindSafe(|| {
                    state.snapshot_phase(shared.tracer.as_ref())
                }));
                match out {
                    Ok(out) => Reply::Snapshotted { worker: index, out },
                    Err(_) => Reply::Panicked,
                }
            }
            Job::Finish => break,
        };
        let panicked = matches!(reply, Reply::Panicked);
        if replies.send(reply).is_err() || panicked {
            break;
        }
    }
    state
}

/// A worker's share of the computation: a contiguous vertex range with its
/// values, halted flags, and double-buffered inboxes. Owned by one pool
/// thread for the whole run (or by the calling thread when single-worker).
struct WorkerState<P: VertexProgram> {
    index: usize,
    base: u32,
    values: Vec<P::VertexValue>,
    halted: Vec<bool>,
    /// Messages being consumed by this superstep's vertex kernels.
    inbox_in: Vec<Vec<P::Message>>,
    /// Messages delivered for the next superstep; swapped with `inbox_in`
    /// at the end of each delivery, retaining both buffers' capacity.
    inbox_out: Vec<Vec<P::Message>>,
}

impl<P: VertexProgram> WorkerState<P> {
    fn new(index: usize, starts: &[u32], init: &impl Fn(NodeId) -> P::VertexValue) -> Self {
        let base = starts[index];
        let len = (starts[index + 1] - base) as usize;
        WorkerState {
            index,
            base,
            values: (0..len).map(|i| init(NodeId(base + i as u32))).collect(),
            halted: vec![false; len],
            inbox_in: (0..len).map(|_| Vec::new()).collect(),
            inbox_out: (0..len).map(|_| Vec::new()).collect(),
        }
    }

    /// Rebuilds a worker's state from a snapshot's vertex-indexed slices.
    /// The restored inbox becomes `inbox_in`: it holds the messages the
    /// checkpointed superstep was about to consume.
    fn from_restored(
        index: usize,
        base: u32,
        values: Vec<P::VertexValue>,
        halted: Vec<bool>,
        inbox_in: Vec<Vec<P::Message>>,
    ) -> Self {
        let len = values.len();
        WorkerState {
            index,
            base,
            values,
            halted,
            inbox_in,
            inbox_out: (0..len).map(|_| Vec::new()).collect(),
        }
    }

    /// Serializes this worker's range for a checkpoint: values, halted
    /// flags, and the pending inbox, each in local vertex order.
    fn snapshot_phase(&self, tracer: Option<&Tracer>) -> SnapshotOut
    where
        P::VertexValue: Persist,
        P::Message: Persist,
    {
        let start_us = tracer.map(Tracer::now_us);
        let mut values = Vec::new();
        for v in &self.values {
            v.persist(&mut values);
        }
        let mut halted = Vec::new();
        for h in &self.halted {
            h.persist(&mut halted);
        }
        let mut inbox = Vec::new();
        for slot in &self.inbox_in {
            slot.persist(&mut inbox);
        }
        if let Some(t) = tracer {
            t.span(
                "snapshot",
                Category::Ckpt,
                self.index as u32 + 1,
                start_us.unwrap_or(0),
                vec![("bytes", (values.len() + halted.len() + inbox.len()).into())],
            );
        }
        SnapshotOut {
            values,
            halted,
            inbox,
        }
    }

    /// Runs the vertex kernels for this range, then combines and meters the
    /// routed outgoing buckets — all inside the worker.
    #[allow(clippy::too_many_arguments)] // one per phase input, all distinct
    fn compute_phase(
        &mut self,
        graph: &Graph,
        program: &P,
        globals: &Globals,
        starts: &[u32],
        superstep: u32,
        spare: RoutedOutbox<P::Message>,
        faults: &FaultPlan,
        tracer: Option<&Tracer>,
    ) -> ComputeOut<P::Message> {
        if faults.trip_panic_in_compute(superstep, self.index as u32) {
            panic!(
                "injected fault: compute panic at superstep {superstep} on worker {}",
                self.index
            );
        }
        let compute_start_us = tracer.map(Tracer::now_us);
        let compute_started = Instant::now();
        let num_workers = starts.len() - 1;
        // Recycled buckets from the previous exchange: empty, but with the
        // capacity earlier supersteps grew. Pad on the first superstep.
        let mut outbox = spare;
        outbox.resize_with(num_workers, Vec::new);
        debug_assert!(outbox.iter().all(|b| b.is_empty()));
        let mut agg = AggMap::new();
        let mut computed: u32 = 0;
        let mut voted_halt: u32 = 0;
        for local in 0..self.values.len() {
            if self.halted[local] && self.inbox_in[local].is_empty() {
                continue;
            }
            self.halted[local] = false;
            computed += 1;
            let mut ctx = VertexContext {
                id: NodeId(self.base + local as u32),
                superstep,
                graph,
                broadcast: globals,
                agg: &mut agg,
                outbox: &mut outbox,
                range_starts: starts,
                halted: &mut self.halted[local],
            };
            program.vertex_compute(&mut ctx, &mut self.values[local], &self.inbox_in[local]);
            if self.halted[local] {
                voted_halt += 1;
            }
            // Drain the slot but keep its capacity for the next delivery.
            self.inbox_in[local].clear();
        }
        let compute_time = compute_started.elapsed();

        // Sender-side combining (Pregel's combiner API): fold same-
        // destination messages within each bucket before they hit the wire.
        // A stable sort keeps the per-destination order of uncombinable
        // messages intact.
        let combine_start_us = tracer.map(Tracer::now_us);
        let combine_started = Instant::now();
        if program.has_combiner() {
            for bucket in &mut outbox {
                bucket.sort_by_key(|(dst, _)| *dst);
                let drained = std::mem::take(bucket);
                for (dst, m) in drained {
                    match bucket.last_mut() {
                        Some((prev_dst, prev)) if *prev_dst == dst => {
                            match program.combine(prev, &m) {
                                Some(combined) => *prev = combined,
                                None => bucket.push((dst, m)),
                            }
                        }
                        _ => bucket.push((dst, m)),
                    }
                }
            }
        }
        // Metering happens after combining (combined messages are what
        // would cross the wire), inside the worker.
        let mut messages_sent: u64 = 0;
        let mut message_bytes: u64 = 0;
        let mut remote_messages: u64 = 0;
        let mut remote_message_bytes: u64 = 0;
        for (dest_worker, bucket) in outbox.iter().enumerate() {
            for (_, m) in bucket {
                messages_sent += 1;
                let bytes = program.message_bytes(m);
                message_bytes += bytes;
                if dest_worker != self.index {
                    remote_messages += 1;
                    remote_message_bytes += bytes;
                }
            }
        }
        let combine_time = combine_started.elapsed();

        if let Some(t) = tracer {
            let tid = self.index as u32 + 1;
            let max_bucket = outbox.iter().map(Vec::len).max().unwrap_or(0);
            t.span_at(
                "compute",
                Category::Runtime,
                tid,
                compute_start_us.unwrap_or(0),
                compute_time.as_micros() as u64,
                vec![
                    ("superstep", superstep.into()),
                    ("computed", computed.into()),
                ],
            );
            t.span_at(
                "combine",
                Category::Runtime,
                tid,
                combine_start_us.unwrap_or(0),
                combine_time.as_micros() as u64,
                vec![
                    ("superstep", superstep.into()),
                    ("messages", messages_sent.into()),
                    ("bytes", message_bytes.into()),
                    ("remote", remote_messages.into()),
                    ("max_bucket", max_bucket.into()),
                ],
            );
        }

        ComputeOut {
            agg,
            computed,
            not_halted: computed - voted_halt,
            outbox,
            messages_sent,
            message_bytes,
            remote_messages,
            remote_message_bytes,
            compute_time,
            combine_time,
        }
    }

    /// Moves incoming messages into this worker's out-buffer inbox — zero
    /// clones on the exchange path — preserving ascending sender-worker
    /// order, then swaps the double buffer.
    fn deliver_phase(
        &mut self,
        mut incoming: IncomingBuckets<P::Message>,
        tracer: Option<&Tracer>,
    ) -> DeliverOut<P::Message> {
        let start_us = tracer.map(Tracer::now_us);
        let mut delivered: u64 = 0;
        let mut reactivated: u32 = 0;
        // Largest single inbox after delivery — the per-vertex memory
        // high-water mark. Only tracked when traced.
        let mut inbox_hwm: usize = 0;
        let traced = tracer.is_some();
        let base = self.base as usize;
        for bucket in &mut incoming {
            for (dst, m) in bucket.drain(..) {
                let local = dst as usize - base;
                if self.halted[local] && self.inbox_out[local].is_empty() {
                    reactivated += 1;
                }
                self.inbox_out[local].push(m);
                if traced {
                    inbox_hwm = inbox_hwm.max(self.inbox_out[local].len());
                }
                delivered += 1;
            }
        }
        if let Some(t) = tracer {
            t.span(
                "deliver",
                Category::Runtime,
                self.index as u32 + 1,
                start_us.unwrap_or(0),
                vec![
                    ("delivered", delivered.into()),
                    ("reactivated", reactivated.into()),
                    ("inbox_hwm", inbox_hwm.into()),
                ],
            );
        }
        // `inbox_in` was fully drained during the vertex phase; after the
        // swap it holds the next superstep's messages and the drained
        // buffer (capacity intact) becomes the next delivery target.
        std::mem::swap(&mut self.inbox_in, &mut self.inbox_out);
        DeliverOut {
            delivered,
            reactivated,
            // Hand the drained buckets back for outbox recycling.
            spent: incoming,
        }
    }
}

/// Splits vertices into `num_workers` contiguous ranges balanced by
/// `1 + out_degree` weight. Returns `num_workers + 1` range starts.
fn partition(graph: &Graph, num_workers: usize) -> Vec<u32> {
    let n = graph.num_nodes();
    let total: u64 = n as u64 + graph.num_edges() as u64;
    let mut starts = Vec::with_capacity(num_workers + 1);
    starts.push(0u32);
    let mut acc: u64 = 0;
    let mut next_cut = 1;
    for v in 0..n {
        acc += 1 + graph.out_degree(NodeId(v)) as u64;
        while next_cut < num_workers && acc >= next_cut as u64 * total / num_workers as u64 {
            starts.push(v + 1);
            next_cut += 1;
        }
    }
    while starts.len() < num_workers {
        starts.push(n);
    }
    starts.push(n);
    debug_assert_eq!(starts.len(), num_workers + 1);
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{GlobalValue, ReduceOp};
    use gm_graph::gen;

    /// Sums all vertex ids into a global via aggregation, checks the master
    /// sees it next superstep.
    struct SumIds {
        observed: Option<i64>,
    }

    impl VertexProgram for SumIds {
        type VertexValue = ();
        type Message = ();

        fn message_bytes(&self, _m: &()) -> u64 {
            0
        }

        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            if ctx.superstep() == 1 {
                self.observed = Some(ctx.agg_or("S", GlobalValue::Int(0)).as_int());
                MasterDecision::Halt
            } else {
                MasterDecision::Continue
            }
        }

        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, ()>,
            _value: &mut (),
            _messages: &[()],
        ) {
            let id = ctx.id().0 as i64;
            ctx.reduce_global("S", ReduceOp::Sum, GlobalValue::Int(id));
        }
    }

    #[test]
    fn aggregates_reach_master_next_superstep() {
        let g = gen::path(10);
        for workers in [1, 2, 3, 4] {
            let mut p = SumIds { observed: None };
            let cfg = PregelConfig {
                num_workers: workers,
                max_supersteps: 10,
                ..PregelConfig::default()
            };
            let r = run(&g, &mut p, |_| (), &cfg).unwrap();
            assert_eq!(p.observed, Some(45), "workers = {workers}");
            assert_eq!(r.metrics.supersteps, 2);
        }
    }

    /// Forwards a token along a path; vertex i receives it at superstep i.
    struct Token;

    impl VertexProgram for Token {
        type VertexValue = u32; // superstep at which the token arrived
        type Message = u64;

        fn message_bytes(&self, _m: &u64) -> u64 {
            8
        }

        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            // Run until nothing is active (everything votes to halt).
            let _ = ctx;
            MasterDecision::Continue
        }

        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, u64>,
            value: &mut u32,
            messages: &[u64],
        ) {
            let has_token = (ctx.superstep() == 0 && ctx.id().0 == 0) || !messages.is_empty();
            if has_token {
                *value = ctx.superstep();
                ctx.send_to_nbrs(ctx.superstep() as u64 + 1);
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn message_delivery_and_vote_to_halt() {
        let g = gen::path(6);
        let r = run(&g, &mut Token, |_| 0, &PregelConfig::sequential()).unwrap();
        for v in 0..6u32 {
            assert_eq!(r.values[v as usize], v);
        }
        // 5 messages of 8 bytes each.
        assert_eq!(r.metrics.total_messages, 5);
        assert_eq!(r.metrics.total_message_bytes, 40);
        // Natural halt once everything is quiet.
        assert!(r.metrics.supersteps >= 6);
    }

    #[test]
    fn vote_to_halt_semantics_match_across_worker_counts() {
        let g = gen::path(9);
        let base = run(&g, &mut Token, |_| 0, &PregelConfig::sequential()).unwrap();
        for workers in [2usize, 3, 5] {
            let r = run(&g, &mut Token, |_| 0, &PregelConfig::with_workers(workers)).unwrap();
            assert_eq!(r.values, base.values, "workers = {workers}");
            assert_eq!(r.metrics.supersteps, base.metrics.supersteps);
            assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
            // Per-superstep active counts are structural, too.
            let actives: Vec<u32> = r
                .metrics
                .per_superstep
                .iter()
                .map(|s| s.active_vertices)
                .collect();
            let base_actives: Vec<u32> = base
                .metrics
                .per_superstep
                .iter()
                .map(|s| s.active_vertices)
                .collect();
            assert_eq!(actives, base_actives, "workers = {workers}");
        }
    }

    /// Each vertex collects sender ids; checks delivery order is ascending
    /// by sender regardless of worker count.
    struct Collect;

    impl VertexProgram for Collect {
        type VertexValue = Vec<u32>;
        type Message = u32;

        fn message_bytes(&self, _m: &u32) -> u64 {
            4
        }

        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            if ctx.superstep() == 2 {
                MasterDecision::Halt
            } else {
                MasterDecision::Continue
            }
        }

        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, u32>,
            value: &mut Vec<u32>,
            messages: &[u32],
        ) {
            if ctx.superstep() == 0 {
                let id = ctx.id().0;
                ctx.send_to_nbrs(id);
            } else {
                value.extend_from_slice(messages);
            }
        }
    }

    #[test]
    fn delivery_order_is_sender_ascending_for_any_worker_count() {
        let g = gen::rmat(128, 512, 99);
        let baseline = run(
            &g,
            &mut Collect,
            |_| Vec::new(),
            &PregelConfig::sequential(),
        )
        .unwrap()
        .values;
        for v in &baseline {
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "not sorted: {v:?}");
        }
        for workers in [2, 3, 5, 8] {
            let cfg = PregelConfig {
                num_workers: workers,
                max_supersteps: 10,
                ..PregelConfig::default()
            };
            let r = run(&g, &mut Collect, |_| Vec::new(), &cfg).unwrap();
            assert_eq!(r.values, baseline, "workers = {workers}");
        }
    }

    #[test]
    fn per_phase_timing_is_metered() {
        let g = gen::rmat(256, 2048, 3);
        let cfg = PregelConfig {
            num_workers: 3,
            max_supersteps: 10,
            ..PregelConfig::default()
        };
        let r = run(&g, &mut Collect, |_| Vec::new(), &cfg).unwrap();
        assert!(r.metrics.compute_time > Duration::ZERO);
        assert!(r.metrics.exchange_time > Duration::ZERO);
        assert_eq!(
            r.metrics.per_superstep.len() as u32 + 1,
            r.metrics.supersteps
        );
        // Totals are the sums of the per-superstep entries.
        let exchange_sum: Duration = r
            .metrics
            .per_superstep
            .iter()
            .map(|s| s.exchange_time)
            .sum();
        assert_eq!(exchange_sum, r.metrics.exchange_time);
    }

    /// Pins the documented merge order for floating-point `Sum` aggregates:
    /// vertex order inside each worker, then ascending worker order across
    /// workers — bit-reproducible for a fixed worker count.
    #[test]
    fn float_sum_merges_partials_in_worker_order() {
        fn contribution(id: u32) -> f64 {
            // Magnitude-skewed terms make the sum rounding-sensitive, so
            // this would catch a merge-order change.
            match id {
                0 => 0.1,
                1 => 0.2,
                2 => 0.3,
                3 => 1e16,
                4 => 1.0,
                _ => -1e16,
            }
        }

        struct FloatSum {
            observed: Option<f64>,
        }

        impl VertexProgram for FloatSum {
            type VertexValue = ();
            type Message = ();

            fn message_bytes(&self, _m: &()) -> u64 {
                0
            }

            fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
                if ctx.superstep() == 1 {
                    self.observed = Some(ctx.agg_or("F", GlobalValue::Double(0.0)).as_double());
                    MasterDecision::Halt
                } else {
                    MasterDecision::Continue
                }
            }

            fn vertex_compute(
                &self,
                ctx: &mut VertexContext<'_, '_, ()>,
                _value: &mut (),
                _messages: &[()],
            ) {
                ctx.reduce_global(
                    "F",
                    ReduceOp::Sum,
                    GlobalValue::Double(contribution(ctx.id().0)),
                );
            }
        }

        let g = gen::path(6);
        for workers in [1usize, 2, 3] {
            let starts = partition(&g, workers);
            // Expected: per-worker partials folded in vertex order, merged
            // in ascending worker order.
            let mut expected: Option<f64> = None;
            for w in 0..workers {
                let mut partial: Option<f64> = None;
                for v in starts[w]..starts[w + 1] {
                    partial = Some(match partial {
                        None => contribution(v),
                        Some(p) => p + contribution(v),
                    });
                }
                if let Some(p) = partial {
                    expected = Some(match expected {
                        None => p,
                        Some(e) => e + p,
                    });
                }
            }
            let expected = expected.unwrap();
            // Reproducible across repeated runs at the same worker count.
            for _ in 0..2 {
                let mut p = FloatSum { observed: None };
                let cfg = PregelConfig {
                    num_workers: workers,
                    max_supersteps: 5,
                    ..PregelConfig::default()
                };
                run(&g, &mut p, |_| (), &cfg).unwrap();
                assert_eq!(
                    p.observed.unwrap().to_bits(),
                    expected.to_bits(),
                    "workers = {workers}"
                );
            }
        }
    }

    #[test]
    fn superstep_limit_is_enforced() {
        struct Forever;
        impl VertexProgram for Forever {
            type VertexValue = ();
            type Message = ();
            fn message_bytes(&self, _m: &()) -> u64 {
                0
            }
            fn master_compute(&mut self, _ctx: &mut MasterContext<'_>) -> MasterDecision {
                MasterDecision::Continue
            }
            fn vertex_compute(
                &self,
                _ctx: &mut VertexContext<'_, '_, ()>,
                _value: &mut (),
                _messages: &[()],
            ) {
            }
        }
        let g = gen::path(3);
        for workers in [1usize, 2] {
            let cfg = PregelConfig {
                num_workers: workers,
                max_supersteps: 5,
                ..PregelConfig::default()
            };
            let err = run(&g, &mut Forever, |_| (), &cfg).unwrap_err();
            assert!(matches!(
                err,
                PregelError::SuperstepLimitExceeded { limit: 5 }
            ));
            assert!(err.to_string().contains("superstep limit"));
        }
    }

    #[test]
    fn zero_workers_is_invalid() {
        let g = gen::path(3);
        let cfg = PregelConfig {
            num_workers: 0,
            max_supersteps: 5,
            ..PregelConfig::default()
        };
        let err = run(&g, &mut Token, |_| 0, &cfg).unwrap_err();
        assert!(matches!(err, PregelError::InvalidConfig(_)));
    }

    #[test]
    fn empty_graph_runs() {
        let g = gen::path(0);
        let r = run(&g, &mut Token, |_| 0, &PregelConfig::default()).unwrap();
        assert!(r.values.is_empty());
    }

    #[test]
    fn default_config_uses_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(PregelConfig::default().num_workers, cores);
        // The old capped behaviour remains expressible.
        assert_eq!(PregelConfig::with_workers(4).num_workers, 4);
    }

    #[test]
    fn partition_covers_all_vertices() {
        let g = gen::rmat(100, 1000, 5);
        for w in 1..10 {
            let starts = partition(&g, w);
            assert_eq!(starts.len(), w + 1);
            assert_eq!(starts[0], 0);
            assert_eq!(*starts.last().unwrap(), 100);
            assert!(starts.windows(2).all(|s| s[0] <= s[1]));
        }
    }

    #[test]
    fn remote_messages_depend_on_partition() {
        let g = gen::cycle(16);
        let r1 = run(
            &g,
            &mut Collect,
            |_| Vec::new(),
            &PregelConfig::sequential(),
        )
        .unwrap();
        assert_eq!(r1.metrics.remote_messages, 0);
        let cfg = PregelConfig {
            num_workers: 4,
            max_supersteps: 10,
            ..PregelConfig::default()
        };
        let r4 = run(&g, &mut Collect, |_| Vec::new(), &cfg).unwrap();
        assert!(r4.metrics.remote_messages > 0);
        // Total counts are worker-independent.
        assert_eq!(r1.metrics.total_messages, r4.metrics.total_messages);
        assert_eq!(
            r1.metrics.total_message_bytes,
            r4.metrics.total_message_bytes
        );
    }

    /// The in-memory tracer sees one span per worker per phase per
    /// superstep, coordinator events on tid 0, and a final halt marker —
    /// on both the inline (1 worker) and pooled executors.
    #[test]
    fn tracer_captures_per_worker_superstep_events() {
        let g = gen::rmat(128, 512, 7);
        for workers in [1usize, 2] {
            let (tracer, sink) = Tracer::in_memory();
            let cfg = PregelConfig {
                num_workers: workers,
                max_supersteps: 10,
                tracer: Some(tracer),
                ..PregelConfig::default()
            };
            let r = run(&g, &mut Collect, |_| Vec::new(), &cfg).unwrap();
            let events = sink.events();
            let count = |n: &str| events.iter().filter(|e| e.name == n).count();
            // Compute supersteps, excluding the final master-only halt step.
            let steps = (r.metrics.supersteps - 1) as usize;
            assert_eq!(count("superstep"), steps, "workers = {workers}");
            assert_eq!(count("master"), steps + 1);
            assert_eq!(count("exchange"), steps);
            assert_eq!(count("compute_skew"), steps);
            assert_eq!(count("halt"), 1);
            for name in ["compute", "combine", "deliver"] {
                assert_eq!(count(name), workers * steps, "{name}, workers = {workers}");
            }
            // Worker spans carry 1-based worker tids; coordinator events
            // stay on tid 0.
            assert!(events
                .iter()
                .filter(|e| e.name == "compute" || e.name == "deliver")
                .all(|e| e.tid >= 1 && e.tid as usize <= workers));
            assert!(events
                .iter()
                .filter(|e| e.name == "superstep" || e.name == "master")
                .all(|e| e.tid == 0));
            // With the barrier residual metered, phase_total() is at least
            // the sum of the four explicit phases.
            for s in &r.metrics.per_superstep {
                assert!(
                    s.phase_total()
                        >= s.compute_time + s.combine_time + s.exchange_time + s.master_time
                );
            }
        }
    }

    // ---- checkpointing / fault injection / recovery ----

    use crate::checkpoint::{CheckpointConfig, RecoveryPolicy};
    use gm_ckpt::{CheckpointStore, FaultPlan};

    fn fresh_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU32, Ordering};
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gm-pregel-ckpt-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Runs a fixed number of supersteps on a cycle, accumulating mutable
    /// master state (`total`) from an aggregate — so an exact resume must
    /// restore both vertex values and the master's memory.
    struct Rounds {
        total: i64,
    }

    impl VertexProgram for Rounds {
        type VertexValue = u32;
        type Message = u32;

        fn message_bytes(&self, _m: &u32) -> u64 {
            4
        }

        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            self.total += ctx.agg_or("n", GlobalValue::Int(0)).as_int();
            if ctx.superstep() == 8 {
                MasterDecision::Halt
            } else {
                MasterDecision::Continue
            }
        }

        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, u32>,
            value: &mut u32,
            messages: &[u32],
        ) {
            ctx.reduce_global("n", ReduceOp::Sum, GlobalValue::Int(1));
            *value += messages.iter().sum::<u32>();
            ctx.send_to_nbrs(1);
        }

        // Persist the master's accumulator so snapshots capture it.
        fn save_master_state(&self, out: &mut Vec<u8>) {
            self.total.persist(out);
        }

        fn restore_master_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CkptError> {
            self.total = Persist::restore(r)?;
            Ok(())
        }
    }

    impl Rounds {
        fn new() -> Self {
            Rounds { total: 0 }
        }

        fn baseline(workers: usize) -> (PregelResult<u32>, i64) {
            let g = gen::cycle(12);
            let mut p = Rounds::new();
            let r = run(&g, &mut p, |_| 0, &PregelConfig::with_workers(workers)).unwrap();
            (r, p.total)
        }
    }

    #[test]
    fn zero_checkpoint_interval_is_invalid() {
        let g = gen::cycle(4);
        let cfg = PregelConfig::sequential()
            .with_checkpoints(CheckpointConfig::new(fresh_dir("zero"), 0));
        let err = run(&g, &mut Rounds::new(), |_| 0, &cfg).unwrap_err();
        assert!(matches!(err, PregelError::InvalidConfig(_)));
    }

    #[test]
    fn injected_panic_surfaces_as_worker_panicked() {
        let g = gen::cycle(12);
        for workers in [1usize, 3] {
            let mut cfg = PregelConfig::with_workers(workers);
            cfg.faults = FaultPlan::builder().panic_in_compute(4, None).build();
            let err = run(&g, &mut Rounds::new(), |_| 0, &cfg).unwrap_err();
            assert!(
                matches!(err, PregelError::WorkerPanicked { superstep: 4 }),
                "workers = {workers}, got {err}"
            );
        }
    }

    #[test]
    fn resume_continues_exactly_where_snapshot_left_off() {
        let (base, base_total) = Rounds::baseline(2);
        let g = gen::cycle(12);
        let dir = fresh_dir("resume");

        // First attempt: checkpoint every 3 supersteps, die at superstep 5.
        let cfg = PregelConfig::with_workers(2)
            .with_checkpoints(CheckpointConfig::new(&dir, 3))
            .with_faults(FaultPlan::builder().panic_in_compute(5, None).build());
        let err = run(&g, &mut Rounds::new(), |_| 0, &cfg).unwrap_err();
        assert!(matches!(err, PregelError::WorkerPanicked { superstep: 5 }));
        let store = CheckpointStore::create(&dir).unwrap();
        assert_eq!(
            store.list().unwrap().len(),
            1,
            "one snapshot (superstep 3) before the fault"
        );

        // Second attempt: fresh program, resume from the snapshot.
        let cfg = PregelConfig::with_workers(2)
            .with_checkpoints(CheckpointConfig::new(&dir, 3).with_resume(true));
        let mut p = Rounds::new();
        let r = run(&g, &mut p, |_| 0, &cfg).unwrap();
        assert_eq!(r.values, base.values);
        assert_eq!(r.metrics.supersteps, base.metrics.supersteps);
        assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
        assert_eq!(
            r.metrics.total_message_bytes,
            base.metrics.total_message_bytes
        );
        assert_eq!(p.total, base_total, "master state must resume too");
        assert_eq!(r.metrics.recovery.restores, 1);
        // The resumed run checkpoints at superstep 6 (3 is skipped).
        assert_eq!(r.metrics.recovery.checkpoints_written, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_with_recovery_matches_uninterrupted_run() {
        for workers in [1usize, 2, 4] {
            let (base, base_total) = Rounds::baseline(workers);
            let g = gen::cycle(12);
            let dir = fresh_dir("supervised");
            let cfg = PregelConfig::with_workers(workers)
                .with_checkpoints(CheckpointConfig::new(&dir, 2))
                .with_faults(FaultPlan::builder().panic_in_compute(5, None).build())
                .with_recovery(RecoveryPolicy::with_max_restarts(2));
            let mut p = Rounds::new();
            let r = run_with_recovery(&g, &mut p, |_| 0, &cfg).unwrap();
            assert_eq!(r.values, base.values, "workers = {workers}");
            assert_eq!(r.metrics.supersteps, base.metrics.supersteps);
            assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
            assert_eq!(p.total, base_total);
            assert_eq!(r.metrics.recovery.restarts, 1);
            assert_eq!(r.metrics.recovery.restores, 1);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn corrupt_snapshot_is_discarded_in_favor_of_older_one() {
        let (base, base_total) = Rounds::baseline(2);
        let g = gen::cycle(12);
        let dir = fresh_dir("fallback");
        // Snapshot at 2 stays valid, snapshot at 4 is corrupted on disk,
        // then the job dies at superstep 5; recovery must fall back to 2.
        let cfg = PregelConfig::with_workers(2)
            .with_checkpoints(CheckpointConfig::new(&dir, 2))
            .with_faults(
                FaultPlan::builder()
                    .corrupt_snapshot(4)
                    .panic_in_compute(5, None)
                    .build(),
            )
            .with_recovery(RecoveryPolicy::with_max_restarts(1));
        let mut p = Rounds::new();
        let r = run_with_recovery(&g, &mut p, |_| 0, &cfg).unwrap();
        assert_eq!(r.values, base.values);
        assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
        assert_eq!(p.total, base_total);
        assert_eq!(r.metrics.recovery.corrupt_snapshots_discarded, 1);
        assert_eq!(r.metrics.recovery.restarts, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_failure_is_counted_not_fatal() {
        let g = gen::cycle(12);
        let dir = fresh_dir("wfail");
        let cfg = PregelConfig::sequential()
            .with_checkpoints(CheckpointConfig::new(&dir, 2))
            .with_faults(FaultPlan::builder().fail_checkpoint_write(2).build());
        let r = run(&g, &mut Rounds::new(), |_| 0, &cfg).unwrap();
        assert_eq!(r.metrics.recovery.checkpoint_failures, 1);
        // Supersteps 4, 6 and 8 still checkpointed.
        assert_eq!(r.metrics.recovery.checkpoints_written, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_without_checkpoints_restarts_from_scratch() {
        let (base, base_total) = Rounds::baseline(2);
        let g = gen::cycle(12);
        let cfg = PregelConfig::with_workers(2)
            .with_faults(FaultPlan::builder().panic_in_compute(5, None).build())
            .with_recovery(RecoveryPolicy::with_max_restarts(1));
        let mut p = Rounds::new();
        let r = run_with_recovery(&g, &mut p, |_| 0, &cfg).unwrap();
        assert_eq!(r.values, base.values);
        // The master state was rolled back before the retry, so `total` is
        // not double-counted.
        assert_eq!(p.total, base_total);
        assert_eq!(r.metrics.recovery.restarts, 1);
        assert_eq!(r.metrics.recovery.restores, 0);
    }

    #[test]
    fn snapshot_keep_prunes_older_files() {
        let g = gen::cycle(12);
        let dir = fresh_dir("keep");
        let cfg = PregelConfig::sequential()
            .with_checkpoints(CheckpointConfig::new(&dir, 2).with_keep(1));
        run(&g, &mut Rounds::new(), |_| 0, &cfg).unwrap();
        let store = CheckpointStore::create(&dir).unwrap();
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, 8, "only the newest snapshot survives");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
