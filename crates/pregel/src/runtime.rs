//! The BSP execution loop: partitioning, a persistent worker pool, and a
//! parallel zero-copy message exchange.
//!
//! # Execution architecture
//!
//! A run owns one [`WorkerState`] per worker: the worker's contiguous vertex
//! range (values, halted flags) plus a **double-buffered inbox**
//! (`inbox_in` / `inbox_out`). Each superstep proceeds in three phases:
//!
//! 1. **master** — the sequential master kernel runs on the coordinating
//!    thread with the previous superstep's merged aggregates.
//! 2. **compute + combine** — every worker runs its vertex kernels against
//!    `inbox_in`, routing outgoing messages into per-destination-worker
//!    buckets, then combines and meters those buckets locally. Each inbox
//!    slot is cleared (capacity retained) as it is consumed.
//! 3. **exchange** — each sender's buckets are routed to their destination
//!    workers (a worker-count-squared pointer move, no message is copied),
//!    and every destination worker *moves* the incoming messages into its
//!    `inbox_out` in ascending sender-worker order. The buffers are then
//!    swapped, so the next superstep's compute drains what was just
//!    delivered while delivery never aliases the inbox being read.
//!
//! With more than one worker, phases 2 and 3 run on a pool of threads that
//! persists for the whole run (workers park between phases on their job
//! channel); nothing is spawned per superstep. Aggregates and metrics are
//! produced per worker and merged at the barrier in ascending worker order,
//! which keeps every metric and floating-point aggregate identical to the
//! single-threaded execution order documented in [`run`].
//!
//! # Resource governance
//!
//! A [`ResourceBudget`] attached to the config bounds in-flight message
//! bytes (excess sealed buckets spill to disk and are replayed at
//! delivery — structurally invisible), superstep wall-clock (a cooperative
//! deadline watchdog), and resident value-store bytes. Worker failures of
//! every kind — kernel panics, spill I/O errors, deadline overruns — are
//! caught and surfaced as typed [`PregelError`] values carrying
//! superstep/worker/vertex context, which [`run_with_recovery`] feeds into
//! the checkpoint-restart policy (with quarantine for failures that
//! reproduce deterministically across the whole restart budget).

use crate::checkpoint::{
    build_snapshot, decode_snapshot, CheckpointConfig, CoordState, RecoveryPolicy, ResumeState,
};
use crate::globals::{AggMap, Globals};
use crate::govern::{read_spill_into, write_spill, Governor, ResourceBudget};
use crate::metrics::{Metrics, RegistryFeed, SuperstepMetrics};
use crate::postmortem::{write_bundle, PostMortemConfig};
use crate::program::{
    MasterContext, MasterDecision, PullMode, PullSink, VertexContext, VertexProgram,
};
use gm_ckpt::{ByteReader, CheckpointStore, CkptError, FaultPlan, Persist};
use gm_graph::{Graph, NodeId};
use gm_obs::metrics::MetricsRegistry;
use gm_obs::recorder::FlightRecorder;
use gm_obs::{Category, Tracer};
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Environment variable read by [`PregelConfig::default`] for the message
/// schedule: `"push"` (default), `"pull"`, or `"auto"`.
pub const ENV_SCHEDULE: &str = "GM_SCHEDULE";
/// Environment variable for [`PregelConfig::dense_threshold`], the
/// `Schedule::Auto` dense-frontier cutoff (a fraction of `|E|`).
pub const ENV_DENSE_THRESHOLD: &str = "GM_DENSE_THRESHOLD";

/// How each superstep's messages move: sender-push (the classic Pregel
/// exchange), receiver-pull (in-edge gather), or a per-superstep choice.
///
/// Pull and Auto require program cooperation: the program reports per
/// superstep whether its vertex phase can be gathered
/// ([`VertexProgram::pull_mode`]); supersteps that cannot always run push.
/// Both directions produce bit-identical values, supersteps, and message
/// metrics — the schedule is a pure execution-strategy knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Always push: vertices route messages, the exchange delivers them.
    Push,
    /// Gather every superstep the program supports. Programs with no
    /// pullable superstep at all are rejected up front with
    /// [`PregelError::NotPullable`].
    Pull,
    /// Ligra/GraphIt-style density heuristic, decided per superstep: pull
    /// when the active frontier's expected out-edges exceed
    /// [`PregelConfig::dense_threshold`] × `|E|`, push otherwise.
    Auto,
}

impl Schedule {
    /// Reads `GM_SCHEDULE`; unset or unrecognized values mean `Push`.
    fn from_env() -> Self {
        std::env::var(ENV_SCHEDULE)
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(Schedule::Push)
    }
}

impl std::str::FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            x if x.eq_ignore_ascii_case("push") => Ok(Schedule::Push),
            x if x.eq_ignore_ascii_case("pull") => Ok(Schedule::Pull),
            x if x.eq_ignore_ascii_case("auto") => Ok(Schedule::Auto),
            other => Err(format!("unknown schedule {other:?} (push|pull|auto)")),
        }
    }
}

/// Runtime configuration.
#[derive(Clone, Debug)]
pub struct PregelConfig {
    /// Number of workers (≥ 1). Vertices are split into this many
    /// contiguous, edge-balanced ranges; with more than one worker the
    /// vertex and exchange phases run on a persistent pool of threads.
    pub num_workers: usize,
    /// Safety limit on supersteps; exceeding it returns
    /// [`PregelError::SuperstepLimitExceeded`] instead of spinning forever.
    pub max_supersteps: u32,
    /// Optional trace destination. When set, the runtime emits structured
    /// per-worker, per-superstep events (phase spans, message and bucket
    /// counters, inbox high-water marks, compute-skew summaries) into it.
    /// When `None` — the default — instrumentation collapses to a single
    /// branch per phase, so the untraced hot path is unaffected.
    pub tracer: Option<Tracer>,
    /// Superstep-granular checkpointing. `None` (the default) disables
    /// snapshots entirely; see [`CheckpointConfig`] for interval, directory
    /// and resume semantics.
    pub checkpoint: Option<CheckpointConfig>,
    /// Deterministic fault injection for recovery testing. The default
    /// empty plan never trips and costs one atomic load per armed fault
    /// per phase (zero loads when empty).
    pub faults: FaultPlan,
    /// Retry policy for [`run_with_recovery`]; `None` makes it equivalent
    /// to a single [`run`] attempt. Plain [`run`] ignores this field.
    pub recovery: Option<RecoveryPolicy>,
    /// Resource limits: in-flight message bytes (spill-to-disk past the
    /// budget), superstep wall-clock, resident value-store bytes. The
    /// default is read from the environment
    /// ([`ResourceBudget::from_env`]), unbounded when the variables are
    /// unset.
    pub budget: ResourceBudget,
    /// Push/pull/auto message-movement strategy. The default is read from
    /// `GM_SCHEDULE` (push when unset).
    pub schedule: Schedule,
    /// `Schedule::Auto` cutoff: a superstep gathers when
    /// `active_vertices × avg_degree > dense_threshold × |E|`. The default
    /// is read from `GM_DENSE_THRESHOLD`, falling back to `0.05`.
    pub dense_threshold: f64,
    /// Crash forensics: when set, the runtime tees a bounded
    /// [`FlightRecorder`] behind the tracer (creating a recorder-only
    /// tracer when tracing is off) and, should the run end in a
    /// [`PregelError`], dumps the recent trace events together with config,
    /// metrics, and superstep counters into a fresh post-mortem bundle
    /// directory — the returned error then carries the bundle path
    /// ([`PregelError::PostMortem`]). The default is read from
    /// `GM_POST_MORTEM_DIR` ([`PostMortemConfig::from_env`]), off when
    /// unset.
    pub post_mortem: Option<PostMortemConfig>,
    /// Production metrics: when set, the runtime feeds this registry per
    /// superstep (phase-latency histograms, message/spill counters,
    /// frontier gauges, direction and recovery counts) so it can be scraped
    /// over HTTP or written as Prometheus text exposition while the job
    /// runs. One registry may be shared across many runs; counters
    /// accumulate.
    pub registry: Option<Arc<MetricsRegistry>>,
    /// Cooperative cancellation: when set, the coordinator checks this
    /// flag at the top of every superstep and aborts the run with
    /// [`PregelError::Cancelled`] once it is `true`. Long-lived hosts (the
    /// `gmd` daemon's drain path) share one token across jobs to stop
    /// stragglers at a superstep boundary instead of killing the process.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl Default for PregelConfig {
    fn default() -> Self {
        PregelConfig {
            // One worker per available core. Use `with_workers` to pin an
            // explicit count (e.g. the old behaviour of capping at 4).
            num_workers: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
            max_supersteps: 100_000,
            tracer: None,
            checkpoint: None,
            faults: FaultPlan::none(),
            recovery: None,
            budget: ResourceBudget::from_env(),
            schedule: Schedule::from_env(),
            dense_threshold: std::env::var(ENV_DENSE_THRESHOLD)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(0.05),
            post_mortem: PostMortemConfig::from_env(),
            registry: None,
            cancel: None,
        }
    }
}

impl PregelConfig {
    /// Single-threaded configuration, convenient for tests.
    pub fn sequential() -> Self {
        PregelConfig {
            num_workers: 1,
            ..Self::default()
        }
    }

    /// Configuration with an explicit worker count.
    pub fn with_workers(num_workers: usize) -> Self {
        PregelConfig {
            num_workers,
            ..Self::default()
        }
    }

    /// Attaches a trace destination.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Enables superstep-granular checkpointing.
    pub fn with_checkpoints(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// Arms a fault-injection plan (testing only).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the retry policy used by [`run_with_recovery`].
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Replaces the resource budget (the default is read from the
    /// environment).
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the push/pull/auto schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the `Schedule::Auto` dense-frontier threshold.
    pub fn with_dense_threshold(mut self, threshold: f64) -> Self {
        self.dense_threshold = threshold;
        self
    }

    /// Enables post-mortem bundles (flight recorder + crash dump).
    pub fn with_post_mortem(mut self, post_mortem: PostMortemConfig) -> Self {
        self.post_mortem = Some(post_mortem);
        self
    }

    /// Attaches a metrics registry fed per superstep.
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Attaches a cooperative cancellation token, checked at every
    /// superstep boundary.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

/// Errors surfaced by [`run`] and [`run_with_recovery`].
#[derive(Debug)]
pub enum PregelError {
    /// The master never halted within the configured superstep budget.
    SuperstepLimitExceeded {
        /// The configured limit.
        limit: u32,
    },
    /// Invalid [`PregelConfig`] (e.g. zero workers, zero checkpoint
    /// interval, zero superstep deadline).
    InvalidConfig(String),
    /// [`Schedule::Pull`] was requested for a program that reports no
    /// pullable vertex phase at all ([`VertexProgram::pull_supported`] is
    /// `false`). Refusing up front is the contract: silently running push
    /// would ignore the schedule, and gathering anyway would compute wrong
    /// answers. Not recoverable — retrying cannot make a program pullable.
    NotPullable {
        /// Why the program cannot be gathered.
        detail: String,
    },
    /// A worker thread panicked during the given superstep (a vertex
    /// kernel bug, or an injected fault). Recoverable: a supervisor can
    /// restart the job from the latest valid snapshot.
    WorkerPanicked {
        /// Superstep whose phase lost a worker.
        superstep: u32,
        /// The worker that panicked; `None` when the worker died without
        /// reporting (its job channel closed).
        worker: Option<u32>,
        /// The vertex whose kernel was running, when the panic struck
        /// inside the vertex loop.
        vertex: Option<u32>,
        /// The panic payload (or a placeholder for non-string payloads).
        detail: String,
    },
    /// A superstep overran [`ResourceBudget::superstep_deadline`]. The
    /// watchdog is cooperative — workers check between vertex kernels and
    /// delivery buckets, the coordinator at the barrier — so a hung phase
    /// becomes this error instead of a wedged barrier. Recoverable.
    DeadlineExceeded {
        /// Superstep that overran.
        superstep: u32,
        /// The worker that tripped the check; `None` when the coordinator
        /// caught it at the barrier.
        worker: Option<u32>,
        /// The configured deadline.
        deadline: Duration,
    },
    /// A resource budget other than the spillable message budget was
    /// exhausted (currently: the resident value-store estimate).
    /// Recoverable, though a deterministic overrun will quarantine.
    BudgetExceeded {
        /// Superstep at whose barrier the check failed.
        superstep: u32,
        /// Which budget ("resident value-store bytes").
        what: &'static str,
        /// Estimated usage at the check.
        used: u64,
        /// The configured limit.
        budget: u64,
    },
    /// A message-spill file could not be written or replayed (I/O error,
    /// checksum mismatch, or injected fault). Recoverable: the restart
    /// re-executes from the latest snapshot with fresh spill files.
    SpillFailed {
        /// Superstep whose exchange lost the bucket.
        superstep: u32,
        /// Worker that performed the failing spill operation.
        worker: u32,
        /// `"write"` or `"read"`.
        op: &'static str,
        /// The underlying codec/IO error.
        source: CkptError,
    },
    /// A recoverable failure reproduced identically on every attempt until
    /// the restart budget ran out — a deterministically-poisoned vertex or
    /// a sticky resource overrun. Restarting again would loop forever, so
    /// the supervisor aborts with the failure's context instead.
    Quarantined {
        /// Superstep of the repeated failure.
        superstep: u32,
        /// Worker of the repeated failure, when attributed.
        worker: Option<u32>,
        /// Vertex of the repeated failure, when attributed.
        vertex: Option<u32>,
        /// Total attempts made (initial run + restarts).
        attempts: u32,
        /// Rendered form of the repeated underlying error.
        detail: String,
    },
    /// The run was cancelled through [`PregelConfig::cancel`] — the
    /// coordinator saw the token at a superstep boundary and stopped. Not
    /// recoverable: the host asked for the job to end, so a supervisor
    /// restarting it would defeat the point.
    Cancelled {
        /// Superstep at whose boundary the cancellation was observed.
        superstep: u32,
    },
    /// A checkpoint or resume operation failed in a way the run cannot
    /// proceed past (an unreadable mandatory snapshot section, a graph
    /// mismatch, or an I/O failure opening the checkpoint directory).
    /// Failed snapshot *writes* are not fatal and are only counted in
    /// [`RecoveryStats`](crate::RecoveryStats).
    Checkpoint(CkptError),
    /// An internal invariant of the runtime broke (e.g. a worker answered
    /// a compute job with a delivery reply). Never recoverable; indicates
    /// a runtime bug, not a program or resource failure.
    Internal(String),
    /// A failure for which a post-mortem bundle was written
    /// ([`PregelConfig::post_mortem`]): the wrapped `source` is the real
    /// failure, `bundle` the directory holding its forensics (recent trace
    /// events, config, metrics snapshot). Transparent for classification —
    /// [`PregelError::is_recoverable`], [`PregelError::kind`], and the
    /// attribution helpers all delegate to the source.
    PostMortem {
        /// Directory of the written bundle.
        bundle: PathBuf,
        /// The failure the bundle documents.
        source: Box<PregelError>,
    },
}

impl fmt::Display for PregelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PregelError::SuperstepLimitExceeded { limit } => {
                write!(f, "superstep limit of {limit} exceeded without halting")
            }
            PregelError::InvalidConfig(msg) => write!(f, "invalid pregel config: {msg}"),
            PregelError::NotPullable { detail } => {
                write!(f, "schedule 'pull' requires a pullable program: {detail}")
            }
            PregelError::WorkerPanicked {
                superstep,
                worker,
                vertex,
                detail,
            } => {
                match worker {
                    Some(w) => write!(f, "worker {w} panicked during superstep {superstep}")?,
                    None => write!(f, "a worker died during superstep {superstep}")?,
                }
                if let Some(v) = vertex {
                    write!(f, " at vertex {v}")?;
                }
                write!(f, ": {detail}")
            }
            PregelError::DeadlineExceeded {
                superstep,
                worker,
                deadline,
            } => {
                write!(
                    f,
                    "superstep {superstep} exceeded its deadline of {deadline:?}"
                )?;
                match worker {
                    Some(w) => write!(f, " (tripped by worker {w})"),
                    None => write!(f, " (tripped at the barrier)"),
                }
            }
            PregelError::BudgetExceeded {
                superstep,
                what,
                used,
                budget,
            } => write!(
                f,
                "superstep {superstep} exceeded the {what} budget: {used} > {budget} bytes"
            ),
            PregelError::SpillFailed {
                superstep,
                worker,
                op,
                source,
            } => write!(
                f,
                "spill {op} failed on worker {worker} during superstep {superstep}: {source}"
            ),
            PregelError::Quarantined {
                superstep,
                worker,
                vertex,
                attempts,
                detail,
            } => {
                write!(
                    f,
                    "quarantined after {attempts} identical failures at superstep {superstep}"
                )?;
                if let Some(w) = worker {
                    write!(f, " on worker {w}")?;
                }
                if let Some(v) = vertex {
                    write!(f, " at vertex {v}")?;
                }
                write!(f, ": {detail}")
            }
            PregelError::Cancelled { superstep } => {
                write!(f, "run cancelled at superstep {superstep}")
            }
            PregelError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
            PregelError::Internal(msg) => write!(f, "internal runtime error: {msg}"),
            PregelError::PostMortem { bundle, source } => {
                write!(f, "{source} (post-mortem bundle: {})", bundle.display())
            }
        }
    }
}

impl Error for PregelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PregelError::Checkpoint(e) => Some(e),
            PregelError::SpillFailed { source, .. } => Some(source),
            PregelError::PostMortem { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl PregelError {
    /// Failures a [`run_with_recovery`] supervisor may retry: everything
    /// caused by a worker or a resource limit, nothing caused by bad
    /// configuration or a broken runtime invariant.
    pub fn is_recoverable(&self) -> bool {
        match self {
            PregelError::PostMortem { source, .. } => source.is_recoverable(),
            _ => matches!(
                self,
                PregelError::WorkerPanicked { .. }
                    | PregelError::DeadlineExceeded { .. }
                    | PregelError::BudgetExceeded { .. }
                    | PregelError::SpillFailed { .. }
            ),
        }
    }

    /// A stable, label-safe slug for the failure class (used as the `kind`
    /// label of `gm_failures_total` and in post-mortem manifests). A
    /// [`PregelError::PostMortem`] wrapper reports its source's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            PregelError::SuperstepLimitExceeded { .. } => "superstep_limit",
            PregelError::InvalidConfig(_) => "invalid_config",
            PregelError::NotPullable { .. } => "not_pullable",
            PregelError::WorkerPanicked { .. } => "worker_panicked",
            PregelError::DeadlineExceeded { .. } => "deadline_exceeded",
            PregelError::BudgetExceeded { .. } => "budget_exceeded",
            PregelError::SpillFailed { .. } => "spill_failed",
            PregelError::Quarantined { .. } => "quarantined",
            PregelError::Cancelled { .. } => "cancelled",
            PregelError::Checkpoint(_) => "checkpoint",
            PregelError::Internal(_) => "internal",
            PregelError::PostMortem { source, .. } => source.kind(),
        }
    }

    /// The post-mortem bundle directory documenting this failure, when one
    /// was written.
    pub fn post_mortem_bundle(&self) -> Option<&Path> {
        match self {
            PregelError::PostMortem { bundle, .. } => Some(bundle),
            _ => None,
        }
    }

    /// Splits a [`PregelError::PostMortem`] wrapper into the underlying
    /// failure and its bundle path; other errors pass through with `None`.
    /// The recovery supervisor compares failure *signatures* across
    /// attempts — bundle paths differ per attempt, so signatures must be
    /// computed on the detached error.
    pub fn detach_post_mortem(self) -> (PregelError, Option<PathBuf>) {
        match self {
            PregelError::PostMortem { bundle, source } => (*source, Some(bundle)),
            other => (other, None),
        }
    }

    /// Re-wraps an error with a previously detached bundle path.
    fn with_post_mortem(self, bundle: Option<PathBuf>) -> PregelError {
        match bundle {
            Some(bundle) => PregelError::PostMortem {
                bundle,
                source: Box::new(self),
            },
            None => self,
        }
    }
}

impl From<CkptError> for PregelError {
    fn from(e: CkptError) -> Self {
        PregelError::Checkpoint(e)
    }
}

/// Output of [`run`]: final vertex values in id order plus metrics.
#[derive(Debug, Clone)]
pub struct PregelResult<V> {
    /// Final per-vertex state, indexed by vertex id.
    pub values: Vec<V>,
    /// Superstep, message, phase-timing and byte counters.
    pub metrics: Metrics,
}

/// A raw outbox: one plain bucket per destination worker, as filled by the
/// vertex kernels. Also the shape of recycled spare buckets.
type RawOutbox<M> = Vec<Vec<(u32, M)>>;

/// One worker's drained incoming buckets, one per sender worker in
/// ascending sender order, handed back for capacity recycling.
type IncomingBuckets<M> = Vec<Vec<(u32, M)>>;

/// A sealed destination bucket after combine + metering: either resident
/// in memory, or spilled to a CRC-checked file with its (emptied) bucket
/// carried along so the capacity survives the round trip.
enum RoutedBucket<M> {
    Mem(Vec<(u32, M)>),
    Spilled {
        path: PathBuf,
        /// Entry count, validated against the file at replay.
        messages: u64,
        /// The drained bucket; replay decodes into it, so the allocation
        /// is recycled exactly like a resident bucket's.
        spare: Vec<(u32, M)>,
    },
}

/// One worker's sealed outgoing buckets, by destination worker.
type RoutedOutbox<M> = Vec<RoutedBucket<M>>;

/// One worker's incoming sealed buckets, one per sender worker in
/// ascending sender order.
type IncomingRouted<M> = Vec<RoutedBucket<M>>;

/// A worker-side phase failure, reported instead of a panic.
#[derive(Debug)]
enum WorkerFailure {
    Panic {
        worker: u32,
        vertex: Option<u32>,
        detail: String,
    },
    Spill {
        worker: u32,
        op: &'static str,
        source: CkptError,
    },
    Deadline {
        worker: u32,
    },
}

/// Renders a `catch_unwind` payload for error context.
fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

impl WorkerFailure {
    /// Attributes a caught panic to `worker` — and to the vertex the
    /// cursor was parked on, when the panic struck inside the vertex loop
    /// (the cursor is `u32::MAX` outside it).
    fn from_panic(
        worker: u32,
        cursor: Option<&AtomicU32>,
        payload: Box<dyn std::any::Any + Send>,
    ) -> Self {
        let vertex = cursor.and_then(|c| {
            let v = c.load(Ordering::Relaxed);
            (v != u32::MAX).then_some(v)
        });
        WorkerFailure::Panic {
            worker,
            vertex,
            detail: panic_detail(payload),
        }
    }
}

/// The superstep-independent attribution of an error: (superstep, worker,
/// vertex), used by the restart tracer, the quarantine wrapper, and
/// post-mortem manifests.
pub(crate) fn failure_site(error: &PregelError) -> (u32, Option<u32>, Option<u32>) {
    match error {
        PregelError::WorkerPanicked {
            superstep,
            worker,
            vertex,
            ..
        } => (*superstep, *worker, *vertex),
        PregelError::DeadlineExceeded {
            superstep, worker, ..
        } => (*superstep, *worker, None),
        PregelError::BudgetExceeded { superstep, .. } => (*superstep, None, None),
        PregelError::SpillFailed {
            superstep, worker, ..
        } => (*superstep, Some(*worker), None),
        PregelError::Quarantined {
            superstep,
            worker,
            vertex,
            ..
        } => (*superstep, *worker, *vertex),
        PregelError::Cancelled { superstep } => (*superstep, None, None),
        PregelError::PostMortem { source, .. } => failure_site(source),
        _ => (0, None, None),
    }
}

/// Wraps a failure that reproduced identically across the whole restart
/// budget in [`PregelError::Quarantined`], preserving its attribution.
fn quarantine(error: &PregelError, attempts: u32) -> PregelError {
    let (superstep, worker, vertex) = failure_site(error);
    PregelError::Quarantined {
        superstep,
        worker,
        vertex,
        attempts,
        detail: error.to_string(),
    }
}

/// Executes `program` on `graph` until the master halts.
///
/// `init` produces the initial value for each vertex.
///
/// # Checkpointing and resume
///
/// With [`PregelConfig::checkpoint`] set, the coordinator captures the
/// complete BSP frontier at the top of every `every`-th superstep and
/// writes it as a checksummed snapshot (see [`CheckpointConfig`]). When
/// the config additionally sets `resume`, the run first scans the
/// checkpoint directory and — if a valid snapshot exists — skips `init`
/// entirely and re-enters the superstep loop exactly where the snapshot
/// was taken; corrupt snapshots are discarded by checksum in favor of the
/// newest valid one. A resumed run continues as if uninterrupted: final
/// vertex values, superstep count, and message counters are identical to
/// a run that never stopped (for a fixed worker count; see Determinism).
///
/// # Errors
///
/// Returns [`PregelError::InvalidConfig`] for a zero worker count or zero
/// checkpoint interval, [`PregelError::SuperstepLimitExceeded`] if the
/// program never halts, [`PregelError::WorkerPanicked`] if a vertex
/// kernel (or injected fault) panics on a worker, and
/// [`PregelError::Checkpoint`] if a resume path cannot be completed.
///
/// # Determinism
///
/// For a fixed program, graph and seed the result is deterministic. Message
/// delivery order at each vertex is ascending in sender id regardless of
/// `num_workers`; integer and boolean aggregates are worker-count
/// independent. Floating-point `Sum` aggregates are reduced in vertex order
/// inside each worker and the per-worker partial sums are merged in
/// ascending worker order, so they are bit-reproducible for a fixed worker
/// count but may differ across worker counts by rounding (see
/// [`AggMap::merge`]).
pub fn run<P>(
    graph: &Graph,
    program: &mut P,
    init: impl Fn(NodeId) -> P::VertexValue,
    config: &PregelConfig,
) -> Result<PregelResult<P::VertexValue>, PregelError>
where
    P: VertexProgram + Send + Sync,
    P::VertexValue: Persist,
    P::Message: Persist,
{
    run_inner(graph, program, &init, config).map_err(|failed| failed.error)
}

/// A failed attempt, carrying the cost the supervisor must account for:
/// the supersteps this attempt executed past its resume point (work that a
/// restart re-executes) and the wall-clock it burned.
struct FailedRun {
    error: PregelError,
    wasted_supersteps: u32,
    wasted_time: Duration,
}

impl FailedRun {
    /// A failure before any superstep ran (validation, resume decode).
    fn early(error: PregelError) -> Self {
        FailedRun {
            error,
            wasted_supersteps: 0,
            wasted_time: Duration::ZERO,
        }
    }
}

impl From<CkptError> for FailedRun {
    fn from(e: CkptError) -> Self {
        FailedRun::early(PregelError::Checkpoint(e))
    }
}

/// Final accounting for a failed superstep loop: counts the failure in the
/// metrics registry and, when post-mortems are enabled, writes the bundle
/// and wraps the error with its path. Forensics are best-effort — a bundle
/// that cannot be written never masks the run's real failure.
fn seal_failure(
    failed: FailedRun,
    config: &PregelConfig,
    graph: &Graph,
    metrics: &Metrics,
    recorder: Option<&FlightRecorder>,
) -> FailedRun {
    let FailedRun {
        error,
        wasted_supersteps,
        wasted_time,
    } = failed;
    if let Some(registry) = &config.registry {
        registry
            .counter_with(
                "gm_failures_total",
                "runs that ended in an error, by failure kind",
                &[("kind", error.kind())],
            )
            .inc();
    }
    let error = match &config.post_mortem {
        Some(pm) => match write_bundle(pm, &error, config, graph, metrics, recorder) {
            Ok(bundle) => PregelError::PostMortem {
                bundle,
                source: Box::new(error),
            },
            Err(_) => error,
        },
        None => error,
    };
    FailedRun {
        error,
        wasted_supersteps,
        wasted_time,
    }
}

fn run_inner<P>(
    graph: &Graph,
    program: &mut P,
    init: &impl Fn(NodeId) -> P::VertexValue,
    config: &PregelConfig,
) -> Result<PregelResult<P::VertexValue>, FailedRun>
where
    P: VertexProgram + Send + Sync,
    P::VertexValue: Persist,
    P::Message: Persist,
{
    if config.num_workers == 0 {
        return Err(FailedRun::early(PregelError::InvalidConfig(
            "num_workers must be ≥ 1".into(),
        )));
    }
    if let Some(c) = &config.checkpoint {
        if c.every == 0 {
            return Err(FailedRun::early(PregelError::InvalidConfig(
                "checkpoint interval must be ≥ 1".into(),
            )));
        }
    }
    if config.budget.superstep_deadline == Some(Duration::ZERO) {
        return Err(FailedRun::early(PregelError::InvalidConfig(
            "superstep deadline must be nonzero".into(),
        )));
    }
    if config.schedule == Schedule::Pull && !program.pull_supported() {
        return Err(FailedRun::early(PregelError::NotPullable {
            detail: "the program reports no pullable vertex phase \
                     (every send targets computed destinations, or the payload \
                     reads receiver-local state)"
                .into(),
        }));
    }
    let n = graph.num_nodes() as usize;
    let num_workers = config.num_workers.min(n.max(1));
    let starts = partition(graph, num_workers);
    // Post-mortem capture: tee a bounded flight recorder behind whatever
    // tracer the caller configured (or trace into the recorder alone), so
    // the final moments of a crashed run are always on hand for the bundle.
    let recorder = config
        .post_mortem
        .as_ref()
        .map(|pm| Arc::new(FlightRecorder::new(pm.capacity)));
    let tracer_handle: Option<Tracer> = match (&config.tracer, &recorder) {
        (Some(t), Some(r)) => Some(t.with_extra_sink(r.clone())),
        (None, Some(r)) => Some(Tracer::new(r.clone())),
        (t, None) => t.clone(),
    };
    let tracer = tracer_handle.as_ref();
    let governor = Governor::new(&config.budget, num_workers)?;

    // Resume path: locate and decode the newest valid snapshot before any
    // state is initialized. Also opens the store for checkpoint writes.
    let mut resume: Option<ResumeState<P>> = None;
    let mut ckpt: Option<CkptRunner> = None;
    if let Some(c) = &config.checkpoint {
        let store = CheckpointStore::create(&c.dir)?;
        let mut runner = CkptRunner {
            store,
            every: c.every,
            keep: c.keep,
            skip: None,
            on_write: c.on_write.clone(),
        };
        if c.resume {
            let restore_started = Instant::now();
            let restore_start_us = tracer.map(Tracer::now_us);
            if let Some(rec) = runner.store.latest_valid()? {
                let mut rs = decode_snapshot::<P>(&rec.snapshot, graph, program)?;
                rs.metrics.recovery.restores += 1;
                if let Some(registry) = &config.registry {
                    registry
                        .counter("gm_restores_total", "successful snapshot restores")
                        .inc();
                }
                rs.metrics.recovery.corrupt_snapshots_discarded += rec.discarded;
                rs.metrics.recovery.restore_time += restore_started.elapsed();
                if let (Some(t), Some(ts)) = (tracer, restore_start_us) {
                    t.span_at(
                        "restore",
                        Category::Ckpt,
                        0,
                        ts,
                        restore_started.elapsed().as_micros() as u64,
                        vec![
                            ("superstep", rs.superstep.into()),
                            ("discarded", rec.discarded.into()),
                        ],
                    );
                }
                runner.skip = Some(rs.superstep);
                resume = Some(rs);
            } else if let Some(t) = tracer {
                // Nothing valid to resume from: start from scratch.
                t.instant("restore_empty", Category::Ckpt, 0, Vec::new());
            }
        }
        ckpt = Some(runner);
    }

    // Build worker states (halted flags + inboxes) and value stores either
    // from `init` or from the restored vertex-indexed vectors, re-split
    // across the current partition. The stores live in `Shared` behind
    // per-worker `RwLock`s: a worker writes only its own store (compute),
    // but gathered supersteps let every worker read every store.
    let (mut states, store_data, globals, drive_init, mut metrics): (
        Vec<WorkerState<P>>,
        Vec<VertexStore<P>>,
        Globals,
        DriveInit,
        Metrics,
    ) = match resume {
        None => (
            (0..num_workers)
                .map(|w| WorkerState::new(w, &starts))
                .collect(),
            (0..num_workers)
                .map(|w| {
                    let base = starts[w];
                    let len = (starts[w + 1] - base) as usize;
                    VertexStore::from_values(
                        (0..len).map(|i| init(NodeId(base + i as u32))).collect(),
                    )
                })
                .collect(),
            Globals::new(),
            DriveInit::fresh(graph.num_nodes()),
            Metrics::default(),
        ),
        Some(rs) => {
            let ResumeState {
                superstep,
                coord,
                metrics,
                mut values,
                mut halted,
                mut inboxes,
            } = rs;
            // Split the vertex-indexed vectors at the partition boundaries,
            // back to front so each split is O(tail).
            let mut states = Vec::with_capacity(num_workers);
            let mut store_data = Vec::with_capacity(num_workers);
            for w in (0..num_workers).rev() {
                let base = starts[w] as usize;
                states.push(WorkerState::from_restored(
                    w,
                    starts[w],
                    halted.split_off(base),
                    inboxes.split_off(base),
                ));
                store_data.push(VertexStore::from_values(values.split_off(base)));
            }
            states.reverse();
            store_data.reverse();
            let drive_init = DriveInit {
                superstep,
                active_vertices: coord.active_vertices,
                pending_messages: coord.pending_messages,
                agg_prev: coord.agg_prev,
            };
            (states, store_data, coord.globals, drive_init, metrics)
        }
    };

    let shared = Shared {
        graph,
        program: RwLock::new(program),
        globals: RwLock::new(globals),
        stores: store_data.into_iter().map(RwLock::new).collect(),
        tracer: tracer_handle.clone(),
        faults: config.faults.clone(),
        governor,
    };

    if num_workers == 1 {
        // Inline execution on the calling thread; same phase structure,
        // no pool.
        let Some(mut state) = states.pop() else {
            return Err(FailedRun::early(PregelError::Internal(
                "single-worker run built no worker state".into(),
            )));
        };
        let drive_result = drive(
            &shared,
            &starts,
            config,
            drive_init,
            ckpt,
            &mut metrics,
            |job| match job {
                PhaseJob::Compute {
                    superstep,
                    mut spares,
                    pull,
                    deadline_at,
                } => {
                    let program = read_lock(&shared.program);
                    let globals = read_lock(&shared.globals);
                    let spare = spares.pop().unwrap_or_default();
                    let cursor = AtomicU32::new(u32::MAX);
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        let mut store = write_lock(&shared.stores[0]);
                        state.compute_phase(
                            graph,
                            &**program,
                            &globals,
                            &mut store,
                            &starts,
                            superstep,
                            pull,
                            spare,
                            &shared.faults,
                            shared.tracer.as_ref(),
                            &shared.governor,
                            deadline_at,
                            &cursor,
                        )
                    }));
                    match out {
                        Ok(Ok(out)) => Ok(PhaseResult::Computed(vec![out])),
                        Ok(Err(failure)) => Err(PhaseFailure::Worker(failure)),
                        Err(payload) => Err(PhaseFailure::Worker(WorkerFailure::from_panic(
                            0,
                            Some(&cursor),
                            payload,
                        ))),
                    }
                }
                PhaseJob::Deliver {
                    mut incoming,
                    deadline_at,
                } => {
                    let Some(buckets) = incoming.pop() else {
                        return Err(PhaseFailure::MismatchedReply);
                    };
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        state.deliver_phase(buckets, shared.tracer.as_ref(), deadline_at)
                    }));
                    match out {
                        Ok(Ok(out)) => Ok(PhaseResult::Delivered(vec![out])),
                        Ok(Err(failure)) => Err(PhaseFailure::Worker(failure)),
                        Err(payload) => Err(PhaseFailure::Worker(WorkerFailure::from_panic(
                            0, None, payload,
                        ))),
                    }
                }
                PhaseJob::Gather {
                    superstep,
                    mode,
                    deadline_at,
                } => {
                    let program = read_lock(&shared.program);
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        state.gather_phase(
                            graph,
                            &**program,
                            &shared.stores,
                            &starts,
                            superstep,
                            mode,
                            shared.tracer.as_ref(),
                            deadline_at,
                        )
                    }));
                    match out {
                        Ok(Ok(out)) => Ok(PhaseResult::Gathered(vec![out])),
                        Ok(Err(failure)) => Err(PhaseFailure::Worker(failure)),
                        Err(payload) => Err(PhaseFailure::Worker(WorkerFailure::from_panic(
                            0, None, payload,
                        ))),
                    }
                }
                PhaseJob::Snapshot => {
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        let store = read_lock(&shared.stores[0]);
                        state.snapshot_phase(&store.values, shared.tracer.as_ref())
                    }));
                    match out {
                        Ok(out) => Ok(PhaseResult::Snapshotted(vec![out])),
                        Err(payload) => Err(PhaseFailure::Worker(WorkerFailure::from_panic(
                            0, None, payload,
                        ))),
                    }
                }
            },
        );
        if let Err(failed) = drive_result {
            return Err(seal_failure(
                failed,
                config,
                graph,
                &metrics,
                recorder.as_deref(),
            ));
        }
        let values = std::mem::take(&mut write_lock(&shared.stores[0]).values);
        return Ok(PregelResult { values, metrics });
    }

    // Persistent worker pool: one thread per worker for the whole run,
    // parked on its job channel between phases.
    std::thread::scope(|scope| {
        let (reply_tx, reply_rx) = mpsc::channel::<Reply<P::Message>>();
        let mut job_txs: Vec<mpsc::Sender<Job<P::Message>>> = Vec::with_capacity(num_workers);
        let mut handles = Vec::with_capacity(num_workers);
        let shared_ref = &shared;
        let starts_ref: &[u32] = &starts;
        for (w, state) in states.into_iter().enumerate() {
            let (job_tx, job_rx) = mpsc::channel::<Job<P::Message>>();
            let worker_reply_tx = reply_tx.clone();
            job_txs.push(job_tx);
            handles.push(scope.spawn(move || {
                worker_loop(w, state, shared_ref, starts_ref, job_rx, worker_reply_tx)
            }));
        }
        drop(reply_tx);

        let drive_result = drive(
            &shared,
            &starts,
            config,
            drive_init,
            ckpt,
            &mut metrics,
            |job| match job {
                PhaseJob::Compute {
                    superstep,
                    spares,
                    pull,
                    deadline_at,
                } => {
                    let mut spares = spares.into_iter();
                    for tx in &job_txs {
                        let spare = spares.next().unwrap_or_default();
                        tx.send(Job::Compute {
                            superstep,
                            spare,
                            pull,
                            deadline_at,
                        })
                        .map_err(|_| PhaseFailure::ChannelClosed)?;
                    }
                    Ok(PhaseResult::Computed(collect_compute_replies(
                        &reply_rx,
                        num_workers,
                    )?))
                }
                PhaseJob::Deliver {
                    incoming,
                    deadline_at,
                } => {
                    for (tx, buckets) in job_txs.iter().zip(incoming) {
                        tx.send(Job::Deliver {
                            incoming: buckets,
                            deadline_at,
                        })
                        .map_err(|_| PhaseFailure::ChannelClosed)?;
                    }
                    Ok(PhaseResult::Delivered(collect_deliver_replies(
                        &reply_rx,
                        num_workers,
                    )?))
                }
                PhaseJob::Gather {
                    superstep,
                    mode,
                    deadline_at,
                } => {
                    for tx in &job_txs {
                        tx.send(Job::Gather {
                            superstep,
                            mode,
                            deadline_at,
                        })
                        .map_err(|_| PhaseFailure::ChannelClosed)?;
                    }
                    Ok(PhaseResult::Gathered(collect_gather_replies(
                        &reply_rx,
                        num_workers,
                    )?))
                }
                PhaseJob::Snapshot => {
                    for tx in &job_txs {
                        tx.send(Job::Snapshot)
                            .map_err(|_| PhaseFailure::ChannelClosed)?;
                    }
                    Ok(PhaseResult::Snapshotted(collect_snapshot_replies(
                        &reply_rx,
                        num_workers,
                    )?))
                }
            },
        );

        // Shut the pool down and join every worker whether the run
        // succeeded or a worker died; no thread may outlive the scope.
        for tx in &job_txs {
            let _ = tx.send(Job::Finish);
        }
        let mut join_panic = None;
        for handle in handles {
            if let Err(panic) = handle.join() {
                join_panic = Some(panic);
            }
        }
        if let Err(failed) = drive_result {
            return Err(seal_failure(
                failed,
                config,
                graph,
                &metrics,
                recorder.as_deref(),
            ));
        }
        if let Some(panic) = join_panic {
            // A panic escaped a worker's catch_unwind — not an injected or
            // kernel fault; re-raise it.
            std::panic::resume_unwind(panic);
        }
        // Every worker has parked; assemble the final values from the
        // shared stores in ascending worker order.
        let mut values = Vec::with_capacity(n);
        for store in &shared.stores {
            values.append(&mut write_lock(store).values);
        }
        Ok(PregelResult { values, metrics })
    })
}

/// Supervised execution: like [`run`], but on a recoverable failure (see
/// [`PregelError::is_recoverable`] — worker panics, deadline overruns,
/// budget exhaustion, spill I/O) the job is restarted — resuming from the
/// newest valid snapshot when checkpointing is configured, from scratch
/// otherwise — up to [`RecoveryPolicy::max_restarts`] times with linear
/// backoff. The program's master state is rolled back to its pre-run
/// baseline before each retry so the resume path replays it exactly.
///
/// A failure that reproduces *identically* on the initial run and on every
/// restart is deterministic — a poisoned vertex kernel, a sticky resource
/// overrun — and restarting again would loop forever. When the restart
/// budget runs out on such a streak, the supervisor returns
/// [`PregelError::Quarantined`] carrying the repeated failure's
/// superstep/worker/vertex attribution instead of the bare error.
///
/// With [`PregelConfig::recovery`] unset this is identical to [`run`].
/// Restart counts and the work thrown away by failed attempts are reported
/// in [`RecoveryStats`](crate::RecoveryStats) (`restarts`,
/// `wasted_supersteps`, `wasted_time`).
pub fn run_with_recovery<P>(
    graph: &Graph,
    program: &mut P,
    init: impl Fn(NodeId) -> P::VertexValue,
    config: &PregelConfig,
) -> Result<PregelResult<P::VertexValue>, PregelError>
where
    P: VertexProgram + Send + Sync,
    P::VertexValue: Persist,
    P::Message: Persist,
{
    let Some(policy) = config.recovery.clone() else {
        return run(graph, program, &init, config);
    };
    // The master state must roll back together with the snapshot: a retry
    // that falls back to an older snapshot (or a fresh start) must not see
    // a master already mutated by the failed attempt.
    let mut baseline = Vec::new();
    program.save_master_state(&mut baseline);

    let mut config = config.clone();
    let mut attempt: u32 = 0;
    let mut wasted_supersteps: u32 = 0;
    let mut wasted_time = Duration::ZERO;
    // Rendered form of the last failure, and how many consecutive attempts
    // produced exactly it. A streak spanning every attempt is the
    // quarantine signal.
    let mut signature: Option<String> = None;
    let mut streak: u32 = 0;
    loop {
        match run_inner(graph, program, &init, &config) {
            Ok(mut result) => {
                result.metrics.recovery.restarts += attempt;
                result.metrics.recovery.wasted_supersteps += wasted_supersteps;
                result.metrics.recovery.wasted_time += wasted_time;
                return Ok(result);
            }
            Err(failed) => {
                let error = failed.error;
                if !error.is_recoverable() {
                    return Err(error);
                }
                wasted_supersteps += failed.wasted_supersteps;
                wasted_time += failed.wasted_time;
                // Detach any post-mortem bundle before comparing failure
                // signatures: each attempt writes a fresh bundle directory,
                // which would make identical failures look distinct. The
                // newest bundle is re-attached to whatever error escapes.
                let (error, bundle) = error.detach_post_mortem();
                let rendered = error.to_string();
                if signature.as_deref() == Some(rendered.as_str()) {
                    streak += 1;
                } else {
                    signature = Some(rendered);
                    streak = 1;
                }
                if attempt >= policy.max_restarts {
                    // Restart budget exhausted. If every attempt failed
                    // identically the failure is deterministic: quarantine
                    // it so callers can tell "retrying cannot help" apart
                    // from "ran out of luck".
                    if streak == attempt + 1 {
                        if let Some(r) = &config.registry {
                            r.counter("gm_quarantines_total", "deterministic failures quarantined")
                                .inc();
                        }
                        return Err(quarantine(&error, attempt + 1).with_post_mortem(bundle));
                    }
                    return Err(error.with_post_mortem(bundle));
                }
                attempt += 1;
                if let Some(r) = &config.registry {
                    r.counter("gm_restarts_total", "recovery restarts").inc();
                }
                if let Some(t) = config.tracer.as_ref() {
                    let (superstep, _, _) = failure_site(&error);
                    t.instant(
                        "restart",
                        Category::Ckpt,
                        0,
                        vec![("attempt", attempt.into()), ("superstep", superstep.into())],
                    );
                }
                if !policy.backoff.is_zero() {
                    std::thread::sleep(policy.backoff * attempt);
                }
                let mut r = ByteReader::new(&baseline);
                program.restore_master_state(&mut r)?;
                // Retries resume from the newest valid snapshot.
                if let Some(c) = &mut config.checkpoint {
                    c.resume = true;
                }
            }
        }
    }
}

/// Read-only state shared with the worker pool. The program sits behind a
/// lock because the master kernel needs `&mut P` between phases while the
/// workers read `&P` during them; the lock is only ever contended across
/// phase boundaries, never within one.
struct Shared<'a, P: VertexProgram> {
    graph: &'a Graph,
    program: RwLock<&'a mut P>,
    globals: RwLock<Globals>,
    /// One per-vertex store per worker. A worker takes the write lock on
    /// its own store for compute/snapshot phases; gathered supersteps take
    /// read locks on all stores (phases are barrier-separated, so the two
    /// access patterns never overlap).
    stores: Vec<RwLock<VertexStore<P>>>,
    /// Trace destination, cloned out of the config; `None` disables all
    /// instrumentation at the cost of one branch per phase.
    tracer: Option<Tracer>,
    /// Fault-injection plan; the production default is empty and costs one
    /// slice iteration (over zero elements) per consultation.
    faults: FaultPlan,
    /// Resolved resource limits; entirely inactive (all `None`) unless the
    /// config sets a budget.
    governor: Governor,
}

fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

/// One worker's per-vertex state, kept in [`Shared`] so gathered
/// supersteps can read other workers' vertices. `captured`/`sent` are
/// intra-superstep pull scratch: reset at the top of every gathered
/// compute phase and consumed by the same superstep's gather, so they
/// never need to be checkpointed.
struct VertexStore<P: VertexProgram> {
    values: Vec<P::VertexValue>,
    /// Captured broadcast payload per local vertex
    /// ([`PullMode::Captured`] supersteps).
    captured: Vec<Option<P::Message>>,
    /// Whether the vertex's send site fired
    /// ([`PullMode::Recomputed`] supersteps).
    sent: Vec<bool>,
}

impl<P: VertexProgram> VertexStore<P> {
    fn from_values(values: Vec<P::VertexValue>) -> Self {
        VertexStore {
            values,
            // Sized lazily at the first gathered superstep; push-only runs
            // never allocate them.
            captured: Vec::new(),
            sent: Vec::new(),
        }
    }
}

/// A phase dispatched by the BSP driver to its executor (inline or pool).
enum PhaseJob<M> {
    /// Run vertex kernels + combining for this superstep. `spares[w]` is
    /// worker `w`'s recycled outbox (empty buckets whose capacity was grown
    /// by earlier supersteps).
    Compute {
        superstep: u32,
        spares: Vec<RawOutbox<M>>,
        /// Pull sink the kernels run under: `Unsupported` routes (push),
        /// otherwise sends are absorbed into the worker's store for the
        /// gather that follows.
        pull: PullMode,
        /// Cooperative watchdog cutoff for this superstep, when budgeted.
        deadline_at: Option<Instant>,
    },
    /// Deliver routed buckets; `incoming[d]` is destination worker `d`'s
    /// bucket list in ascending sender order.
    Deliver {
        incoming: Vec<IncomingRouted<M>>,
        deadline_at: Option<Instant>,
    },
    /// Gathered replacement for the exchange: every worker walks its owned
    /// vertices' in-edges and reads the senders' messages in place.
    Gather {
        superstep: u32,
        mode: PullMode,
        deadline_at: Option<Instant>,
    },
    /// Serialize every worker's vertex range (values, halted flags,
    /// pending inbox) for a checkpoint.
    Snapshot,
}

/// Executor response, worker-ordered.
enum PhaseResult<M> {
    Computed(Vec<ComputeOut<M>>),
    Delivered(Vec<DeliverOut<M>>),
    Gathered(Vec<GatherOut>),
    Snapshotted(Vec<SnapshotOut>),
}

/// Why a phase lost a worker. The driver stamps the failing superstep on
/// top to produce the final [`PregelError`].
enum PhaseFailure {
    /// A worker reported a failure (caught panic, spill I/O error, or a
    /// tripped deadline check) and parked itself.
    Worker(WorkerFailure),
    /// A job or reply channel closed without a report: the worker died in
    /// a way even `catch_unwind` could not observe.
    ChannelClosed,
    /// The executor answered a phase with a different phase's result — a
    /// runtime bug, never a program failure.
    MismatchedReply,
}

/// One worker's serialized vertex range, concatenated across workers (in
/// ascending worker order) into the snapshot's vertex-indexed sections.
struct SnapshotOut {
    values: Vec<u8>,
    halted: Vec<u8>,
    inbox: Vec<u8>,
}

/// Where the superstep loop starts: superstep 0 with everything active for
/// a fresh run, or the restored frontier for a resumed one.
struct DriveInit {
    superstep: u32,
    active_vertices: u32,
    pending_messages: u64,
    agg_prev: AggMap,
}

impl DriveInit {
    fn fresh(num_nodes: u32) -> Self {
        DriveInit {
            superstep: 0,
            active_vertices: num_nodes,
            pending_messages: 0,
            agg_prev: AggMap::new(),
        }
    }
}

/// Coordinator-side checkpoint machinery for one run.
struct CkptRunner {
    store: CheckpointStore,
    every: u32,
    keep: usize,
    /// The superstep this run resumed at, whose snapshot (just read) must
    /// not be immediately rewritten.
    skip: Option<u32>,
    /// Invoked after each durable snapshot write (post fault injection).
    on_write: Option<Arc<dyn Fn(u32) + Send + Sync>>,
}

/// Stamps the failing superstep onto a [`PhaseFailure`] to produce the
/// run's final error.
fn failure_error(failure: PhaseFailure, superstep: u32, deadline: Option<Duration>) -> PregelError {
    match failure {
        PhaseFailure::Worker(WorkerFailure::Panic {
            worker,
            vertex,
            detail,
        }) => PregelError::WorkerPanicked {
            superstep,
            worker: Some(worker),
            vertex,
            detail,
        },
        PhaseFailure::Worker(WorkerFailure::Spill { worker, op, source }) => {
            PregelError::SpillFailed {
                superstep,
                worker,
                op,
                source,
            }
        }
        PhaseFailure::Worker(WorkerFailure::Deadline { worker }) => PregelError::DeadlineExceeded {
            superstep,
            worker: Some(worker),
            deadline: deadline.unwrap_or_default(),
        },
        PhaseFailure::ChannelClosed => PregelError::WorkerPanicked {
            superstep,
            worker: None,
            vertex: None,
            detail: "worker channel closed without a reply".into(),
        },
        PhaseFailure::MismatchedReply => PregelError::Internal(format!(
            "executor answered superstep {superstep} with a mismatched phase result"
        )),
    }
}

/// The BSP superstep loop, common to the inline and pooled executors.
/// `phase` runs one phase across all workers and returns their outputs in
/// ascending worker order, or the [`PhaseFailure`] that lost a worker.
///
/// `metrics` is borrowed rather than owned so that on failure the caller
/// still holds everything accumulated up to the failing superstep — the
/// post-mortem bundle snapshots it.
fn drive<P, F>(
    shared: &Shared<'_, P>,
    starts: &[u32],
    config: &PregelConfig,
    init: DriveInit,
    mut ckpt: Option<CkptRunner>,
    metrics: &mut Metrics,
    mut phase: F,
) -> Result<(), FailedRun>
where
    P: VertexProgram,
    F: FnMut(PhaseJob<P::Message>) -> Result<PhaseResult<P::Message>, PhaseFailure>,
{
    let num_workers = starts.len() - 1;
    let num_nodes = shared.graph.num_nodes();
    let tracer = shared.tracer.as_ref();
    let feed = config.registry.as_ref().map(|r| RegistryFeed::new(r));
    // Direction of the last *executed* superstep, restored across resumes,
    // for the registry's switch counter.
    let mut last_pulled: Option<bool> = metrics.per_superstep.last().map(|s| s.pulled);
    let DriveInit {
        mut superstep,
        mut active_vertices,
        mut pending_messages,
        mut agg_prev,
    } = init;
    let start = Instant::now();
    // Work past this attempt's entry point is lost on failure: a restart
    // re-executes it from the resume superstep (or from scratch).
    let first_superstep = superstep;
    let fail = |error: PregelError, at: u32| FailedRun {
        error,
        wasted_supersteps: at - first_superstep,
        wasted_time: start.elapsed(),
    };

    // Empty outbox buckets recycled from the previous exchange, per sender.
    let mut spares: Vec<RawOutbox<P::Message>> = (0..num_workers).map(|_| Vec::new()).collect();

    loop {
        if superstep >= config.max_supersteps {
            return Err(fail(
                PregelError::SuperstepLimitExceeded {
                    limit: config.max_supersteps,
                },
                superstep,
            ));
        }
        if let Some(cancel) = &config.cancel {
            if cancel.load(Ordering::Relaxed) {
                return Err(fail(PregelError::Cancelled { superstep }, superstep));
            }
        }

        // ---- checkpoint (coordinator + workers, before the master) ----
        // Taken at the top of the superstep so the snapshot is exactly the
        // state a resumed run needs to re-enter the loop here: `agg_prev`
        // still holds the previous superstep's aggregates and the inboxes
        // hold this superstep's undelivered messages.
        if let Some(ck) = &mut ckpt {
            if superstep > 0 && superstep % ck.every == 0 && ck.skip != Some(superstep) {
                let ckpt_start_us = tracer.map(Tracer::now_us);
                let ckpt_started = Instant::now();
                let outs = match phase(PhaseJob::Snapshot).map_err(|f| {
                    fail(
                        failure_error(f, superstep, shared.governor.deadline),
                        superstep,
                    )
                })? {
                    PhaseResult::Snapshotted(outs) => outs,
                    _ => {
                        return Err(fail(
                            failure_error(PhaseFailure::MismatchedReply, superstep, None),
                            superstep,
                        ))
                    }
                };
                let (mut values, mut halted, mut inbox) = (Vec::new(), Vec::new(), Vec::new());
                for out in outs {
                    values.extend_from_slice(&out.values);
                    halted.extend_from_slice(&out.halted);
                    inbox.extend_from_slice(&out.inbox);
                }
                let mut master = Vec::new();
                read_lock(&shared.program).save_master_state(&mut master);
                let coord = CoordState {
                    active_vertices,
                    pending_messages,
                    agg_prev: agg_prev.clone(),
                    globals: read_lock(&shared.globals).clone(),
                };
                // The snapshot's metrics carry the wall-clock accumulated
                // so far, so a resumed run reports end-to-end totals.
                let mut snap_metrics = metrics.clone();
                snap_metrics.elapsed += start.elapsed();
                if shared.faults.trip_fail_checkpoint_write(superstep) {
                    metrics.recovery.checkpoint_failures += 1;
                    if let Some(f) = &feed {
                        f.record_checkpoint(false);
                    }
                    if let Some(t) = tracer {
                        t.instant(
                            "checkpoint_failed",
                            Category::Ckpt,
                            0,
                            vec![("superstep", superstep.into()), ("injected", true.into())],
                        );
                    }
                } else {
                    let builder = build_snapshot(
                        superstep,
                        num_nodes,
                        &coord,
                        master,
                        values,
                        halted,
                        inbox,
                        &snap_metrics,
                    );
                    match ck.store.write(&builder, superstep) {
                        Ok((path, bytes)) => {
                            metrics.recovery.checkpoints_written += 1;
                            metrics.recovery.snapshot_bytes += bytes;
                            if let Some(f) = &feed {
                                f.record_checkpoint(true);
                            }
                            let mut corrupted = false;
                            if let Ok(Some(what)) =
                                shared.faults.corrupt_after_write(superstep, &path)
                            {
                                corrupted = true;
                                if let Some(t) = tracer {
                                    t.instant(
                                        "snapshot_corrupted",
                                        Category::Ckpt,
                                        0,
                                        vec![
                                            ("superstep", superstep.into()),
                                            ("what", what.into()),
                                        ],
                                    );
                                }
                            }
                            if !corrupted {
                                if let Some(cb) = &ck.on_write {
                                    cb(superstep);
                                }
                            }
                            // A failed prune never fails the run.
                            let _ = ck.store.prune(ck.keep);
                            if let (Some(t), Some(ts)) = (tracer, ckpt_start_us) {
                                t.span_at(
                                    "checkpoint",
                                    Category::Ckpt,
                                    0,
                                    ts,
                                    ckpt_started.elapsed().as_micros() as u64,
                                    vec![("superstep", superstep.into()), ("bytes", bytes.into())],
                                );
                            }
                        }
                        Err(_) => {
                            // A failed snapshot write is not fatal — the run
                            // proceeds with one fewer recovery point.
                            metrics.recovery.checkpoint_failures += 1;
                            if let Some(f) = &feed {
                                f.record_checkpoint(false);
                            }
                            if let Some(t) = tracer {
                                t.instant(
                                    "checkpoint_failed",
                                    Category::Ckpt,
                                    0,
                                    vec![("superstep", superstep.into())],
                                );
                            }
                        }
                    }
                }
                metrics.recovery.checkpoint_time += ckpt_started.elapsed();
            }
        }

        // ---- master phase (sequential) ----
        // The watchdog clock starts here: one deadline covers the whole
        // superstep (master, compute, exchange, barrier) but not the
        // checkpoint above, whose cost is governed by the snapshot policy.
        let deadline_at = shared.governor.deadline.map(|d| Instant::now() + d);
        let step_start_us = tracer.map(Tracer::now_us);
        let master_started = Instant::now();
        let decision = {
            let mut program = write_lock(&shared.program);
            let mut globals = write_lock(&shared.globals);
            let mut mctx = MasterContext {
                superstep,
                aggregates: &agg_prev,
                broadcast: &mut globals,
                num_nodes,
                active_vertices,
                pending_messages,
            };
            program.master_compute(&mut mctx)
        };
        let master_time = master_started.elapsed();
        metrics.supersteps = superstep + 1;
        if let (Some(t), Some(ts)) = (tracer, step_start_us) {
            t.span_at(
                "master",
                Category::Runtime,
                0,
                ts,
                master_time.as_micros() as u64,
                vec![("superstep", superstep.into())],
            );
        }
        // Explicit halt, or Pregel's default termination: every vertex
        // inactive and no messages in flight.
        if decision == MasterDecision::Halt || (active_vertices == 0 && pending_messages == 0) {
            metrics.master_time += master_time;
            if let Some(t) = tracer {
                t.instant(
                    "halt",
                    Category::Runtime,
                    0,
                    vec![
                        ("superstep", superstep.into()),
                        ("active", active_vertices.into()),
                        ("pending", pending_messages.into()),
                    ],
                );
            }
            break;
        }

        // ---- direction decision (push vs gathered superstep) ----
        // Decided after the master so state-machine programs answer
        // `pull_mode` for the phase the master just selected.
        let mode = match config.schedule {
            Schedule::Push => PullMode::Unsupported,
            Schedule::Pull => read_lock(&shared.program).pull_mode(),
            Schedule::Auto => {
                let m = read_lock(&shared.program).pull_mode();
                if m == PullMode::Unsupported {
                    m
                } else {
                    // Ligra/GraphIt density heuristic: gather when the
                    // frontier's expected out-edges exceed the configured
                    // fraction of |E| (dense frontier), push otherwise.
                    let edges = shared.graph.num_edges() as f64;
                    let avg_degree = edges / f64::from(num_nodes.max(1));
                    let frontier_edges = f64::from(active_vertices) * avg_degree;
                    if frontier_edges > config.dense_threshold * edges {
                        m
                    } else {
                        PullMode::Unsupported
                    }
                }
            }
        };
        let pulled = mode != PullMode::Unsupported;
        if config.schedule != Schedule::Push {
            if let Some(t) = tracer {
                t.instant(
                    "direction",
                    Category::Runtime,
                    0,
                    vec![
                        ("superstep", superstep.into()),
                        ("pull", pulled.into()),
                        ("active", active_vertices.into()),
                    ],
                );
            }
        }

        // ---- vertex + combine phase (parallel) ----
        let job = PhaseJob::Compute {
            superstep,
            spares: std::mem::take(&mut spares),
            pull: mode,
            deadline_at,
        };
        let computes = match phase(job).map_err(|f| {
            fail(
                failure_error(f, superstep, shared.governor.deadline),
                superstep,
            )
        })? {
            PhaseResult::Computed(outs) => outs,
            _ => {
                return Err(fail(
                    failure_error(PhaseFailure::MismatchedReply, superstep, None),
                    superstep,
                ))
            }
        };

        // ---- barrier: merge worker outputs in ascending worker order ----
        let mut step = SuperstepMetrics {
            master_time,
            pulled,
            ..SuperstepMetrics::default()
        };
        agg_prev = AggMap::new();
        let mut not_halted: u32 = 0;
        let mut step_spilled_bytes: u64 = 0;
        for out in &computes {
            agg_prev.merge(&out.agg);
            step.active_vertices += out.computed;
            not_halted += out.not_halted;
            step.messages_sent += out.messages_sent;
            step.message_bytes += out.message_bytes;
            step.remote_messages += out.remote_messages;
            step.remote_message_bytes += out.remote_message_bytes;
            step.compute_time = step.compute_time.max(out.compute_time);
            step.combine_time = step.combine_time.max(out.combine_time);
            step_spilled_bytes += out.spilled_message_bytes;
            metrics.spill.buckets_spilled += out.buckets_spilled;
            metrics.spill.spilled_message_bytes += out.spilled_message_bytes;
            metrics.spill.spill_file_bytes += out.spill_file_bytes;
            metrics.spill.spill_write_time += out.spill_write_time;
        }
        // What actually stayed resident this superstep: the metered bytes
        // minus whatever was pushed out to disk. (Spilling happens after
        // metering, so `message_bytes` itself is spill-invariant.)
        let in_flight_bytes = step.message_bytes - step_spilled_bytes;
        metrics.spill.peak_in_flight_bytes =
            metrics.spill.peak_in_flight_bytes.max(in_flight_bytes);
        if let Some(t) = tracer {
            if shared.governor.share_per_worker.is_some() {
                t.counter(
                    "in_flight_bytes",
                    Category::Budget,
                    vec![
                        ("superstep", superstep.into()),
                        ("bytes", in_flight_bytes.into()),
                        ("spilled", step_spilled_bytes.into()),
                    ],
                );
            }
        }
        if let Some(t) = tracer {
            // Compute-skew summary: the barrier waits for the slowest
            // worker, so max/mean spread is wasted wall-clock.
            let max_us = step.compute_time.as_micros() as u64;
            let sum_us: u64 = computes
                .iter()
                .map(|o| o.compute_time.as_micros() as u64)
                .sum();
            let mean_us = sum_us / computes.len().max(1) as u64;
            t.counter(
                "compute_skew",
                Category::Runtime,
                vec![
                    ("superstep", superstep.into()),
                    ("max_us", max_us.into()),
                    ("mean_us", mean_us.into()),
                ],
            );
        }

        pending_messages = 0;
        let mut reactivated: u32 = 0;
        if pulled {
            // ---- gather phase: receivers pull over in-edges ----
            // No buckets crossed worker boundaries (sends were absorbed at
            // the sink), so the exchange slot runs a gather instead: every
            // worker reads all value stores and folds its own inboxes. The
            // untouched outbox buckets go straight back to their senders.
            let gather_start_us = tracer.map(Tracer::now_us);
            let gather_started = Instant::now();
            spares = (0..num_workers).map(|_| Vec::new()).collect();
            for (sender, out) in computes.into_iter().enumerate() {
                for bucket in out.outbox {
                    spares[sender].push(match bucket {
                        RoutedBucket::Mem(b) => b,
                        RoutedBucket::Spilled { spare, .. } => spare,
                    });
                }
            }
            let gathers = match phase(PhaseJob::Gather {
                superstep,
                mode,
                deadline_at,
            })
            .map_err(|f| {
                fail(
                    failure_error(f, superstep, shared.governor.deadline),
                    superstep,
                )
            })? {
                PhaseResult::Gathered(outs) => outs,
                _ => {
                    return Err(fail(
                        failure_error(PhaseFailure::MismatchedReply, superstep, None),
                        superstep,
                    ))
                }
            };
            step.exchange_time = gather_started.elapsed();
            for out in &gathers {
                pending_messages += out.delivered;
                reactivated += out.reactivated;
                step.messages_sent += out.messages_sent;
                step.message_bytes += out.message_bytes;
                step.remote_messages += out.remote_messages;
                step.remote_message_bytes += out.remote_message_bytes;
            }
            if let (Some(t), Some(ts)) = (tracer, gather_start_us) {
                t.span_at(
                    "gather",
                    Category::Runtime,
                    0,
                    ts,
                    step.exchange_time.as_micros() as u64,
                    vec![
                        ("superstep", superstep.into()),
                        ("messages", step.messages_sent.into()),
                        ("remote", step.remote_messages.into()),
                    ],
                );
            }
            // Gathered messages never sit in a combine→delivery window, so
            // they bypass the in-flight budget entirely; account for what
            // the governor never saw.
            if shared.governor.share_per_worker.is_some() {
                metrics.spill.pull_bypassed_supersteps += 1;
                metrics.spill.pull_bypassed_bytes += step.message_bytes;
            }
        } else {
            // ---- exchange phase: route buckets, deliver in parallel ----
            // The transpose moves whole buckets (sender → destination), never
            // individual messages; delivery below moves the messages once.
            let exchange_start_us = tracer.map(Tracer::now_us);
            let exchange_started = Instant::now();
            let mut incoming: Vec<IncomingRouted<P::Message>> = (0..num_workers)
                .map(|_| Vec::with_capacity(num_workers))
                .collect();
            for out in computes {
                for (dest, bucket) in out.outbox.into_iter().enumerate() {
                    incoming[dest].push(bucket);
                }
            }
            let delivers = match phase(PhaseJob::Deliver {
                incoming,
                deadline_at,
            })
            .map_err(|f| {
                fail(
                    failure_error(f, superstep, shared.governor.deadline),
                    superstep,
                )
            })? {
                PhaseResult::Delivered(outs) => outs,
                _ => {
                    return Err(fail(
                        failure_error(PhaseFailure::MismatchedReply, superstep, None),
                        superstep,
                    ))
                }
            };
            step.exchange_time = exchange_started.elapsed();
            if let (Some(t), Some(ts)) = (tracer, exchange_start_us) {
                t.span_at(
                    "exchange",
                    Category::Runtime,
                    0,
                    ts,
                    step.exchange_time.as_micros() as u64,
                    vec![
                        ("superstep", superstep.into()),
                        ("messages", step.messages_sent.into()),
                        ("remote", step.remote_messages.into()),
                    ],
                );
            }

            spares = (0..num_workers)
                .map(|_| Vec::with_capacity(num_workers))
                .collect();
            for out in delivers {
                pending_messages += out.delivered;
                reactivated += out.reactivated;
                metrics.spill.files_replayed += out.files_replayed;
                metrics.spill.spill_read_time += out.spill_read_time;
                // Reverse transpose: destination `d` drained buckets from every
                // sender; hand each empty bucket back to its sender for reuse.
                for (sender, bucket) in out.spent.into_iter().enumerate() {
                    spares[sender].push(bucket);
                }
            }
        }
        active_vertices = not_halted + reactivated;

        // ---- barrier governance checks (coordinator) ----
        // Resident estimate: the value store plus the messages now parked
        // in the inboxes for the next superstep. An injected OOM fault
        // reports the check as failed regardless of real usage.
        let oom_injected = shared.faults.trip_oom_at_barrier(superstep);
        if shared.governor.max_resident_bytes.is_some() || oom_injected {
            let used = num_nodes as u64 * std::mem::size_of::<P::VertexValue>() as u64
                + pending_messages * std::mem::size_of::<P::Message>() as u64;
            let budget = shared.governor.max_resident_bytes.unwrap_or(0);
            if oom_injected || used > budget {
                return Err(fail(
                    PregelError::BudgetExceeded {
                        superstep,
                        what: "resident value-store bytes",
                        used: used.max(budget.saturating_add(1)),
                        budget,
                    },
                    superstep,
                ));
            }
        }
        // Coordinator-side watchdog: catches a superstep that overran its
        // deadline between two worker self-checks.
        if let (Some(at), Some(deadline)) = (deadline_at, shared.governor.deadline) {
            if Instant::now() >= at {
                return Err(fail(
                    PregelError::DeadlineExceeded {
                        superstep,
                        worker: None,
                        deadline,
                    },
                    superstep,
                ));
            }
        }

        // The residual between the measured superstep wall-clock and the
        // four metered phases: job dispatch, reply collection, and barrier
        // waiting. Saturating because the per-worker maxima of compute and
        // combine can land on different workers.
        let wall = master_started.elapsed();
        step.barrier_time = wall.saturating_sub(
            step.master_time + step.compute_time + step.combine_time + step.exchange_time,
        );
        if let (Some(t), Some(ts)) = (tracer, step_start_us) {
            t.span_at(
                "superstep",
                Category::Runtime,
                0,
                ts,
                wall.as_micros() as u64,
                vec![
                    ("superstep", superstep.into()),
                    ("computed", step.active_vertices.into()),
                    ("messages", step.messages_sent.into()),
                ],
            );
            t.counter(
                "active_vertices",
                Category::Runtime,
                vec![("active", active_vertices.into())],
            );
        }

        if let Some(f) = &feed {
            let switched = last_pulled.is_some_and(|p| p != step.pulled);
            f.record_superstep(
                &step,
                wall,
                active_vertices,
                num_nodes,
                step_spilled_bytes,
                switched,
            );
        }
        last_pulled = Some(step.pulled);

        metrics.record(step);
        superstep += 1;
    }

    // `+=` so a resumed run accumulates on top of the restored elapsed.
    metrics.elapsed += start.elapsed();
    Ok(())
}

/// Per-worker results of one compute + combine phase.
struct ComputeOut<M> {
    agg: AggMap,
    /// Vertices whose kernel ran.
    computed: u32,
    /// Vertices in this range left unhalted after the kernel ran.
    not_halted: u32,
    /// Outgoing messages, bucketed by destination worker, combined and
    /// metered.
    outbox: RoutedOutbox<M>,
    messages_sent: u64,
    message_bytes: u64,
    remote_messages: u64,
    remote_message_bytes: u64,
    compute_time: Duration,
    combine_time: Duration,
    /// Sealed buckets this worker pushed to disk to honor its budget share.
    buckets_spilled: u64,
    /// Metered message bytes inside those buckets (already counted in
    /// `message_bytes`; spilling never changes the structural metrics).
    spilled_message_bytes: u64,
    /// On-disk size of the spill files (payload + magic + checksum).
    spill_file_bytes: u64,
    spill_write_time: Duration,
}

/// Per-worker results of one delivery phase.
struct DeliverOut<M> {
    /// Messages moved into this worker's inbox (next superstep's pending).
    delivered: u64,
    /// Halted vertices reactivated by a delivered message.
    reactivated: u32,
    /// Drained buckets (in sender order) handed back so their capacity can
    /// be recycled into the senders' next outboxes.
    spent: IncomingBuckets<M>,
    /// Spill files replayed (and deleted) during this delivery.
    files_replayed: u64,
    spill_read_time: Duration,
}

/// Per-worker results of one gather phase (a gathered superstep's
/// replacement for exchange + delivery). The message counters meter what
/// the equivalent push superstep would have put on the wire, per
/// sender-worker segment, so structural metrics stay bit-identical
/// across schedules.
struct GatherOut {
    /// Messages folded into this worker's inboxes (next superstep's
    /// pending).
    delivered: u64,
    /// Halted vertices reactivated by a gathered message.
    reactivated: u32,
    messages_sent: u64,
    message_bytes: u64,
    /// Messages whose sender lives on a different worker.
    remote_messages: u64,
    remote_message_bytes: u64,
}

/// Jobs sent to a pooled worker.
enum Job<M> {
    Compute {
        superstep: u32,
        spare: RawOutbox<M>,
        pull: PullMode,
        deadline_at: Option<Instant>,
    },
    Deliver {
        incoming: IncomingRouted<M>,
        deadline_at: Option<Instant>,
    },
    Gather {
        superstep: u32,
        mode: PullMode,
        deadline_at: Option<Instant>,
    },
    Snapshot,
    Finish,
}

/// Replies from a pooled worker.
enum Reply<M> {
    Computed {
        worker: usize,
        out: ComputeOut<M>,
    },
    Delivered {
        worker: usize,
        out: DeliverOut<M>,
    },
    Gathered {
        worker: usize,
        out: GatherOut,
    },
    Snapshotted {
        worker: usize,
        out: SnapshotOut,
    },
    /// The worker failed this phase (caught panic, spill error, deadline)
    /// and parked itself; the driver aborts the run with the details.
    Failed(WorkerFailure),
}

fn collect_compute_replies<M>(
    reply_rx: &mpsc::Receiver<Reply<M>>,
    num_workers: usize,
) -> Result<Vec<ComputeOut<M>>, PhaseFailure> {
    let mut outs: Vec<Option<ComputeOut<M>>> = (0..num_workers).map(|_| None).collect();
    for _ in 0..num_workers {
        match reply_rx.recv() {
            Ok(Reply::Computed { worker, out }) => outs[worker] = Some(out),
            Ok(Reply::Failed(failure)) => return Err(PhaseFailure::Worker(failure)),
            Err(_) => return Err(PhaseFailure::ChannelClosed),
            Ok(_) => return Err(PhaseFailure::MismatchedReply),
        }
    }
    outs.into_iter()
        .map(|o| o.ok_or(PhaseFailure::MismatchedReply))
        .collect()
}

fn collect_deliver_replies<M>(
    reply_rx: &mpsc::Receiver<Reply<M>>,
    num_workers: usize,
) -> Result<Vec<DeliverOut<M>>, PhaseFailure> {
    let mut outs: Vec<Option<DeliverOut<M>>> = (0..num_workers).map(|_| None).collect();
    for _ in 0..num_workers {
        match reply_rx.recv() {
            Ok(Reply::Delivered { worker, out }) => outs[worker] = Some(out),
            Ok(Reply::Failed(failure)) => return Err(PhaseFailure::Worker(failure)),
            Err(_) => return Err(PhaseFailure::ChannelClosed),
            Ok(_) => return Err(PhaseFailure::MismatchedReply),
        }
    }
    outs.into_iter()
        .map(|o| o.ok_or(PhaseFailure::MismatchedReply))
        .collect()
}

fn collect_gather_replies<M>(
    reply_rx: &mpsc::Receiver<Reply<M>>,
    num_workers: usize,
) -> Result<Vec<GatherOut>, PhaseFailure> {
    let mut outs: Vec<Option<GatherOut>> = (0..num_workers).map(|_| None).collect();
    for _ in 0..num_workers {
        match reply_rx.recv() {
            Ok(Reply::Gathered { worker, out }) => outs[worker] = Some(out),
            Ok(Reply::Failed(failure)) => return Err(PhaseFailure::Worker(failure)),
            Err(_) => return Err(PhaseFailure::ChannelClosed),
            Ok(_) => return Err(PhaseFailure::MismatchedReply),
        }
    }
    outs.into_iter()
        .map(|o| o.ok_or(PhaseFailure::MismatchedReply))
        .collect()
}

fn collect_snapshot_replies<M>(
    reply_rx: &mpsc::Receiver<Reply<M>>,
    num_workers: usize,
) -> Result<Vec<SnapshotOut>, PhaseFailure> {
    let mut outs: Vec<Option<SnapshotOut>> = (0..num_workers).map(|_| None).collect();
    for _ in 0..num_workers {
        match reply_rx.recv() {
            Ok(Reply::Snapshotted { worker, out }) => outs[worker] = Some(out),
            Ok(Reply::Failed(failure)) => return Err(PhaseFailure::Worker(failure)),
            Err(_) => return Err(PhaseFailure::ChannelClosed),
            Ok(_) => return Err(PhaseFailure::MismatchedReply),
        }
    }
    outs.into_iter()
        .map(|o| o.ok_or(PhaseFailure::MismatchedReply))
        .collect()
}

/// Body of a pooled worker thread: park on the job channel, execute phases
/// against the locally-owned state, return the state at shutdown so the
/// coordinator can assemble the final values.
fn worker_loop<P>(
    index: usize,
    mut state: WorkerState<P>,
    shared: &Shared<'_, P>,
    starts: &[u32],
    jobs: mpsc::Receiver<Job<P::Message>>,
    replies: mpsc::Sender<Reply<P::Message>>,
) -> WorkerState<P>
where
    P: VertexProgram + Send + Sync,
    P::VertexValue: Persist,
    P::Message: Persist,
{
    while let Ok(job) = jobs.recv() {
        let reply = match job {
            Job::Compute {
                superstep,
                spare,
                pull,
                deadline_at,
            } => {
                let cursor = AtomicU32::new(u32::MAX);
                let out = catch_unwind(AssertUnwindSafe(|| {
                    let program = read_lock(&shared.program);
                    let globals = read_lock(&shared.globals);
                    let mut store = write_lock(&shared.stores[index]);
                    state.compute_phase(
                        shared.graph,
                        &**program,
                        &globals,
                        &mut store,
                        starts,
                        superstep,
                        pull,
                        spare,
                        &shared.faults,
                        shared.tracer.as_ref(),
                        &shared.governor,
                        deadline_at,
                        &cursor,
                    )
                }));
                match out {
                    Ok(Ok(out)) => Reply::Computed { worker: index, out },
                    Ok(Err(failure)) => Reply::Failed(failure),
                    Err(payload) => Reply::Failed(WorkerFailure::from_panic(
                        index as u32,
                        Some(&cursor),
                        payload,
                    )),
                }
            }
            Job::Deliver {
                incoming,
                deadline_at,
            } => {
                let out = catch_unwind(AssertUnwindSafe(|| {
                    state.deliver_phase(incoming, shared.tracer.as_ref(), deadline_at)
                }));
                match out {
                    Ok(Ok(out)) => Reply::Delivered { worker: index, out },
                    Ok(Err(failure)) => Reply::Failed(failure),
                    Err(payload) => {
                        Reply::Failed(WorkerFailure::from_panic(index as u32, None, payload))
                    }
                }
            }
            Job::Gather {
                superstep,
                mode,
                deadline_at,
            } => {
                let out = catch_unwind(AssertUnwindSafe(|| {
                    let program = read_lock(&shared.program);
                    state.gather_phase(
                        shared.graph,
                        &**program,
                        &shared.stores,
                        starts,
                        superstep,
                        mode,
                        shared.tracer.as_ref(),
                        deadline_at,
                    )
                }));
                match out {
                    Ok(Ok(out)) => Reply::Gathered { worker: index, out },
                    Ok(Err(failure)) => Reply::Failed(failure),
                    Err(payload) => {
                        Reply::Failed(WorkerFailure::from_panic(index as u32, None, payload))
                    }
                }
            }
            Job::Snapshot => {
                let out = catch_unwind(AssertUnwindSafe(|| {
                    let store = read_lock(&shared.stores[index]);
                    state.snapshot_phase(&store.values, shared.tracer.as_ref())
                }));
                match out {
                    Ok(out) => Reply::Snapshotted { worker: index, out },
                    Err(payload) => {
                        Reply::Failed(WorkerFailure::from_panic(index as u32, None, payload))
                    }
                }
            }
            Job::Finish => break,
        };
        let failed = matches!(reply, Reply::Failed(_));
        if replies.send(reply).is_err() || failed {
            break;
        }
    }
    state
}

/// A worker's share of the computation: a contiguous vertex range with its
/// halted flags and double-buffered inboxes. Owned by one pool thread for
/// the whole run (or by the calling thread when single-worker). The vertex
/// values live apart in [`Shared::stores`] so gathered supersteps can read
/// every range.
struct WorkerState<P: VertexProgram> {
    index: usize,
    base: u32,
    halted: Vec<bool>,
    /// Messages being consumed by this superstep's vertex kernels.
    inbox_in: Vec<Vec<P::Message>>,
    /// Messages delivered for the next superstep; swapped with `inbox_in`
    /// at the end of each delivery, retaining both buffers' capacity.
    inbox_out: Vec<Vec<P::Message>>,
}

impl<P: VertexProgram> WorkerState<P> {
    fn new(index: usize, starts: &[u32]) -> Self {
        let base = starts[index];
        let len = (starts[index + 1] - base) as usize;
        WorkerState {
            index,
            base,
            halted: vec![false; len],
            inbox_in: (0..len).map(|_| Vec::new()).collect(),
            inbox_out: (0..len).map(|_| Vec::new()).collect(),
        }
    }

    /// Rebuilds a worker's state from a snapshot's vertex-indexed slices.
    /// The restored inbox becomes `inbox_in`: it holds the messages the
    /// checkpointed superstep was about to consume.
    fn from_restored(
        index: usize,
        base: u32,
        halted: Vec<bool>,
        inbox_in: Vec<Vec<P::Message>>,
    ) -> Self {
        let len = halted.len();
        WorkerState {
            index,
            base,
            halted,
            inbox_in,
            inbox_out: (0..len).map(|_| Vec::new()).collect(),
        }
    }

    /// Serializes this worker's range for a checkpoint: values, halted
    /// flags, and the pending inbox, each in local vertex order. The
    /// values come from this worker's [`VertexStore`], read-locked by the
    /// caller.
    fn snapshot_phase(
        &self,
        store_values: &[P::VertexValue],
        tracer: Option<&Tracer>,
    ) -> SnapshotOut
    where
        P::VertexValue: Persist,
        P::Message: Persist,
    {
        let start_us = tracer.map(Tracer::now_us);
        let mut values = Vec::new();
        for v in store_values {
            v.persist(&mut values);
        }
        let mut halted = Vec::new();
        for h in &self.halted {
            h.persist(&mut halted);
        }
        let mut inbox = Vec::new();
        for slot in &self.inbox_in {
            slot.persist(&mut inbox);
        }
        if let Some(t) = tracer {
            t.span(
                "snapshot",
                Category::Ckpt,
                self.index as u32 + 1,
                start_us.unwrap_or(0),
                vec![("bytes", (values.len() + halted.len() + inbox.len()).into())],
            );
        }
        SnapshotOut {
            values,
            halted,
            inbox,
        }
    }

    /// Runs the vertex kernels for this range, then combines, meters, and
    /// (past the worker's budget share) spills the routed outgoing buckets
    /// — all inside the worker.
    ///
    /// `cursor` tracks the vertex whose kernel is running (`u32::MAX`
    /// outside the vertex loop) so a panic caught by the caller can be
    /// attributed. Returns a [`WorkerFailure`] instead of panicking for
    /// every failure the phase itself can observe: deadline overruns
    /// (checked every 256 vertices) and spill I/O errors.
    #[allow(clippy::too_many_arguments)] // one per phase input, all distinct
    fn compute_phase(
        &mut self,
        graph: &Graph,
        program: &P,
        globals: &Globals,
        store: &mut VertexStore<P>,
        starts: &[u32],
        superstep: u32,
        pull: PullMode,
        spare: RawOutbox<P::Message>,
        faults: &FaultPlan,
        tracer: Option<&Tracer>,
        governor: &Governor,
        deadline_at: Option<Instant>,
        cursor: &AtomicU32,
    ) -> Result<ComputeOut<P::Message>, WorkerFailure>
    where
        P::Message: Persist,
    {
        let worker = self.index as u32;
        if faults.trip_panic_in_compute(superstep, worker) {
            panic!(
                "injected fault: compute panic at superstep {superstep} on worker {}",
                self.index
            );
        }
        if faults.trip_hang_in_compute(superstep, worker) {
            // Simulated wedged kernel: spin until the deadline watchdog
            // cancels the phase. A 5s backstop keeps a misconfigured test
            // (hang fault, no deadline) from wedging the whole suite.
            let hung_at = Instant::now();
            loop {
                if let Some(at) = deadline_at {
                    if Instant::now() >= at {
                        return Err(WorkerFailure::Deadline { worker });
                    }
                }
                if hung_at.elapsed() > Duration::from_secs(5) {
                    return Err(WorkerFailure::Deadline { worker });
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        let compute_start_us = tracer.map(Tracer::now_us);
        let compute_started = Instant::now();
        let num_workers = starts.len() - 1;
        // Recycled buckets from the previous exchange: empty, but with the
        // capacity earlier supersteps grew. Pad on the first superstep.
        let mut outbox = spare;
        outbox.resize_with(num_workers, Vec::new);
        debug_assert!(outbox.iter().all(|b| b.is_empty()));
        let VertexStore {
            values,
            captured,
            sent,
        } = store;
        let len = values.len();
        // Intra-superstep gather scratch: reset here, consumed by this
        // superstep's gather phase. A vertex the loop below skips sends
        // nothing, exactly like push.
        match pull {
            PullMode::Unsupported => {}
            PullMode::Captured => {
                captured.clear();
                captured.resize(len, None);
            }
            PullMode::Recomputed => {
                sent.clear();
                sent.resize(len, false);
            }
        }
        let mut agg = AggMap::new();
        let mut computed: u32 = 0;
        let mut voted_halt: u32 = 0;
        for local in 0..len {
            if self.halted[local] && self.inbox_in[local].is_empty() {
                continue;
            }
            // Cooperative watchdog: cheap enough to leave in the hot loop
            // (one branch when unbudgeted), frequent enough that a slow —
            // not wedged — kernel is cancelled within 256 vertices.
            if local & 0xFF == 0 {
                if let Some(at) = deadline_at {
                    if Instant::now() >= at {
                        cursor.store(u32::MAX, Ordering::Relaxed);
                        return Err(WorkerFailure::Deadline { worker });
                    }
                }
            }
            cursor.store(self.base + local as u32, Ordering::Relaxed);
            self.halted[local] = false;
            computed += 1;
            let mut ctx = VertexContext {
                id: NodeId(self.base + local as u32),
                superstep,
                graph,
                broadcast: globals,
                agg: &mut agg,
                outbox: &mut outbox,
                range_starts: starts,
                halted: &mut self.halted[local],
                pull: match pull {
                    PullMode::Unsupported => PullSink::Route,
                    PullMode::Captured => PullSink::Capture(&mut captured[local]),
                    PullMode::Recomputed => PullSink::Mark(&mut sent[local]),
                },
            };
            program.vertex_compute(&mut ctx, &mut values[local], &self.inbox_in[local]);
            if self.halted[local] {
                voted_halt += 1;
            }
            // Drain the slot but keep its capacity for the next delivery.
            self.inbox_in[local].clear();
        }
        cursor.store(u32::MAX, Ordering::Relaxed);
        let compute_time = compute_started.elapsed();

        // Sender-side combining (Pregel's combiner API): fold same-
        // destination messages within each bucket before they hit the wire.
        // A stable sort keeps the per-destination order of uncombinable
        // messages intact.
        let combine_start_us = tracer.map(Tracer::now_us);
        let combine_started = Instant::now();
        if program.has_combiner() {
            for bucket in &mut outbox {
                bucket.sort_by_key(|(dst, _)| *dst);
                let drained = std::mem::take(bucket);
                for (dst, m) in drained {
                    match bucket.last_mut() {
                        Some((prev_dst, prev)) if *prev_dst == dst => {
                            match program.combine(prev, &m) {
                                Some(combined) => *prev = combined,
                                None => bucket.push((dst, m)),
                            }
                        }
                        _ => bucket.push((dst, m)),
                    }
                }
            }
        }
        // Metering happens after combining (combined messages are what
        // would cross the wire), inside the worker.
        let mut messages_sent: u64 = 0;
        let mut message_bytes: u64 = 0;
        let mut remote_messages: u64 = 0;
        let mut remote_message_bytes: u64 = 0;
        for (dest_worker, bucket) in outbox.iter().enumerate() {
            for (_, m) in bucket {
                messages_sent += 1;
                let bytes = program.message_bytes(m);
                message_bytes += bytes;
                if dest_worker != self.index {
                    remote_messages += 1;
                    remote_message_bytes += bytes;
                }
            }
        }
        let combine_time = combine_started.elapsed();

        if let Some(t) = tracer {
            let tid = self.index as u32 + 1;
            let max_bucket = outbox.iter().map(Vec::len).max().unwrap_or(0);
            t.span_at(
                "compute",
                Category::Runtime,
                tid,
                compute_start_us.unwrap_or(0),
                compute_time.as_micros() as u64,
                vec![
                    ("superstep", superstep.into()),
                    ("computed", computed.into()),
                ],
            );
            t.span_at(
                "combine",
                Category::Runtime,
                tid,
                combine_start_us.unwrap_or(0),
                combine_time.as_micros() as u64,
                vec![
                    ("superstep", superstep.into()),
                    ("messages", messages_sent.into()),
                    ("bytes", message_bytes.into()),
                    ("remote", remote_messages.into()),
                    ("max_bucket", max_bucket.into()),
                ],
            );
        }

        // ---- spill: enforce this worker's share of the message budget ----
        // Runs strictly after combining and metering, so every structural
        // metric (messages, bytes, per-superstep counts) is bit-identical
        // whether or not a bucket spills. Sealed buckets are pushed to disk
        // largest-first (ties by destination index — deterministic for a
        // fixed budget and worker count) until the resident outgoing bytes
        // fit the share.
        let mut buckets_spilled: u64 = 0;
        let mut spilled_message_bytes: u64 = 0;
        let mut spill_file_bytes: u64 = 0;
        let mut spill_write_time = Duration::ZERO;
        let mut routed: RoutedOutbox<P::Message> = Vec::with_capacity(outbox.len());
        if let Some(share) = governor.share_per_worker {
            let bucket_bytes: Vec<u64> = outbox
                .iter()
                .map(|b| b.iter().map(|(_, m)| program.message_bytes(m)).sum())
                .collect();
            let mut resident: u64 = bucket_bytes.iter().sum();
            let mut order: Vec<usize> = (0..outbox.len()).collect();
            order.sort_by_key(|&d| (std::cmp::Reverse(bucket_bytes[d]), d));
            let mut spill = vec![false; outbox.len()];
            for &d in &order {
                if resident <= share || bucket_bytes[d] == 0 {
                    break;
                }
                spill[d] = true;
                resident -= bucket_bytes[d];
            }
            for (dest, bucket) in outbox.into_iter().enumerate() {
                if !spill[dest] {
                    routed.push(RoutedBucket::Mem(bucket));
                    continue;
                }
                let spill_start_us = tracer.map(Tracer::now_us);
                let spill_started = Instant::now();
                let path = governor.spill_path(superstep, self.index, dest);
                let written = if faults.trip_fail_spill_write(superstep) {
                    Err(CkptError::Io(std::io::Error::other(
                        "injected fault: spill write failure",
                    )))
                } else {
                    write_spill(&path, &bucket)
                };
                let file_bytes = match written {
                    Ok(b) => b,
                    Err(source) => {
                        return Err(WorkerFailure::Spill {
                            worker,
                            op: "write",
                            source,
                        })
                    }
                };
                buckets_spilled += 1;
                spilled_message_bytes += bucket_bytes[dest];
                spill_file_bytes += file_bytes;
                spill_write_time += spill_started.elapsed();
                if let Some(t) = tracer {
                    t.span_at(
                        "spill_write",
                        Category::Spill,
                        worker + 1,
                        spill_start_us.unwrap_or(0),
                        spill_started.elapsed().as_micros() as u64,
                        vec![
                            ("superstep", superstep.into()),
                            ("dest", dest.into()),
                            ("messages", bucket.len().into()),
                            ("file_bytes", file_bytes.into()),
                        ],
                    );
                }
                let messages = bucket.len() as u64;
                // The drained bucket rides along so its capacity is
                // recycled exactly like a resident bucket's.
                let mut spare = bucket;
                spare.clear();
                routed.push(RoutedBucket::Spilled {
                    path,
                    messages,
                    spare,
                });
            }
        } else {
            routed.extend(outbox.into_iter().map(RoutedBucket::Mem));
        }

        Ok(ComputeOut {
            agg,
            computed,
            not_halted: computed - voted_halt,
            outbox: routed,
            messages_sent,
            message_bytes,
            remote_messages,
            remote_message_bytes,
            compute_time,
            combine_time,
            buckets_spilled,
            spilled_message_bytes,
            spill_file_bytes,
            spill_write_time,
        })
    }

    /// A gathered superstep's replacement for exchange + delivery: each
    /// owned vertex walks its in-edges (reverse CSR) and folds the
    /// senders' messages in place, without the messages ever entering an
    /// outbox.
    ///
    /// Determinism mirrors push exactly. `in_neighbors` yields in-edges in
    /// forward-edge-id order — (sender ascending, adjacency position
    /// ascending) — which is precisely the order the push path's stable
    /// sort-by-destination leaves a sender bucket in, and senders group
    /// into ascending worker segments just like delivery appends buckets
    /// in ascending sender-worker order. The combiner folds within a
    /// segment only (push combines within one sender's bucket only), so
    /// the resulting inbox contents, message/byte meters, and reactivation
    /// counts are bit-identical to a push superstep's.
    #[allow(clippy::too_many_arguments)] // one per phase input, all distinct
    fn gather_phase(
        &mut self,
        graph: &Graph,
        program: &P,
        stores: &[RwLock<VertexStore<P>>],
        starts: &[u32],
        superstep: u32,
        mode: PullMode,
        tracer: Option<&Tracer>,
        deadline_at: Option<Instant>,
    ) -> Result<GatherOut, WorkerFailure> {
        let worker = self.index as u32;
        let start_us = tracer.map(Tracer::now_us);
        // Every store read-locked for the whole phase. Safe: compute and
        // gather are barrier-separated, so no worker holds its write lock
        // here.
        let guards: Vec<_> = stores.iter().map(read_lock).collect();
        let has_combiner = program.has_combiner();
        let mut delivered: u64 = 0;
        let mut reactivated: u32 = 0;
        let mut messages_sent: u64 = 0;
        let mut message_bytes: u64 = 0;
        let mut remote_messages: u64 = 0;
        let mut remote_message_bytes: u64 = 0;
        for local in 0..self.halted.len() {
            // Cooperative watchdog, same cadence as the compute loop.
            if local & 0xFF == 0 {
                if let Some(at) = deadline_at {
                    if Instant::now() >= at {
                        return Err(WorkerFailure::Deadline { worker });
                    }
                }
            }
            let inbox = &mut self.inbox_out[local];
            debug_assert!(inbox.is_empty());
            // Sender-worker segment cursor; in-edges arrive with ascending
            // sender ids, so it only moves forward.
            let mut sw = 0usize;
            let mut seg_start = 0usize;
            for (src, eid) in graph.in_neighbors(NodeId(self.base + local as u32)) {
                while src.0 >= starts[sw + 1] {
                    // Segment boundary: meter the fold results as the
                    // messages sender-worker `sw` would have put on the
                    // wire.
                    let n = (inbox.len() - seg_start) as u64;
                    if n > 0 {
                        let bytes: u64 = inbox[seg_start..]
                            .iter()
                            .map(|m| program.message_bytes(m))
                            .sum();
                        messages_sent += n;
                        message_bytes += bytes;
                        if sw != self.index {
                            remote_messages += n;
                            remote_message_bytes += bytes;
                        }
                        seg_start = inbox.len();
                    }
                    sw += 1;
                }
                let src_local = (src.0 - starts[sw]) as usize;
                let m = match mode {
                    PullMode::Captured => match &guards[sw].captured[src_local] {
                        Some(m) => m.clone(),
                        None => continue,
                    },
                    PullMode::Recomputed => {
                        if !guards[sw].sent[src_local] {
                            continue;
                        }
                        program.pull_message(graph, src, eid, &guards[sw].values[src_local])
                    }
                    PullMode::Unsupported => {
                        unreachable!("gather phase dispatched with no pull mode")
                    }
                };
                if has_combiner && inbox.len() > seg_start {
                    let prev = inbox.last_mut().expect("segment is non-empty");
                    match program.combine(prev, &m) {
                        Some(combined) => *prev = combined,
                        None => inbox.push(m),
                    }
                } else {
                    inbox.push(m);
                }
            }
            // Close the final segment.
            let n = (inbox.len() - seg_start) as u64;
            if n > 0 {
                let bytes: u64 = inbox[seg_start..]
                    .iter()
                    .map(|m| program.message_bytes(m))
                    .sum();
                messages_sent += n;
                message_bytes += bytes;
                if sw != self.index {
                    remote_messages += n;
                    remote_message_bytes += bytes;
                }
            }
            delivered += inbox.len() as u64;
            if self.halted[local] && !inbox.is_empty() {
                reactivated += 1;
            }
        }
        drop(guards);
        if let Some(t) = tracer {
            t.span(
                "gather",
                Category::Runtime,
                self.index as u32 + 1,
                start_us.unwrap_or(0),
                vec![
                    ("superstep", superstep.into()),
                    ("delivered", delivered.into()),
                    ("reactivated", reactivated.into()),
                    ("remote", remote_messages.into()),
                ],
            );
        }
        // Same double-buffer handoff as delivery: the gathered messages
        // become the next superstep's `inbox_in`.
        std::mem::swap(&mut self.inbox_in, &mut self.inbox_out);
        Ok(GatherOut {
            delivered,
            reactivated,
            messages_sent,
            message_bytes,
            remote_messages,
            remote_message_bytes,
        })
    }

    /// Moves incoming messages into this worker's out-buffer inbox — zero
    /// clones on the exchange path — preserving ascending sender-worker
    /// order, then swaps the double buffer. Spilled buckets are replayed
    /// from disk (into their carried-along spare, so the file contents land
    /// in the same allocation a resident bucket would occupy) at the exact
    /// position their sender holds in the order, so delivery order is
    /// identical to an unspilled run; each replayed file is deleted.
    fn deliver_phase(
        &mut self,
        incoming: IncomingRouted<P::Message>,
        tracer: Option<&Tracer>,
        deadline_at: Option<Instant>,
    ) -> Result<DeliverOut<P::Message>, WorkerFailure>
    where
        P::Message: Persist,
    {
        let worker = self.index as u32;
        let start_us = tracer.map(Tracer::now_us);
        let mut delivered: u64 = 0;
        let mut reactivated: u32 = 0;
        let mut files_replayed: u64 = 0;
        let mut spill_read_time = Duration::ZERO;
        // Largest single inbox after delivery — the per-vertex memory
        // high-water mark. Only tracked when traced.
        let mut inbox_hwm: usize = 0;
        let traced = tracer.is_some();
        let base = self.base as usize;
        let mut spent: IncomingBuckets<P::Message> = Vec::with_capacity(incoming.len());
        for routed in incoming {
            // Cooperative watchdog, once per sender bucket.
            if let Some(at) = deadline_at {
                if Instant::now() >= at {
                    return Err(WorkerFailure::Deadline { worker });
                }
            }
            let mut bucket = match routed {
                RoutedBucket::Mem(bucket) => bucket,
                RoutedBucket::Spilled {
                    path,
                    messages,
                    mut spare,
                } => {
                    let read_started = Instant::now();
                    if let Err(source) = read_spill_into(&path, messages, &mut spare) {
                        return Err(WorkerFailure::Spill {
                            worker,
                            op: "read",
                            source,
                        });
                    }
                    spill_read_time += read_started.elapsed();
                    files_replayed += 1;
                    // Replay is single-use; a failed delete is harmless
                    // (the run directory is per-run and temp-scoped).
                    let _ = std::fs::remove_file(&path);
                    spare
                }
            };
            for (dst, m) in bucket.drain(..) {
                let local = dst as usize - base;
                if self.halted[local] && self.inbox_out[local].is_empty() {
                    reactivated += 1;
                }
                self.inbox_out[local].push(m);
                if traced {
                    inbox_hwm = inbox_hwm.max(self.inbox_out[local].len());
                }
                delivered += 1;
            }
            spent.push(bucket);
        }
        if let Some(t) = tracer {
            t.span(
                "deliver",
                Category::Runtime,
                self.index as u32 + 1,
                start_us.unwrap_or(0),
                vec![
                    ("delivered", delivered.into()),
                    ("reactivated", reactivated.into()),
                    ("inbox_hwm", inbox_hwm.into()),
                    ("files_replayed", files_replayed.into()),
                ],
            );
        }
        // `inbox_in` was fully drained during the vertex phase; after the
        // swap it holds the next superstep's messages and the drained
        // buffer (capacity intact) becomes the next delivery target.
        std::mem::swap(&mut self.inbox_in, &mut self.inbox_out);
        Ok(DeliverOut {
            delivered,
            reactivated,
            // Hand the drained buckets back for outbox recycling.
            spent,
            files_replayed,
            spill_read_time,
        })
    }
}

/// Splits vertices into `num_workers` contiguous ranges balanced by
/// `1 + out_degree` weight. Returns `num_workers + 1` range starts.
fn partition(graph: &Graph, num_workers: usize) -> Vec<u32> {
    let n = graph.num_nodes();
    let total: u64 = n as u64 + graph.num_edges() as u64;
    let mut starts = Vec::with_capacity(num_workers + 1);
    starts.push(0u32);
    let mut acc: u64 = 0;
    let mut next_cut = 1;
    for v in 0..n {
        acc += 1 + graph.out_degree(NodeId(v)) as u64;
        while next_cut < num_workers && acc >= next_cut as u64 * total / num_workers as u64 {
            starts.push(v + 1);
            next_cut += 1;
        }
    }
    while starts.len() < num_workers {
        starts.push(n);
    }
    starts.push(n);
    debug_assert_eq!(starts.len(), num_workers + 1);
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{GlobalValue, ReduceOp};
    use gm_graph::gen;

    /// Sums all vertex ids into a global via aggregation, checks the master
    /// sees it next superstep.
    struct SumIds {
        observed: Option<i64>,
    }

    impl VertexProgram for SumIds {
        type VertexValue = ();
        type Message = ();

        fn message_bytes(&self, _m: &()) -> u64 {
            0
        }

        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            if ctx.superstep() == 1 {
                self.observed = Some(ctx.agg_or("S", GlobalValue::Int(0)).as_int());
                MasterDecision::Halt
            } else {
                MasterDecision::Continue
            }
        }

        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, ()>,
            _value: &mut (),
            _messages: &[()],
        ) {
            let id = ctx.id().0 as i64;
            ctx.reduce_global("S", ReduceOp::Sum, GlobalValue::Int(id));
        }
    }

    #[test]
    fn aggregates_reach_master_next_superstep() {
        let g = gen::path(10);
        for workers in [1, 2, 3, 4] {
            let mut p = SumIds { observed: None };
            let cfg = PregelConfig {
                num_workers: workers,
                max_supersteps: 10,
                ..PregelConfig::default()
            };
            let r = run(&g, &mut p, |_| (), &cfg).unwrap();
            assert_eq!(p.observed, Some(45), "workers = {workers}");
            assert_eq!(r.metrics.supersteps, 2);
        }
    }

    /// Forwards a token along a path; vertex i receives it at superstep i.
    struct Token;

    impl VertexProgram for Token {
        type VertexValue = u32; // superstep at which the token arrived
        type Message = u64;

        fn message_bytes(&self, _m: &u64) -> u64 {
            8
        }

        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            // Run until nothing is active (everything votes to halt).
            let _ = ctx;
            MasterDecision::Continue
        }

        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, u64>,
            value: &mut u32,
            messages: &[u64],
        ) {
            let has_token = (ctx.superstep() == 0 && ctx.id().0 == 0) || !messages.is_empty();
            if has_token {
                *value = ctx.superstep();
                ctx.send_to_nbrs(ctx.superstep() as u64 + 1);
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn message_delivery_and_vote_to_halt() {
        let g = gen::path(6);
        let r = run(&g, &mut Token, |_| 0, &PregelConfig::sequential()).unwrap();
        for v in 0..6u32 {
            assert_eq!(r.values[v as usize], v);
        }
        // 5 messages of 8 bytes each.
        assert_eq!(r.metrics.total_messages, 5);
        assert_eq!(r.metrics.total_message_bytes, 40);
        // Natural halt once everything is quiet.
        assert!(r.metrics.supersteps >= 6);
    }

    #[test]
    fn vote_to_halt_semantics_match_across_worker_counts() {
        let g = gen::path(9);
        let base = run(&g, &mut Token, |_| 0, &PregelConfig::sequential()).unwrap();
        for workers in [2usize, 3, 5] {
            let r = run(&g, &mut Token, |_| 0, &PregelConfig::with_workers(workers)).unwrap();
            assert_eq!(r.values, base.values, "workers = {workers}");
            assert_eq!(r.metrics.supersteps, base.metrics.supersteps);
            assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
            // Per-superstep active counts are structural, too.
            let actives: Vec<u32> = r
                .metrics
                .per_superstep
                .iter()
                .map(|s| s.active_vertices)
                .collect();
            let base_actives: Vec<u32> = base
                .metrics
                .per_superstep
                .iter()
                .map(|s| s.active_vertices)
                .collect();
            assert_eq!(actives, base_actives, "workers = {workers}");
        }
    }

    /// Each vertex collects sender ids; checks delivery order is ascending
    /// by sender regardless of worker count.
    struct Collect;

    impl VertexProgram for Collect {
        type VertexValue = Vec<u32>;
        type Message = u32;

        fn message_bytes(&self, _m: &u32) -> u64 {
            4
        }

        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            if ctx.superstep() == 2 {
                MasterDecision::Halt
            } else {
                MasterDecision::Continue
            }
        }

        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, u32>,
            value: &mut Vec<u32>,
            messages: &[u32],
        ) {
            if ctx.superstep() == 0 {
                let id = ctx.id().0;
                ctx.send_to_nbrs(id);
            } else {
                value.extend_from_slice(messages);
            }
        }
    }

    #[test]
    fn delivery_order_is_sender_ascending_for_any_worker_count() {
        let g = gen::rmat(128, 512, 99);
        let baseline = run(
            &g,
            &mut Collect,
            |_| Vec::new(),
            &PregelConfig::sequential(),
        )
        .unwrap()
        .values;
        for v in &baseline {
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "not sorted: {v:?}");
        }
        for workers in [2, 3, 5, 8] {
            let cfg = PregelConfig {
                num_workers: workers,
                max_supersteps: 10,
                ..PregelConfig::default()
            };
            let r = run(&g, &mut Collect, |_| Vec::new(), &cfg).unwrap();
            assert_eq!(r.values, baseline, "workers = {workers}");
        }
    }

    #[test]
    fn per_phase_timing_is_metered() {
        let g = gen::rmat(256, 2048, 3);
        let cfg = PregelConfig {
            num_workers: 3,
            max_supersteps: 10,
            ..PregelConfig::default()
        };
        let r = run(&g, &mut Collect, |_| Vec::new(), &cfg).unwrap();
        assert!(r.metrics.compute_time > Duration::ZERO);
        assert!(r.metrics.exchange_time > Duration::ZERO);
        assert_eq!(
            r.metrics.per_superstep.len() as u32 + 1,
            r.metrics.supersteps
        );
        // Totals are the sums of the per-superstep entries.
        let exchange_sum: Duration = r
            .metrics
            .per_superstep
            .iter()
            .map(|s| s.exchange_time)
            .sum();
        assert_eq!(exchange_sum, r.metrics.exchange_time);
    }

    /// Pins the documented merge order for floating-point `Sum` aggregates:
    /// vertex order inside each worker, then ascending worker order across
    /// workers — bit-reproducible for a fixed worker count.
    #[test]
    fn float_sum_merges_partials_in_worker_order() {
        fn contribution(id: u32) -> f64 {
            // Magnitude-skewed terms make the sum rounding-sensitive, so
            // this would catch a merge-order change.
            match id {
                0 => 0.1,
                1 => 0.2,
                2 => 0.3,
                3 => 1e16,
                4 => 1.0,
                _ => -1e16,
            }
        }

        struct FloatSum {
            observed: Option<f64>,
        }

        impl VertexProgram for FloatSum {
            type VertexValue = ();
            type Message = ();

            fn message_bytes(&self, _m: &()) -> u64 {
                0
            }

            fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
                if ctx.superstep() == 1 {
                    self.observed = Some(ctx.agg_or("F", GlobalValue::Double(0.0)).as_double());
                    MasterDecision::Halt
                } else {
                    MasterDecision::Continue
                }
            }

            fn vertex_compute(
                &self,
                ctx: &mut VertexContext<'_, '_, ()>,
                _value: &mut (),
                _messages: &[()],
            ) {
                ctx.reduce_global(
                    "F",
                    ReduceOp::Sum,
                    GlobalValue::Double(contribution(ctx.id().0)),
                );
            }
        }

        let g = gen::path(6);
        for workers in [1usize, 2, 3] {
            let starts = partition(&g, workers);
            // Expected: per-worker partials folded in vertex order, merged
            // in ascending worker order.
            let mut expected: Option<f64> = None;
            for w in 0..workers {
                let mut partial: Option<f64> = None;
                for v in starts[w]..starts[w + 1] {
                    partial = Some(match partial {
                        None => contribution(v),
                        Some(p) => p + contribution(v),
                    });
                }
                if let Some(p) = partial {
                    expected = Some(match expected {
                        None => p,
                        Some(e) => e + p,
                    });
                }
            }
            let expected = expected.unwrap();
            // Reproducible across repeated runs at the same worker count.
            for _ in 0..2 {
                let mut p = FloatSum { observed: None };
                let cfg = PregelConfig {
                    num_workers: workers,
                    max_supersteps: 5,
                    ..PregelConfig::default()
                };
                run(&g, &mut p, |_| (), &cfg).unwrap();
                assert_eq!(
                    p.observed.unwrap().to_bits(),
                    expected.to_bits(),
                    "workers = {workers}"
                );
            }
        }
    }

    #[test]
    fn superstep_limit_is_enforced() {
        struct Forever;
        impl VertexProgram for Forever {
            type VertexValue = ();
            type Message = ();
            fn message_bytes(&self, _m: &()) -> u64 {
                0
            }
            fn master_compute(&mut self, _ctx: &mut MasterContext<'_>) -> MasterDecision {
                MasterDecision::Continue
            }
            fn vertex_compute(
                &self,
                _ctx: &mut VertexContext<'_, '_, ()>,
                _value: &mut (),
                _messages: &[()],
            ) {
            }
        }
        let g = gen::path(3);
        for workers in [1usize, 2] {
            let cfg = PregelConfig {
                num_workers: workers,
                max_supersteps: 5,
                ..PregelConfig::default()
            };
            // Variant assertions below look through any post-mortem wrap so
            // the suite also passes with GM_POST_MORTEM_DIR armed (as CI does).
            let (err, _) = run(&g, &mut Forever, |_| (), &cfg)
                .unwrap_err()
                .detach_post_mortem();
            assert!(matches!(
                err,
                PregelError::SuperstepLimitExceeded { limit: 5 }
            ));
            assert!(err.to_string().contains("superstep limit"));
        }
    }

    #[test]
    fn zero_workers_is_invalid() {
        let g = gen::path(3);
        let cfg = PregelConfig {
            num_workers: 0,
            max_supersteps: 5,
            ..PregelConfig::default()
        };
        let err = run(&g, &mut Token, |_| 0, &cfg).unwrap_err();
        assert!(matches!(err, PregelError::InvalidConfig(_)));
    }

    #[test]
    fn empty_graph_runs() {
        let g = gen::path(0);
        let r = run(&g, &mut Token, |_| 0, &PregelConfig::default()).unwrap();
        assert!(r.values.is_empty());
    }

    #[test]
    fn default_config_uses_available_parallelism() {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(PregelConfig::default().num_workers, cores);
        // The old capped behaviour remains expressible.
        assert_eq!(PregelConfig::with_workers(4).num_workers, 4);
    }

    #[test]
    fn partition_covers_all_vertices() {
        let g = gen::rmat(100, 1000, 5);
        for w in 1..10 {
            let starts = partition(&g, w);
            assert_eq!(starts.len(), w + 1);
            assert_eq!(starts[0], 0);
            assert_eq!(*starts.last().unwrap(), 100);
            assert!(starts.windows(2).all(|s| s[0] <= s[1]));
        }
    }

    #[test]
    fn remote_messages_depend_on_partition() {
        let g = gen::cycle(16);
        let r1 = run(
            &g,
            &mut Collect,
            |_| Vec::new(),
            &PregelConfig::sequential(),
        )
        .unwrap();
        assert_eq!(r1.metrics.remote_messages, 0);
        let cfg = PregelConfig {
            num_workers: 4,
            max_supersteps: 10,
            ..PregelConfig::default()
        };
        let r4 = run(&g, &mut Collect, |_| Vec::new(), &cfg).unwrap();
        assert!(r4.metrics.remote_messages > 0);
        // Total counts are worker-independent.
        assert_eq!(r1.metrics.total_messages, r4.metrics.total_messages);
        assert_eq!(
            r1.metrics.total_message_bytes,
            r4.metrics.total_message_bytes
        );
    }

    /// The in-memory tracer sees one span per worker per phase per
    /// superstep, coordinator events on tid 0, and a final halt marker —
    /// on both the inline (1 worker) and pooled executors.
    #[test]
    fn tracer_captures_per_worker_superstep_events() {
        let g = gen::rmat(128, 512, 7);
        for workers in [1usize, 2] {
            let (tracer, sink) = Tracer::in_memory();
            let cfg = PregelConfig {
                num_workers: workers,
                max_supersteps: 10,
                tracer: Some(tracer),
                ..PregelConfig::default()
            };
            let r = run(&g, &mut Collect, |_| Vec::new(), &cfg).unwrap();
            let events = sink.events();
            let count = |n: &str| events.iter().filter(|e| e.name == n).count();
            // Compute supersteps, excluding the final master-only halt step.
            let steps = (r.metrics.supersteps - 1) as usize;
            assert_eq!(count("superstep"), steps, "workers = {workers}");
            assert_eq!(count("master"), steps + 1);
            assert_eq!(count("exchange"), steps);
            assert_eq!(count("compute_skew"), steps);
            assert_eq!(count("halt"), 1);
            for name in ["compute", "combine", "deliver"] {
                assert_eq!(count(name), workers * steps, "{name}, workers = {workers}");
            }
            // Worker spans carry 1-based worker tids; coordinator events
            // stay on tid 0.
            assert!(events
                .iter()
                .filter(|e| e.name == "compute" || e.name == "deliver")
                .all(|e| e.tid >= 1 && e.tid as usize <= workers));
            assert!(events
                .iter()
                .filter(|e| e.name == "superstep" || e.name == "master")
                .all(|e| e.tid == 0));
            // With the barrier residual metered, phase_total() is at least
            // the sum of the four explicit phases.
            for s in &r.metrics.per_superstep {
                assert!(
                    s.phase_total()
                        >= s.compute_time + s.combine_time + s.exchange_time + s.master_time
                );
            }
        }
    }

    // ---- checkpointing / fault injection / recovery ----

    use crate::checkpoint::{CheckpointConfig, RecoveryPolicy};
    use gm_ckpt::{CheckpointStore, FaultPlan};

    fn fresh_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU32, Ordering};
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "gm-pregel-ckpt-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Runs a fixed number of supersteps on a cycle, accumulating mutable
    /// master state (`total`) from an aggregate — so an exact resume must
    /// restore both vertex values and the master's memory.
    struct Rounds {
        total: i64,
    }

    impl VertexProgram for Rounds {
        type VertexValue = u32;
        type Message = u32;

        fn message_bytes(&self, _m: &u32) -> u64 {
            4
        }

        fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
            self.total += ctx.agg_or("n", GlobalValue::Int(0)).as_int();
            if ctx.superstep() == 8 {
                MasterDecision::Halt
            } else {
                MasterDecision::Continue
            }
        }

        fn vertex_compute(
            &self,
            ctx: &mut VertexContext<'_, '_, u32>,
            value: &mut u32,
            messages: &[u32],
        ) {
            ctx.reduce_global("n", ReduceOp::Sum, GlobalValue::Int(1));
            *value += messages.iter().sum::<u32>();
            ctx.send_to_nbrs(1);
        }

        // Persist the master's accumulator so snapshots capture it.
        fn save_master_state(&self, out: &mut Vec<u8>) {
            self.total.persist(out);
        }

        fn restore_master_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CkptError> {
            self.total = Persist::restore(r)?;
            Ok(())
        }
    }

    impl Rounds {
        fn new() -> Self {
            Rounds { total: 0 }
        }

        fn baseline(workers: usize) -> (PregelResult<u32>, i64) {
            let g = gen::cycle(12);
            let mut p = Rounds::new();
            let r = run(&g, &mut p, |_| 0, &PregelConfig::with_workers(workers)).unwrap();
            (r, p.total)
        }
    }

    #[test]
    fn zero_checkpoint_interval_is_invalid() {
        let g = gen::cycle(4);
        let cfg = PregelConfig::sequential()
            .with_checkpoints(CheckpointConfig::new(fresh_dir("zero"), 0));
        let err = run(&g, &mut Rounds::new(), |_| 0, &cfg).unwrap_err();
        assert!(matches!(err, PregelError::InvalidConfig(_)));
    }

    #[test]
    fn injected_panic_surfaces_as_worker_panicked() {
        let g = gen::cycle(12);
        for workers in [1usize, 3] {
            let mut cfg = PregelConfig::with_workers(workers);
            cfg.faults = FaultPlan::builder().panic_in_compute(4, None).build();
            let (err, _) = run(&g, &mut Rounds::new(), |_| 0, &cfg)
                .unwrap_err()
                .detach_post_mortem();
            assert!(
                matches!(
                    err,
                    PregelError::WorkerPanicked {
                        superstep: 4,
                        worker: Some(_),
                        ..
                    }
                ),
                "workers = {workers}, got {err}"
            );
        }
    }

    #[test]
    fn resume_continues_exactly_where_snapshot_left_off() {
        let (base, base_total) = Rounds::baseline(2);
        let g = gen::cycle(12);
        let dir = fresh_dir("resume");

        // First attempt: checkpoint every 3 supersteps, die at superstep 5.
        let cfg = PregelConfig::with_workers(2)
            .with_checkpoints(CheckpointConfig::new(&dir, 3))
            .with_faults(FaultPlan::builder().panic_in_compute(5, None).build());
        let (err, _) = run(&g, &mut Rounds::new(), |_| 0, &cfg)
            .unwrap_err()
            .detach_post_mortem();
        assert!(matches!(
            err,
            PregelError::WorkerPanicked { superstep: 5, .. }
        ));
        let store = CheckpointStore::create(&dir).unwrap();
        assert_eq!(
            store.list().unwrap().len(),
            1,
            "one snapshot (superstep 3) before the fault"
        );

        // Second attempt: fresh program, resume from the snapshot.
        let cfg = PregelConfig::with_workers(2)
            .with_checkpoints(CheckpointConfig::new(&dir, 3).with_resume(true));
        let mut p = Rounds::new();
        let r = run(&g, &mut p, |_| 0, &cfg).unwrap();
        assert_eq!(r.values, base.values);
        assert_eq!(r.metrics.supersteps, base.metrics.supersteps);
        assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
        assert_eq!(
            r.metrics.total_message_bytes,
            base.metrics.total_message_bytes
        );
        assert_eq!(p.total, base_total, "master state must resume too");
        assert_eq!(r.metrics.recovery.restores, 1);
        // The resumed run checkpoints at superstep 6 (3 is skipped).
        assert_eq!(r.metrics.recovery.checkpoints_written, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_with_recovery_matches_uninterrupted_run() {
        for workers in [1usize, 2, 4] {
            let (base, base_total) = Rounds::baseline(workers);
            let g = gen::cycle(12);
            let dir = fresh_dir("supervised");
            let cfg = PregelConfig::with_workers(workers)
                .with_checkpoints(CheckpointConfig::new(&dir, 2))
                .with_faults(FaultPlan::builder().panic_in_compute(5, None).build())
                .with_recovery(RecoveryPolicy::with_max_restarts(2));
            let mut p = Rounds::new();
            let r = run_with_recovery(&g, &mut p, |_| 0, &cfg).unwrap();
            assert_eq!(r.values, base.values, "workers = {workers}");
            assert_eq!(r.metrics.supersteps, base.metrics.supersteps);
            assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
            assert_eq!(p.total, base_total);
            assert_eq!(r.metrics.recovery.restarts, 1);
            assert_eq!(r.metrics.recovery.restores, 1);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn corrupt_snapshot_is_discarded_in_favor_of_older_one() {
        let (base, base_total) = Rounds::baseline(2);
        let g = gen::cycle(12);
        let dir = fresh_dir("fallback");
        // Snapshot at 2 stays valid, snapshot at 4 is corrupted on disk,
        // then the job dies at superstep 5; recovery must fall back to 2.
        let cfg = PregelConfig::with_workers(2)
            .with_checkpoints(CheckpointConfig::new(&dir, 2))
            .with_faults(
                FaultPlan::builder()
                    .corrupt_snapshot(4)
                    .panic_in_compute(5, None)
                    .build(),
            )
            .with_recovery(RecoveryPolicy::with_max_restarts(1));
        let mut p = Rounds::new();
        let r = run_with_recovery(&g, &mut p, |_| 0, &cfg).unwrap();
        assert_eq!(r.values, base.values);
        assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
        assert_eq!(p.total, base_total);
        assert_eq!(r.metrics.recovery.corrupt_snapshots_discarded, 1);
        assert_eq!(r.metrics.recovery.restarts, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_failure_is_counted_not_fatal() {
        let g = gen::cycle(12);
        let dir = fresh_dir("wfail");
        let cfg = PregelConfig::sequential()
            .with_checkpoints(CheckpointConfig::new(&dir, 2))
            .with_faults(FaultPlan::builder().fail_checkpoint_write(2).build());
        let r = run(&g, &mut Rounds::new(), |_| 0, &cfg).unwrap();
        assert_eq!(r.metrics.recovery.checkpoint_failures, 1);
        // Supersteps 4, 6 and 8 still checkpointed.
        assert_eq!(r.metrics.recovery.checkpoints_written, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_without_checkpoints_restarts_from_scratch() {
        let (base, base_total) = Rounds::baseline(2);
        let g = gen::cycle(12);
        let cfg = PregelConfig::with_workers(2)
            .with_faults(FaultPlan::builder().panic_in_compute(5, None).build())
            .with_recovery(RecoveryPolicy::with_max_restarts(1));
        let mut p = Rounds::new();
        let r = run_with_recovery(&g, &mut p, |_| 0, &cfg).unwrap();
        assert_eq!(r.values, base.values);
        // The master state was rolled back before the retry, so `total` is
        // not double-counted.
        assert_eq!(p.total, base_total);
        assert_eq!(r.metrics.recovery.restarts, 1);
        assert_eq!(r.metrics.recovery.restores, 0);
    }

    #[test]
    fn snapshot_keep_prunes_older_files() {
        let g = gen::cycle(12);
        let dir = fresh_dir("keep");
        let cfg = PregelConfig::sequential()
            .with_checkpoints(CheckpointConfig::new(&dir, 2).with_keep(1));
        run(&g, &mut Rounds::new(), |_| 0, &cfg).unwrap();
        let store = CheckpointStore::create(&dir).unwrap();
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, 8, "only the newest snapshot survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- resource governance ----

    #[test]
    fn zero_deadline_is_invalid() {
        let g = gen::cycle(4);
        let cfg = PregelConfig::sequential()
            .with_budget(ResourceBudget::unbounded().with_superstep_deadline(Duration::ZERO));
        let err = run(&g, &mut Rounds::new(), |_| 0, &cfg).unwrap_err();
        assert!(matches!(err, PregelError::InvalidConfig(_)));
    }

    #[test]
    fn forced_spill_is_structurally_invisible() {
        let (base, base_total) = Rounds::baseline(2);
        let g = gen::cycle(12);
        let dir = fresh_dir("spill");
        // A 1-byte budget spills every nonempty bucket every superstep.
        let cfg = PregelConfig::with_workers(2).with_budget(
            ResourceBudget::unbounded()
                .with_max_message_bytes(1)
                .with_spill_dir(&dir),
        );
        let mut p = Rounds::new();
        let r = run(&g, &mut p, |_| 0, &cfg).unwrap();
        assert_eq!(r.values, base.values);
        assert_eq!(r.metrics.supersteps, base.metrics.supersteps);
        assert_eq!(r.metrics.total_messages, base.metrics.total_messages);
        assert_eq!(
            r.metrics.total_message_bytes,
            base.metrics.total_message_bytes
        );
        assert_eq!(p.total, base_total);
        assert!(
            r.metrics.spill.buckets_spilled > 0,
            "budget must force spills"
        );
        assert_eq!(
            r.metrics.spill.files_replayed, r.metrics.spill.buckets_spilled,
            "every spilled bucket must be replayed"
        );
        assert_eq!(
            r.metrics.spill.spilled_message_bytes, r.metrics.total_message_bytes,
            "a 1-byte budget spills every metered byte"
        );
        // Replay deletes the files; the per-run directory is removed on
        // drop, leaving the configured spill dir empty.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .map(|d| d.filter_map(Result::ok).collect())
            .unwrap_or_default();
        assert!(leftovers.is_empty(), "leftover spill state: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn caught_panic_is_attributed_to_worker_and_vertex() {
        /// Panics inside the kernel of one specific vertex at superstep 2.
        struct PoisonedVertex;
        impl VertexProgram for PoisonedVertex {
            type VertexValue = u32;
            type Message = u32;
            fn message_bytes(&self, _m: &u32) -> u64 {
                4
            }
            fn master_compute(&mut self, _ctx: &mut MasterContext<'_>) -> MasterDecision {
                MasterDecision::Continue
            }
            fn vertex_compute(
                &self,
                ctx: &mut VertexContext<'_, '_, u32>,
                _value: &mut u32,
                _messages: &[u32],
            ) {
                if ctx.superstep() == 2 && ctx.id().0 == 7 {
                    panic!("poisoned vertex kernel");
                }
                ctx.send_to_nbrs(1);
            }
        }

        let g = gen::cycle(12);
        for workers in [1usize, 2] {
            let mut cfg = PregelConfig::with_workers(workers);
            cfg.max_supersteps = 10;
            let (err, _) = run(&g, &mut PoisonedVertex, |_| 0, &cfg)
                .unwrap_err()
                .detach_post_mortem();
            match err {
                PregelError::WorkerPanicked {
                    superstep,
                    worker,
                    vertex,
                    detail,
                } => {
                    assert_eq!(superstep, 2, "workers = {workers}");
                    assert!(worker.is_some());
                    assert_eq!(vertex, Some(7), "cursor attributes the vertex");
                    assert!(detail.contains("poisoned vertex"), "got detail {detail:?}");
                }
                other => panic!("expected WorkerPanicked, got {other}"),
            }
        }
    }

    #[test]
    fn wasted_work_is_accounted_across_restarts() {
        let g = gen::cycle(12);
        let cfg = PregelConfig::with_workers(2)
            .with_faults(FaultPlan::builder().panic_in_compute(5, None).build())
            .with_recovery(RecoveryPolicy::with_max_restarts(1));
        let r = run_with_recovery(&g, &mut Rounds::new(), |_| 0, &cfg).unwrap();
        assert_eq!(r.metrics.recovery.restarts, 1);
        // No checkpoints: the failed attempt re-ran supersteps 0..5 for
        // nothing.
        assert_eq!(r.metrics.recovery.wasted_supersteps, 5);
        assert!(r.metrics.recovery.wasted_time > Duration::ZERO);
    }

    #[test]
    fn identical_failures_exhausting_restarts_are_quarantined() {
        let g = gen::cycle(12);
        let cfg = PregelConfig::with_workers(2)
            .with_faults(
                FaultPlan::builder()
                    .panic_in_compute(4, Some(0))
                    .times(u32::MAX)
                    .build(),
            )
            .with_recovery(RecoveryPolicy::with_max_restarts(2));
        let (err, _) = run_with_recovery(&g, &mut Rounds::new(), |_| 0, &cfg)
            .unwrap_err()
            .detach_post_mortem();
        match err {
            PregelError::Quarantined {
                superstep,
                worker,
                attempts,
                ..
            } => {
                assert_eq!(superstep, 4);
                assert_eq!(worker, Some(0));
                assert_eq!(attempts, 3, "initial run + 2 restarts");
            }
            other => panic!("expected Quarantined, got {other}"),
        }
    }

    #[test]
    fn distinct_failures_exhausting_restarts_are_not_quarantined() {
        let g = gen::cycle(12);
        // Two different failure sites: the streak is broken, so exhausting
        // the budget returns the last error itself.
        let cfg = PregelConfig::with_workers(2)
            .with_faults(
                FaultPlan::builder()
                    .panic_in_compute(3, Some(0))
                    .panic_in_compute(5, Some(1))
                    .build(),
            )
            .with_recovery(RecoveryPolicy::with_max_restarts(1));
        let (err, _) = run_with_recovery(&g, &mut Rounds::new(), |_| 0, &cfg)
            .unwrap_err()
            .detach_post_mortem();
        assert!(
            matches!(err, PregelError::WorkerPanicked { superstep: 5, .. }),
            "got {err}"
        );
    }
}
