//! The global objects map: master → vertex broadcasts and vertex → master
//! reductions.
//!
//! GPS exposes a single string-keyed map (`Global.put` / `Global.get`). We
//! split it by direction, which is how generated programs actually use it:
//!
//! * [`Globals`] — written by the master at the start of a superstep, read
//!   by every vertex during the same superstep (e.g. the broadcast `_state`
//!   number, or a global `K` threshold).
//! * [`AggMap`] — accumulated by vertices during a superstep with an
//!   explicit [`ReduceOp`], merged across workers at the barrier, and handed
//!   to the master at the start of the *next* superstep (e.g. an `IntSum`
//!   global object).

use crate::value::{GlobalValue, ReduceOp};
use std::collections::BTreeMap;

/// Master-to-vertex broadcast map.
///
/// Keys are short stable strings chosen by the program (generated code uses
/// names like `"_state"`, `"K"`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Globals {
    map: BTreeMap<String, GlobalValue>,
}

impl Globals {
    /// Creates an empty broadcast map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `key` to `value`, replacing any previous broadcast.
    pub fn put(&mut self, key: &str, value: GlobalValue) {
        self.map.insert(key.to_owned(), value);
    }

    /// Reads a broadcast value.
    pub fn get(&self, key: &str) -> Option<GlobalValue> {
        self.map.get(key).copied()
    }

    /// Reads a broadcast value, panicking with the key name if missing.
    ///
    /// # Panics
    ///
    /// Panics if `key` was never broadcast.
    pub fn expect(&self, key: &str) -> GlobalValue {
        match self.get(key) {
            Some(v) => v,
            None => panic!("global {key:?} was not broadcast"),
        }
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of live broadcasts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no broadcast is set.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, GlobalValue)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Vertex-to-master reduction map for one superstep.
///
/// Every write carries its [`ReduceOp`]; writes to the same key must agree on
/// the operator (mixing `Sum` and `Min` under one key is a program bug and
/// panics).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AggMap {
    map: BTreeMap<String, (ReduceOp, GlobalValue)>,
}

impl AggMap {
    /// Creates an empty aggregation map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `value` into `key` under `op`.
    ///
    /// # Panics
    ///
    /// Panics if a previous write to `key` used a different operator, or if
    /// the operand types disagree.
    pub fn reduce(&mut self, key: &str, op: ReduceOp, value: GlobalValue) {
        match self.map.get_mut(key) {
            Some((prev_op, acc)) => {
                assert_eq!(
                    *prev_op, op,
                    "conflicting reduce ops for global {key:?}: {prev_op} vs {op}"
                );
                *acc = op.combine(*acc, value);
            }
            None => {
                self.map.insert(key.to_owned(), (op, value));
            }
        }
    }

    /// Merges another worker's map into this one (barrier-time merge).
    ///
    /// # Merge-order guarantee
    ///
    /// The runtime merges per-worker partial aggregates in **ascending
    /// worker order**, and each worker folds its vertices' writes in
    /// **vertex order**. Integer, boolean, min/max and node-valued
    /// aggregates are order-insensitive, so they are identical for every
    /// worker count. Floating-point `Sum` aggregates are order-sensitive
    /// under rounding; the fixed fold order makes them **bit-reproducible
    /// for a fixed worker count** (and graph/partition), though the rounded
    /// result may differ across *different* worker counts. A test in the
    /// runtime pins this order.
    ///
    /// # Panics
    ///
    /// Panics on operator or type conflicts, as in [`AggMap::reduce`].
    pub fn merge(&mut self, other: &AggMap) {
        for (key, (op, value)) in &other.map {
            self.reduce(key, *op, *value);
        }
    }

    /// Reads the aggregate for `key`, if any vertex wrote it.
    pub fn get(&self, key: &str) -> Option<GlobalValue> {
        self.map.get(key).map(|(_, v)| *v)
    }

    /// Reads the aggregate for `key`, falling back to `default` when no
    /// vertex wrote it this superstep (the identity-element convention the
    /// generated master code uses).
    pub fn get_or(&self, key: &str, default: GlobalValue) -> GlobalValue {
        self.get(key).unwrap_or(default)
    }

    /// Removes every entry (called by the runtime between supersteps).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Number of keys written this superstep.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing was aggregated.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(key, op, value)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, ReduceOp, GlobalValue)> {
        self.map.iter().map(|(k, (op, v))| (k.as_str(), *op, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_put_get() {
        let mut g = Globals::new();
        assert!(g.is_empty());
        g.put("_state", GlobalValue::Int(3));
        assert_eq!(g.get("_state"), Some(GlobalValue::Int(3)));
        assert_eq!(g.expect("_state"), GlobalValue::Int(3));
        assert_eq!(g.len(), 1);
        g.put("_state", GlobalValue::Int(4));
        assert_eq!(g.get("_state"), Some(GlobalValue::Int(4)));
        g.clear();
        assert!(g.get("_state").is_none());
    }

    #[test]
    #[should_panic(expected = "was not broadcast")]
    fn globals_expect_missing_panics() {
        Globals::new().expect("missing");
    }

    #[test]
    fn agg_reduce_accumulates() {
        let mut a = AggMap::new();
        a.reduce("S", ReduceOp::Sum, GlobalValue::Int(2));
        a.reduce("S", ReduceOp::Sum, GlobalValue::Int(5));
        assert_eq!(a.get("S"), Some(GlobalValue::Int(7)));
        assert_eq!(
            a.get_or("missing", GlobalValue::Int(0)),
            GlobalValue::Int(0)
        );
    }

    #[test]
    fn agg_merge_is_commutative_for_ints() {
        let mut a = AggMap::new();
        a.reduce("S", ReduceOp::Sum, GlobalValue::Int(2));
        a.reduce("m", ReduceOp::Min, GlobalValue::Int(9));
        let mut b = AggMap::new();
        b.reduce("S", ReduceOp::Sum, GlobalValue::Int(3));
        b.reduce("m", ReduceOp::Min, GlobalValue::Int(4));
        b.reduce("only_b", ReduceOp::Or, GlobalValue::Bool(true));

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("S"), Some(GlobalValue::Int(5)));
        assert_eq!(ab.get("m"), Some(GlobalValue::Int(4)));
        assert_eq!(ab.get("only_b"), Some(GlobalValue::Bool(true)));
    }

    #[test]
    #[should_panic(expected = "conflicting reduce ops")]
    fn agg_op_conflict_panics() {
        let mut a = AggMap::new();
        a.reduce("S", ReduceOp::Sum, GlobalValue::Int(2));
        a.reduce("S", ReduceOp::Min, GlobalValue::Int(1));
    }

    #[test]
    fn agg_iter_in_key_order() {
        let mut a = AggMap::new();
        a.reduce("z", ReduceOp::Sum, GlobalValue::Int(1));
        a.reduce("a", ReduceOp::Sum, GlobalValue::Int(2));
        let keys: Vec<&str> = a.iter().map(|(k, _, _)| k).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }
}
