//! Resource governance: budgets, the spill-file codec, and the per-run
//! [`Governor`].
//!
//! # Budget semantics
//!
//! A [`ResourceBudget`] bounds three resources:
//!
//! * **in-flight message bytes** (`max_message_bytes`) — metered message
//!   bytes buffered between a superstep's combine and its delivery. The
//!   budget is split evenly across workers; when a worker's sealed
//!   destination buckets would exceed its share, whole buckets are
//!   *spilled* to disk and replayed (CRC-checked, in the same
//!   deterministic ascending-sender order) at delivery. Spilling is
//!   transparent: values, supersteps, and message/byte metrics are
//!   bit-identical to an unspilled run.
//! * **superstep wall-clock** (`superstep_deadline`) — a cooperative
//!   watchdog. Workers check the deadline between vertex kernels and
//!   between delivery buckets; the coordinator re-checks at the barrier. An
//!   over-budget superstep fails with
//!   [`PregelError::DeadlineExceeded`](crate::PregelError::DeadlineExceeded)
//!   instead of wedging the barrier. The check is cooperative: a kernel
//!   that never returns control cannot be interrupted mid-vertex.
//! * **resident value-store bytes** (`max_resident_bytes`) — a lower-bound
//!   estimate of vertex values plus undelivered inbox messages, checked at
//!   the barrier;
//!   [`PregelError::BudgetExceeded`](crate::PregelError::BudgetExceeded)
//!   when over.
//!
//! All three funnel into `run_with_recovery`'s checkpoint-restart policy.
//!
//! # Spill-file format
//!
//! One sealed destination bucket per file: `GMSP` magic, a little-endian
//! CRC-32 of the payload, then the payload — a `u64` entry count followed
//! by `(u32 destination vertex, message)` pairs in the exact order the
//! bucket held them, encoded with the `gm-ckpt` [`Persist`] codec. Files
//! are deleted as soon as they are replayed; a run that ends cleanly
//! leaves an empty spill directory behind (and removes it).

use gm_ckpt::{crc32, ByteReader, CkptError, Persist};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Environment variable read by [`ResourceBudget::from_env`] for the
/// message-byte budget.
pub const ENV_MAX_MSG_BYTES: &str = "GM_MAX_MSG_BYTES";
/// Environment variable for the superstep deadline, in milliseconds.
pub const ENV_SUPERSTEP_DEADLINE_MS: &str = "GM_SUPERSTEP_DEADLINE_MS";
/// Environment variable for the resident value-store budget.
pub const ENV_MAX_RESIDENT_BYTES: &str = "GM_MAX_RESIDENT_BYTES";
/// Environment variable for the spill directory.
pub const ENV_SPILL_DIR: &str = "GM_SPILL_DIR";

const SPILL_MAGIC: &[u8; 4] = b"GMSP";

/// Resource limits attached to [`PregelConfig::budget`]
/// (see [crate-level docs](self) for semantics). The default is fully
/// unbounded; [`PregelConfig::default`] instead starts from
/// [`ResourceBudget::from_env`] so an environment-constrained CI job
/// governs every run in the process.
///
/// [`PregelConfig::budget`]: crate::PregelConfig::budget
/// [`PregelConfig::default`]: crate::PregelConfig
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Maximum metered message bytes held in memory between combine and
    /// delivery, across all workers. Exceeding it spills sealed buckets
    /// to disk. `None` = unbounded.
    pub max_message_bytes: Option<u64>,
    /// Maximum wall-clock for one superstep (master through delivery).
    /// `None` = no deadline.
    pub superstep_deadline: Option<Duration>,
    /// Maximum estimated resident bytes of vertex values + undelivered
    /// inbox messages. `None` = unbounded.
    pub max_resident_bytes: Option<u64>,
    /// Directory for spill files; a per-run subdirectory is created
    /// inside it. `None` uses the system temp directory.
    pub spill_dir: Option<PathBuf>,
}

impl ResourceBudget {
    /// No limits at all (the `Default`).
    pub fn unbounded() -> Self {
        ResourceBudget::default()
    }

    /// Reads the budget from `GM_MAX_MSG_BYTES`, `GM_SUPERSTEP_DEADLINE_MS`,
    /// `GM_MAX_RESIDENT_BYTES`, and `GM_SPILL_DIR`. Unset or unparsable
    /// variables leave the corresponding limit unbounded.
    pub fn from_env() -> Self {
        fn env_u64(name: &str) -> Option<u64> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        ResourceBudget {
            max_message_bytes: env_u64(ENV_MAX_MSG_BYTES),
            superstep_deadline: env_u64(ENV_SUPERSTEP_DEADLINE_MS)
                .filter(|ms| *ms > 0)
                .map(Duration::from_millis),
            max_resident_bytes: env_u64(ENV_MAX_RESIDENT_BYTES),
            spill_dir: std::env::var_os(ENV_SPILL_DIR).map(PathBuf::from),
        }
    }

    /// Sets the in-flight message-byte budget.
    pub fn with_max_message_bytes(mut self, bytes: u64) -> Self {
        self.max_message_bytes = Some(bytes);
        self
    }

    /// Sets the superstep deadline.
    pub fn with_superstep_deadline(mut self, deadline: Duration) -> Self {
        self.superstep_deadline = Some(deadline);
        self
    }

    /// Sets the resident value-store budget.
    pub fn with_max_resident_bytes(mut self, bytes: u64) -> Self {
        self.max_resident_bytes = Some(bytes);
        self
    }

    /// Sets the spill directory.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// True when no limit is set (governance is entirely inactive).
    pub fn is_unbounded(&self) -> bool {
        self.max_message_bytes.is_none()
            && self.superstep_deadline.is_none()
            && self.max_resident_bytes.is_none()
    }
}

/// Per-run resolved governance state, shared read-only with the workers.
pub(crate) struct Governor {
    /// Each worker's slice of the message budget (deterministic: depends
    /// only on the budget and the worker count, never on arrival timing).
    pub share_per_worker: Option<u64>,
    pub max_resident_bytes: Option<u64>,
    pub deadline: Option<Duration>,
    /// Per-run spill directory, created iff a message budget is set.
    run_dir: Option<PathBuf>,
    seq: AtomicU64,
}

impl Governor {
    pub fn new(budget: &ResourceBudget, num_workers: usize) -> Result<Self, CkptError> {
        let mut run_dir = None;
        if budget.max_message_bytes.is_some() {
            static RUN_IDS: AtomicU64 = AtomicU64::new(0);
            let base = budget.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
            let dir = base.join(format!(
                "gm-spill-{}-{}",
                std::process::id(),
                RUN_IDS.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir)?;
            run_dir = Some(dir);
        }
        Ok(Governor {
            share_per_worker: budget
                .max_message_bytes
                .map(|b| b / num_workers.max(1) as u64),
            max_resident_bytes: budget.max_resident_bytes,
            deadline: budget.superstep_deadline,
            run_dir,
            seq: AtomicU64::new(0),
        })
    }

    /// A fresh, unique spill-file path for one sealed bucket.
    pub fn spill_path(&self, superstep: u32, worker: usize, dest: usize) -> PathBuf {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.run_dir
            .as_deref()
            .unwrap_or(Path::new(""))
            .join(format!(
                "s{superstep:06}-w{worker:03}-d{dest:03}-{seq:08}.gmsp"
            ))
    }
}

impl Drop for Governor {
    fn drop(&mut self) {
        // A clean run replayed-and-deleted every spill file, so the run
        // directory is empty and `remove_dir` succeeds. After a failure the
        // leftover files survive for inspection (and artifact upload).
        if let Some(dir) = &self.run_dir {
            let _ = std::fs::remove_dir(dir);
        }
    }
}

/// Writes one sealed bucket as a CRC-checked spill file; returns the file
/// size in bytes.
pub(crate) fn write_spill<M: Persist>(path: &Path, bucket: &[(u32, M)]) -> Result<u64, CkptError> {
    let mut payload = Vec::new();
    (bucket.len() as u64).persist(&mut payload);
    for (dst, m) in bucket {
        dst.persist(&mut payload);
        m.persist(&mut payload);
    }
    let mut file = Vec::with_capacity(payload.len() + 8);
    file.extend_from_slice(SPILL_MAGIC);
    file.extend_from_slice(&crc32(&payload).to_le_bytes());
    file.extend_from_slice(&payload);
    std::fs::write(path, &file)?;
    Ok(file.len() as u64)
}

/// Reads a spill file back into `into` (appending, in file order),
/// validating magic, CRC, and the expected entry count.
pub(crate) fn read_spill_into<M: Persist>(
    path: &Path,
    expected: u64,
    into: &mut Vec<(u32, M)>,
) -> Result<(), CkptError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 8 {
        return Err(CkptError::Truncated);
    }
    if &bytes[..4] != SPILL_MAGIC {
        return Err(CkptError::BadMagic);
    }
    let expected_crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let payload = &bytes[8..];
    let actual_crc = crc32(payload);
    if actual_crc != expected_crc {
        return Err(CkptError::ChecksumMismatch {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    let mut r = ByteReader::new(payload);
    let count = r.read_u64()?;
    if count != expected {
        return Err(CkptError::Decode(format!(
            "spill file holds {count} messages, bucket metadata says {expected}"
        )));
    }
    into.reserve(count as usize);
    for _ in 0..count {
        let dst = u32::restore(&mut r)?;
        let m = M::restore(&mut r)?;
        into.push((dst, m));
    }
    r.expect_end()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gm-govern-{tag}-{}.gmsp", std::process::id()))
    }

    #[test]
    fn spill_file_round_trips_in_order() {
        let path = tmp("roundtrip");
        let bucket: Vec<(u32, u64)> = vec![(3, 30), (1, 10), (3, 31), (0, 0)];
        let bytes = write_spill(&path, &bucket).unwrap();
        assert!(bytes > 8);
        let mut back: Vec<(u32, u64)> = Vec::new();
        read_spill_into(&path, 4, &mut back).unwrap();
        assert_eq!(back, bucket, "replay preserves bucket order exactly");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_spill_file_fails_checksum() {
        let path = tmp("corrupt");
        write_spill(&path, &[(1u32, 7u64), (2, 8)]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 3;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut back: Vec<(u32, u64)> = Vec::new();
        let err = read_spill_into(&path, 2, &mut back).unwrap_err();
        assert!(matches!(err, CkptError::ChecksumMismatch { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let path = tmp("count");
        write_spill(&path, &[(1u32, 7u64)]).unwrap();
        let mut back: Vec<(u32, u64)> = Vec::new();
        let err = read_spill_into(&path, 2, &mut back).unwrap_err();
        assert!(matches!(err, CkptError::Decode(_)), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn env_budget_parses_and_ignores_garbage() {
        // Avoid mutating real env vars (tests run in parallel); exercise
        // the parse helper through a default-constructed budget instead.
        let b = ResourceBudget::unbounded();
        assert!(b.is_unbounded());
        let b = ResourceBudget::unbounded()
            .with_max_message_bytes(1024)
            .with_superstep_deadline(Duration::from_millis(50))
            .with_max_resident_bytes(1 << 20)
            .with_spill_dir("/tmp/x");
        assert!(!b.is_unbounded());
        assert_eq!(b.max_message_bytes, Some(1024));
        assert_eq!(b.superstep_deadline, Some(Duration::from_millis(50)));
        assert_eq!(b.max_resident_bytes, Some(1 << 20));
        assert_eq!(b.spill_dir.as_deref(), Some(Path::new("/tmp/x")));
    }

    #[test]
    fn governor_without_message_budget_creates_no_dir() {
        let gov = Governor::new(
            &ResourceBudget::unbounded().with_superstep_deadline(Duration::from_secs(1)),
            4,
        )
        .unwrap();
        assert!(gov.run_dir.is_none());
        assert_eq!(gov.share_per_worker, None);
        assert_eq!(gov.deadline, Some(Duration::from_secs(1)));
    }

    #[test]
    fn governor_splits_budget_across_workers() {
        let dir = std::env::temp_dir().join(format!("gm-govern-share-{}", std::process::id()));
        let gov = Governor::new(
            &ResourceBudget::unbounded()
                .with_max_message_bytes(1000)
                .with_spill_dir(&dir),
            4,
        )
        .unwrap();
        assert_eq!(gov.share_per_worker, Some(250));
        let run_dir = gov.run_dir.clone().unwrap();
        assert!(run_dir.is_dir());
        let p1 = gov.spill_path(3, 1, 2);
        let p2 = gov.spill_path(3, 1, 2);
        assert_ne!(p1, p2, "paths are unique per spill");
        drop(gov);
        assert!(!run_dir.exists(), "empty run dir removed on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
