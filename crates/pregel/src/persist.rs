//! [`Persist`] implementations for the runtime's coordinator-side state:
//! global values, the broadcast/aggregation maps, and the run metrics.
//!
//! These encodings are part of the snapshot format. Fields are written in
//! declaration order with the fixed little-endian codec from `gm-ckpt`, so
//! identical runs produce byte-identical sections (floats are encoded via
//! `to_bits`, map entries in key order).

use crate::globals::{AggMap, Globals};
use crate::metrics::{Metrics, RecoveryStats, SpillStats, SuperstepMetrics};
use crate::value::{GlobalValue, ReduceOp};
use gm_ckpt::{ByteReader, CkptError, Persist};

impl Persist for GlobalValue {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            GlobalValue::Int(v) => {
                out.push(0);
                v.persist(out);
            }
            GlobalValue::Double(v) => {
                out.push(1);
                v.persist(out);
            }
            GlobalValue::Bool(v) => {
                out.push(2);
                v.persist(out);
            }
            GlobalValue::Node(v) => {
                out.push(3);
                v.persist(out);
            }
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        match r.read_u8()? {
            0 => Ok(GlobalValue::Int(i64::restore(r)?)),
            1 => Ok(GlobalValue::Double(f64::restore(r)?)),
            2 => Ok(GlobalValue::Bool(bool::restore(r)?)),
            3 => Ok(GlobalValue::Node(u32::restore(r)?)),
            t => Err(CkptError::Decode(format!(
                "invalid GlobalValue tag {t:#04x}"
            ))),
        }
    }
}

impl Persist for ReduceOp {
    fn persist(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ReduceOp::Sum => 0,
            ReduceOp::Min => 1,
            ReduceOp::Max => 2,
            ReduceOp::Or => 3,
            ReduceOp::And => 4,
        });
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        match r.read_u8()? {
            0 => Ok(ReduceOp::Sum),
            1 => Ok(ReduceOp::Min),
            2 => Ok(ReduceOp::Max),
            3 => Ok(ReduceOp::Or),
            4 => Ok(ReduceOp::And),
            t => Err(CkptError::Decode(format!("invalid ReduceOp tag {t:#04x}"))),
        }
    }
}

impl Persist for Globals {
    fn persist(&self, out: &mut Vec<u8>) {
        (self.len() as u64).persist(out);
        // `iter` yields entries in key order, so the encoding is canonical.
        for (key, value) in self.iter() {
            (key.len() as u64).persist(out);
            out.extend_from_slice(key.as_bytes());
            value.persist(out);
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let len = r.read_len(1)?;
        let mut globals = Globals::new();
        for _ in 0..len {
            let key = String::restore(r)?;
            let value = GlobalValue::restore(r)?;
            globals.put(&key, value);
        }
        Ok(globals)
    }
}

impl Persist for AggMap {
    fn persist(&self, out: &mut Vec<u8>) {
        (self.len() as u64).persist(out);
        for (key, op, value) in self.iter() {
            (key.len() as u64).persist(out);
            out.extend_from_slice(key.as_bytes());
            op.persist(out);
            value.persist(out);
        }
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let len = r.read_len(1)?;
        let mut agg = AggMap::new();
        for _ in 0..len {
            let key = String::restore(r)?;
            let op = ReduceOp::restore(r)?;
            let value = GlobalValue::restore(r)?;
            // Each key appears once in the encoding, so this insert never
            // actually combines.
            agg.reduce(&key, op, value);
        }
        Ok(agg)
    }
}

impl Persist for SuperstepMetrics {
    fn persist(&self, out: &mut Vec<u8>) {
        self.active_vertices.persist(out);
        self.messages_sent.persist(out);
        self.message_bytes.persist(out);
        self.remote_messages.persist(out);
        self.remote_message_bytes.persist(out);
        self.compute_time.persist(out);
        self.combine_time.persist(out);
        self.exchange_time.persist(out);
        self.master_time.persist(out);
        self.barrier_time.persist(out);
        self.pulled.persist(out);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(SuperstepMetrics {
            active_vertices: Persist::restore(r)?,
            messages_sent: Persist::restore(r)?,
            message_bytes: Persist::restore(r)?,
            remote_messages: Persist::restore(r)?,
            remote_message_bytes: Persist::restore(r)?,
            compute_time: Persist::restore(r)?,
            combine_time: Persist::restore(r)?,
            exchange_time: Persist::restore(r)?,
            master_time: Persist::restore(r)?,
            barrier_time: Persist::restore(r)?,
            pulled: Persist::restore(r)?,
        })
    }
}

impl Persist for RecoveryStats {
    fn persist(&self, out: &mut Vec<u8>) {
        self.checkpoints_written.persist(out);
        self.checkpoint_failures.persist(out);
        self.snapshot_bytes.persist(out);
        self.restores.persist(out);
        self.corrupt_snapshots_discarded.persist(out);
        self.restarts.persist(out);
        self.wasted_supersteps.persist(out);
        self.wasted_time.persist(out);
        self.checkpoint_time.persist(out);
        self.restore_time.persist(out);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(RecoveryStats {
            checkpoints_written: Persist::restore(r)?,
            checkpoint_failures: Persist::restore(r)?,
            snapshot_bytes: Persist::restore(r)?,
            restores: Persist::restore(r)?,
            corrupt_snapshots_discarded: Persist::restore(r)?,
            restarts: Persist::restore(r)?,
            wasted_supersteps: Persist::restore(r)?,
            wasted_time: Persist::restore(r)?,
            checkpoint_time: Persist::restore(r)?,
            restore_time: Persist::restore(r)?,
        })
    }
}

impl Persist for SpillStats {
    fn persist(&self, out: &mut Vec<u8>) {
        self.buckets_spilled.persist(out);
        self.spilled_message_bytes.persist(out);
        self.spill_file_bytes.persist(out);
        self.files_replayed.persist(out);
        self.spill_write_time.persist(out);
        self.spill_read_time.persist(out);
        self.peak_in_flight_bytes.persist(out);
        self.pull_bypassed_supersteps.persist(out);
        self.pull_bypassed_bytes.persist(out);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(SpillStats {
            buckets_spilled: Persist::restore(r)?,
            spilled_message_bytes: Persist::restore(r)?,
            spill_file_bytes: Persist::restore(r)?,
            files_replayed: Persist::restore(r)?,
            spill_write_time: Persist::restore(r)?,
            spill_read_time: Persist::restore(r)?,
            peak_in_flight_bytes: Persist::restore(r)?,
            pull_bypassed_supersteps: Persist::restore(r)?,
            pull_bypassed_bytes: Persist::restore(r)?,
        })
    }
}

impl Persist for Metrics {
    fn persist(&self, out: &mut Vec<u8>) {
        self.supersteps.persist(out);
        self.total_messages.persist(out);
        self.total_message_bytes.persist(out);
        self.remote_messages.persist(out);
        self.remote_message_bytes.persist(out);
        self.elapsed.persist(out);
        self.compute_time.persist(out);
        self.combine_time.persist(out);
        self.exchange_time.persist(out);
        self.master_time.persist(out);
        self.barrier_time.persist(out);
        self.per_superstep.persist(out);
        self.recovery.persist(out);
        self.spill.persist(out);
        self.pull_supersteps.persist(out);
        self.direction_switches.persist(out);
    }

    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(Metrics {
            supersteps: Persist::restore(r)?,
            total_messages: Persist::restore(r)?,
            total_message_bytes: Persist::restore(r)?,
            remote_messages: Persist::restore(r)?,
            remote_message_bytes: Persist::restore(r)?,
            elapsed: Persist::restore(r)?,
            compute_time: Persist::restore(r)?,
            combine_time: Persist::restore(r)?,
            exchange_time: Persist::restore(r)?,
            master_time: Persist::restore(r)?,
            barrier_time: Persist::restore(r)?,
            per_superstep: Persist::restore(r)?,
            recovery: Persist::restore(r)?,
            spill: Persist::restore(r)?,
            pull_supersteps: Persist::restore(r)?,
            direction_switches: Persist::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn global_value_round_trips() {
        for v in [
            GlobalValue::Int(-42),
            GlobalValue::Double(std::f64::consts::E),
            GlobalValue::Bool(true),
            GlobalValue::Node(17),
        ] {
            assert_eq!(GlobalValue::from_bytes(&v.to_bytes()).unwrap(), v);
        }
        assert!(GlobalValue::from_bytes(&[9]).is_err());
    }

    #[test]
    fn reduce_op_round_trips() {
        for op in [
            ReduceOp::Sum,
            ReduceOp::Min,
            ReduceOp::Max,
            ReduceOp::Or,
            ReduceOp::And,
        ] {
            assert_eq!(ReduceOp::from_bytes(&op.to_bytes()).unwrap(), op);
        }
        assert!(ReduceOp::from_bytes(&[7]).is_err());
    }

    #[test]
    fn globals_round_trip_in_key_order() {
        let mut g = Globals::new();
        g.put("z", GlobalValue::Int(1));
        g.put("_state", GlobalValue::Node(3));
        g.put("K", GlobalValue::Double(0.5));
        let back = Globals::from_bytes(&g.to_bytes()).unwrap();
        assert_eq!(back, g);
        // Insertion order must not matter: the encoding is canonical.
        let mut g2 = Globals::new();
        g2.put("K", GlobalValue::Double(0.5));
        g2.put("z", GlobalValue::Int(1));
        g2.put("_state", GlobalValue::Node(3));
        assert_eq!(g.to_bytes(), g2.to_bytes());
    }

    #[test]
    fn agg_map_round_trips() {
        let mut a = AggMap::new();
        a.reduce("sum", ReduceOp::Sum, GlobalValue::Int(41));
        a.reduce("sum", ReduceOp::Sum, GlobalValue::Int(1));
        a.reduce("min", ReduceOp::Min, GlobalValue::Double(2.5));
        a.reduce("any", ReduceOp::Or, GlobalValue::Bool(false));
        let back = AggMap::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.get("sum"), Some(GlobalValue::Int(42)));
    }

    #[test]
    fn metrics_round_trip() {
        let mut m = Metrics {
            supersteps: 4,
            total_messages: 100,
            total_message_bytes: 800,
            remote_messages: 30,
            remote_message_bytes: 240,
            elapsed: Duration::from_micros(5000),
            ..Metrics::default()
        };
        m.record(SuperstepMetrics {
            active_vertices: 10,
            messages_sent: 50,
            message_bytes: 400,
            compute_time: Duration::from_micros(120),
            master_time: Duration::from_micros(3),
            ..SuperstepMetrics::default()
        });
        m.record(SuperstepMetrics {
            active_vertices: 10,
            messages_sent: 50,
            pulled: true,
            ..SuperstepMetrics::default()
        });
        m.recovery.checkpoints_written = 2;
        m.recovery.snapshot_bytes = 1234;
        m.recovery.checkpoint_time = Duration::from_micros(77);
        m.recovery.wasted_supersteps = 3;
        m.recovery.wasted_time = Duration::from_micros(55);
        m.spill.buckets_spilled = 4;
        m.spill.spill_file_bytes = 999;
        m.spill.spill_write_time = Duration::from_micros(12);
        m.spill.peak_in_flight_bytes = 4096;
        m.spill.pull_bypassed_supersteps = 1;
        m.spill.pull_bypassed_bytes = 400;

        let back = Metrics::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.supersteps, m.supersteps);
        assert_eq!(back.total_messages, m.total_messages);
        assert_eq!(back.total_message_bytes, m.total_message_bytes);
        assert_eq!(back.elapsed, m.elapsed);
        assert_eq!(back.per_superstep, m.per_superstep);
        assert_eq!(back.recovery, m.recovery);
        assert_eq!(back.spill, m.spill);
        assert_eq!(back.pull_supersteps, 1);
        assert_eq!(back.direction_switches, 1);
    }
}
