//! The vertex-program trait and the master/vertex execution contexts.

use crate::globals::{AggMap, Globals};
use crate::value::{GlobalValue, ReduceOp};
use gm_ckpt::{ByteReader, CkptError};
use gm_graph::{EdgeId, Graph, NodeId, OutNeighbors};

/// How a vertex phase's sends can be realized on the receiver side.
///
/// Reported per superstep by [`VertexProgram::pull_mode`] and consumed by
/// the runtime's `Schedule::{Pull, Auto}` scheduling: in a *gathered*
/// (pull) superstep the exchange phase is skipped entirely and each
/// receiver walks its in-edges, reading the sender's message in place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PullMode {
    /// The upcoming vertex phase cannot be gathered; the runtime must run
    /// the ordinary push exchange.
    Unsupported,
    /// The kernel's single neighbor-broadcast payload is independent of
    /// the connecting edge: the sender evaluates it once, the runtime
    /// captures it in a per-vertex slot, and each receiver clones it from
    /// that slot at gather time.
    Captured,
    /// The payload depends on the connecting edge (e.g. SSSP's
    /// `dist + e.len`): the sender only marks that its send fired, and
    /// each receiver re-evaluates the payload per in-edge via
    /// [`VertexProgram::pull_message`].
    Recomputed,
}

/// Where a vertex's sends go during the compute phase.
///
/// `Route` is the ordinary push path. Under a gathered superstep the
/// runtime installs `Capture`/`Mark` so the kernel's neighbor-broadcast is
/// absorbed into per-sender state instead of being routed — the gather
/// phase reconstructs the identical message stream receiver-side.
#[derive(Debug)]
pub(crate) enum PullSink<'a, M> {
    /// Push: route every message to its destination worker's bucket.
    Route,
    /// Captured pull: store the (edge-independent) broadcast payload.
    Capture(&'a mut Option<M>),
    /// Recomputed pull: record only that the send site fired.
    Mark(&'a mut bool),
}

/// What the master tells the framework at the start of a superstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MasterDecision {
    /// Run the vertex phase of this superstep and keep going.
    Continue,
    /// Stop the computation immediately; the vertex phase of this superstep
    /// does not run (GPS's `haltComputation()`).
    Halt,
}

/// A Pregel/GPS program: one sequential master kernel plus one
/// vertex-parallel kernel, executed once per superstep each.
///
/// Implementations must be `Send + Sync` to run: the runtime's persistent
/// worker pool shares `&self` across worker threads during the vertex phase
/// (and the coordinator's `&mut self` borrow is itself sent into the pool's
/// scope). Mutable master state lives in `self` and is only touched by
/// [`master_compute`](VertexProgram::master_compute), which runs exclusively
/// between phases.
pub trait VertexProgram {
    /// Per-vertex state (the fields of GPS's vertex class). `Sync` because
    /// gathered supersteps let every worker *read* every other worker's
    /// vertex store (behind an `RwLock`) while recomputing pulled payloads.
    type VertexValue: Clone + Send + Sync;
    /// Message payload exchanged between vertices. `Sync` for the same
    /// reason: captured payloads are cloned cross-worker at gather time.
    type Message: Clone + Send + Sync;

    /// Serialized size of a message in bytes — what the paper's "network
    /// I/O" metric counts. Return the wire size GPS's serialization would
    /// produce for this payload.
    fn message_bytes(&self, m: &Self::Message) -> u64;

    /// Whether the runtime should attempt sender-side message combining
    /// (Pregel's combiner API). When `true`, the runtime groups each
    /// worker's outgoing messages by destination and folds pairs through
    /// [`VertexProgram::combine`] before they are delivered (and before
    /// they are metered).
    fn has_combiner(&self) -> bool {
        false
    }

    /// Combines two messages addressed to the same vertex, if possible.
    /// Must be commutative and associative; return `None` to keep both.
    fn combine(&self, a: &Self::Message, b: &Self::Message) -> Option<Self::Message> {
        let _ = (a, b);
        None
    }

    /// Sequential computation at the start of each superstep (GPS's
    /// `master.compute()`). Sees the aggregates written by vertices in the
    /// *previous* superstep, and broadcasts globals visible to vertices in
    /// *this* superstep.
    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision;

    /// Vertex-parallel computation (GPS's `vertex.compute()`), invoked once
    /// per active vertex per superstep with the messages sent to this vertex
    /// in the previous superstep.
    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, Self::Message>,
        value: &mut Self::VertexValue,
        messages: &[Self::Message],
    );

    /// Whether *any* superstep of this program can run as a gathered
    /// (pull) superstep. `Schedule::Pull` refuses programs that return
    /// `false` with a structured [`PregelError::NotPullable`] instead of
    /// silently computing wrong answers.
    ///
    /// [`PregelError::NotPullable`]: crate::PregelError::NotPullable
    fn pull_supported(&self) -> bool {
        false
    }

    /// Pull flavor of the *next* vertex phase. Queried by the coordinator
    /// after [`master_compute`](VertexProgram::master_compute) returns, so
    /// state-machine programs can answer for the state the master just
    /// selected.
    ///
    /// Contract for returning anything other than
    /// [`PullMode::Unsupported`]: the phase's only send must be a
    /// broadcast to all out-neighbors ([`VertexContext::send_to_nbrs`], or
    /// [`VertexContext::mark_send`] under `Recomputed`) whose payload is a
    /// pure function of the sender's *post-kernel* value, the connecting
    /// edge, and this superstep's broadcasts. Targeted
    /// [`VertexContext::send`] calls panic in a gathered superstep.
    fn pull_mode(&self) -> PullMode {
        PullMode::Unsupported
    }

    /// Re-evaluates the message `src` sent along `edge` in this superstep,
    /// against the sender's post-kernel `src_value`. Only called in
    /// [`PullMode::Recomputed`] supersteps, for senders whose kernel marked
    /// its send site as fired.
    fn pull_message(
        &self,
        graph: &Graph,
        src: NodeId,
        edge: EdgeId,
        src_value: &Self::VertexValue,
    ) -> Self::Message {
        let _ = (graph, src, edge, src_value);
        unreachable!("pull_message is only called when pull_mode() returns Recomputed")
    }

    /// Serializes the program's mutable master state (everything
    /// [`master_compute`](VertexProgram::master_compute) reads or writes
    /// across supersteps) into the snapshot's `master` section. Programs
    /// whose master is stateless keep the default no-op; stateful programs
    /// must override both this and
    /// [`restore_master_state`](VertexProgram::restore_master_state) or a
    /// recovered run will diverge from an uninterrupted one.
    fn save_master_state(&self, out: &mut Vec<u8>) {
        let _ = out;
    }

    /// Restores the state written by
    /// [`save_master_state`](VertexProgram::save_master_state). Called on
    /// the resume path before the superstep loop re-enters; must consume
    /// exactly the bytes its counterpart wrote.
    fn restore_master_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CkptError> {
        let _ = r;
        Ok(())
    }
}

/// Context handed to [`VertexProgram::master_compute`].
#[derive(Debug)]
pub struct MasterContext<'a> {
    pub(crate) superstep: u32,
    pub(crate) aggregates: &'a AggMap,
    pub(crate) broadcast: &'a mut Globals,
    pub(crate) num_nodes: u32,
    pub(crate) active_vertices: u32,
    pub(crate) pending_messages: u64,
}

impl MasterContext<'_> {
    /// Current superstep number, starting at 0.
    pub fn superstep(&self) -> u32 {
        self.superstep
    }

    /// Number of vertices in the graph.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Vertices that will execute in this superstep's vertex phase
    /// (not halted, or reactivated by a pending message).
    pub fn active_vertices(&self) -> u32 {
        self.active_vertices
    }

    /// Messages awaiting delivery in this superstep.
    pub fn pending_messages(&self) -> u64 {
        self.pending_messages
    }

    /// Reads an aggregate written by vertices in the previous superstep.
    pub fn agg(&self, key: &str) -> Option<GlobalValue> {
        self.aggregates.get(key)
    }

    /// Reads an aggregate with a fallback identity value.
    pub fn agg_or(&self, key: &str, default: GlobalValue) -> GlobalValue {
        self.aggregates.get_or(key, default)
    }

    /// Broadcasts `key = value` to every vertex for this superstep
    /// (GPS's `Global.put` from the master).
    pub fn put_global(&mut self, key: &str, value: GlobalValue) {
        self.broadcast.put(key, value);
    }

    /// Reads back a broadcast set in this or an earlier superstep.
    pub fn get_global(&self, key: &str) -> Option<GlobalValue> {
        self.broadcast.get(key)
    }
}

/// Context handed to [`VertexProgram::vertex_compute`].
///
/// Lifetime `'a` is the per-superstep borrow; `'g` is the graph borrow.
#[derive(Debug)]
pub struct VertexContext<'a, 'g, M> {
    pub(crate) id: NodeId,
    pub(crate) superstep: u32,
    pub(crate) graph: &'g Graph,
    pub(crate) broadcast: &'a Globals,
    pub(crate) agg: &'a mut AggMap,
    /// One bucket per destination worker.
    pub(crate) outbox: &'a mut [Vec<(u32, M)>],
    /// Worker range starts; worker `w` owns `starts[w]..starts[w+1]`.
    pub(crate) range_starts: &'a [u32],
    pub(crate) halted: &'a mut bool,
    /// Where sends go this superstep (push routing or a pull sink).
    pub(crate) pull: PullSink<'a, M>,
}

impl<'g, M: Clone> VertexContext<'_, 'g, M> {
    /// This vertex's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current superstep number.
    pub fn superstep(&self) -> u32 {
        self.superstep
    }

    /// The graph being processed.
    ///
    /// Pregel vertices only know their own adjacency; programs should
    /// restrict themselves to this vertex's neighborhood (the compiler-
    /// generated programs do). The full reference is exposed for the
    /// runtime-internal iterators below.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of vertices in the graph (GPS exposes this to vertices).
    pub fn num_nodes(&self) -> u32 {
        self.graph.num_nodes()
    }

    /// Out-degree of this vertex (`getNumNbrs()` / Green-Marl `Degree()`).
    pub fn out_degree(&self) -> u32 {
        self.graph.out_degree(self.id)
    }

    /// Out-neighbors of this vertex with edge ids (for edge properties,
    /// which Pregel exposes only at the source vertex).
    pub fn out_neighbors(&self) -> OutNeighbors<'g> {
        self.graph.out_neighbors(self.id)
    }

    /// Sends `m` to every out-neighbor (GPS's `sendToNbrs`). One message is
    /// accounted per out-edge, parallel edges included.
    ///
    /// In a gathered (pull) superstep this does not route anything: the
    /// payload is captured (or the send merely marked) and receivers read
    /// it in place during the gather phase.
    pub fn send_to_nbrs(&mut self, m: M) {
        match &mut self.pull {
            PullSink::Capture(slot) => {
                **slot = Some(m);
                return;
            }
            PullSink::Mark(fired) => {
                **fired = true;
                return;
            }
            PullSink::Route => {}
        }
        // Clone per edge; route each copy to its destination's worker.
        let nbrs: OutNeighbors<'g> = self.graph.out_neighbors(self.id);
        for (t, _) in nbrs {
            self.send(t, m.clone());
        }
    }

    /// True when this superstep's sends are gathered receiver-side instead
    /// of routed (the runtime chose a pull superstep).
    pub fn pull_gathered(&self) -> bool {
        !matches!(self.pull, PullSink::Route)
    }

    /// Records that this vertex's neighbor-broadcast fired, without
    /// materializing a payload. Returns `true` when the send was absorbed
    /// by a [`PullMode::Recomputed`] gather sink — the runtime will
    /// re-evaluate the payload per in-edge via
    /// [`VertexProgram::pull_message`]. Returns `false` in a push
    /// superstep, in which case the caller must perform its ordinary
    /// per-edge sends.
    ///
    /// # Panics
    ///
    /// Panics under a [`PullMode::Captured`] sink: an edge-dependent send
    /// site cannot be captured, so reaching one means
    /// [`VertexProgram::pull_mode`] misreported the phase.
    pub fn mark_send(&mut self) -> bool {
        match &mut self.pull {
            PullSink::Mark(fired) => {
                **fired = true;
                true
            }
            PullSink::Capture(_) => {
                panic!("edge-dependent send under a Captured pull sink: pull_mode() misreported")
            }
            PullSink::Route => false,
        }
    }

    /// Sends `m` to an arbitrary vertex by id (GPS's `sendToVertex`).
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range, or if called in a gathered (pull)
    /// superstep — targeted sends cannot be reconstructed receiver-side,
    /// so a phase that performs them must report
    /// [`PullMode::Unsupported`]. Routing it anyway would silently drop
    /// the message (gathered supersteps discard the outbox).
    pub fn send(&mut self, dst: NodeId, m: M) {
        assert!(
            matches!(self.pull, PullSink::Route),
            "targeted send during a gathered superstep: pull_mode() misreported this phase"
        );
        assert!(
            dst.0 < self.graph.num_nodes(),
            "message destination {dst} out of range"
        );
        let w = self.range_starts.partition_point(|&s| s <= dst.0) - 1;
        self.outbox[w].push((dst.0, m));
    }

    /// Reads a master broadcast for this superstep.
    pub fn get_global(&self, key: &str) -> Option<GlobalValue> {
        self.broadcast.get(key)
    }

    /// Reads a master broadcast, panicking with the key name if missing.
    ///
    /// # Panics
    ///
    /// Panics if `key` was never broadcast.
    pub fn expect_global(&self, key: &str) -> GlobalValue {
        self.broadcast.expect(key)
    }

    /// Folds `value` into the named global with reduction `op`; the master
    /// observes the aggregate at the start of the next superstep.
    pub fn reduce_global(&mut self, key: &str, op: ReduceOp, value: GlobalValue) {
        self.agg.reduce(key, op, value);
    }

    /// Deactivates this vertex. It will be skipped in subsequent supersteps
    /// until a message arrives for it.
    pub fn vote_to_halt(&mut self) {
        *self.halted = true;
    }
}
