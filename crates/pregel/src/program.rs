//! The vertex-program trait and the master/vertex execution contexts.

use crate::globals::{AggMap, Globals};
use crate::value::{GlobalValue, ReduceOp};
use gm_ckpt::{ByteReader, CkptError};
use gm_graph::{Graph, NodeId, OutNeighbors};

/// What the master tells the framework at the start of a superstep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MasterDecision {
    /// Run the vertex phase of this superstep and keep going.
    Continue,
    /// Stop the computation immediately; the vertex phase of this superstep
    /// does not run (GPS's `haltComputation()`).
    Halt,
}

/// A Pregel/GPS program: one sequential master kernel plus one
/// vertex-parallel kernel, executed once per superstep each.
///
/// Implementations must be `Send + Sync` to run: the runtime's persistent
/// worker pool shares `&self` across worker threads during the vertex phase
/// (and the coordinator's `&mut self` borrow is itself sent into the pool's
/// scope). Mutable master state lives in `self` and is only touched by
/// [`master_compute`](VertexProgram::master_compute), which runs exclusively
/// between phases.
pub trait VertexProgram {
    /// Per-vertex state (the fields of GPS's vertex class).
    type VertexValue: Clone + Send;
    /// Message payload exchanged between vertices.
    type Message: Clone + Send;

    /// Serialized size of a message in bytes — what the paper's "network
    /// I/O" metric counts. Return the wire size GPS's serialization would
    /// produce for this payload.
    fn message_bytes(&self, m: &Self::Message) -> u64;

    /// Whether the runtime should attempt sender-side message combining
    /// (Pregel's combiner API). When `true`, the runtime groups each
    /// worker's outgoing messages by destination and folds pairs through
    /// [`VertexProgram::combine`] before they are delivered (and before
    /// they are metered).
    fn has_combiner(&self) -> bool {
        false
    }

    /// Combines two messages addressed to the same vertex, if possible.
    /// Must be commutative and associative; return `None` to keep both.
    fn combine(&self, a: &Self::Message, b: &Self::Message) -> Option<Self::Message> {
        let _ = (a, b);
        None
    }

    /// Sequential computation at the start of each superstep (GPS's
    /// `master.compute()`). Sees the aggregates written by vertices in the
    /// *previous* superstep, and broadcasts globals visible to vertices in
    /// *this* superstep.
    fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision;

    /// Vertex-parallel computation (GPS's `vertex.compute()`), invoked once
    /// per active vertex per superstep with the messages sent to this vertex
    /// in the previous superstep.
    fn vertex_compute(
        &self,
        ctx: &mut VertexContext<'_, '_, Self::Message>,
        value: &mut Self::VertexValue,
        messages: &[Self::Message],
    );

    /// Serializes the program's mutable master state (everything
    /// [`master_compute`](VertexProgram::master_compute) reads or writes
    /// across supersteps) into the snapshot's `master` section. Programs
    /// whose master is stateless keep the default no-op; stateful programs
    /// must override both this and
    /// [`restore_master_state`](VertexProgram::restore_master_state) or a
    /// recovered run will diverge from an uninterrupted one.
    fn save_master_state(&self, out: &mut Vec<u8>) {
        let _ = out;
    }

    /// Restores the state written by
    /// [`save_master_state`](VertexProgram::save_master_state). Called on
    /// the resume path before the superstep loop re-enters; must consume
    /// exactly the bytes its counterpart wrote.
    fn restore_master_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CkptError> {
        let _ = r;
        Ok(())
    }
}

/// Context handed to [`VertexProgram::master_compute`].
#[derive(Debug)]
pub struct MasterContext<'a> {
    pub(crate) superstep: u32,
    pub(crate) aggregates: &'a AggMap,
    pub(crate) broadcast: &'a mut Globals,
    pub(crate) num_nodes: u32,
    pub(crate) active_vertices: u32,
    pub(crate) pending_messages: u64,
}

impl MasterContext<'_> {
    /// Current superstep number, starting at 0.
    pub fn superstep(&self) -> u32 {
        self.superstep
    }

    /// Number of vertices in the graph.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Vertices that will execute in this superstep's vertex phase
    /// (not halted, or reactivated by a pending message).
    pub fn active_vertices(&self) -> u32 {
        self.active_vertices
    }

    /// Messages awaiting delivery in this superstep.
    pub fn pending_messages(&self) -> u64 {
        self.pending_messages
    }

    /// Reads an aggregate written by vertices in the previous superstep.
    pub fn agg(&self, key: &str) -> Option<GlobalValue> {
        self.aggregates.get(key)
    }

    /// Reads an aggregate with a fallback identity value.
    pub fn agg_or(&self, key: &str, default: GlobalValue) -> GlobalValue {
        self.aggregates.get_or(key, default)
    }

    /// Broadcasts `key = value` to every vertex for this superstep
    /// (GPS's `Global.put` from the master).
    pub fn put_global(&mut self, key: &str, value: GlobalValue) {
        self.broadcast.put(key, value);
    }

    /// Reads back a broadcast set in this or an earlier superstep.
    pub fn get_global(&self, key: &str) -> Option<GlobalValue> {
        self.broadcast.get(key)
    }
}

/// Context handed to [`VertexProgram::vertex_compute`].
///
/// Lifetime `'a` is the per-superstep borrow; `'g` is the graph borrow.
#[derive(Debug)]
pub struct VertexContext<'a, 'g, M> {
    pub(crate) id: NodeId,
    pub(crate) superstep: u32,
    pub(crate) graph: &'g Graph,
    pub(crate) broadcast: &'a Globals,
    pub(crate) agg: &'a mut AggMap,
    /// One bucket per destination worker.
    pub(crate) outbox: &'a mut [Vec<(u32, M)>],
    /// Worker range starts; worker `w` owns `starts[w]..starts[w+1]`.
    pub(crate) range_starts: &'a [u32],
    pub(crate) halted: &'a mut bool,
}

impl<'g, M: Clone> VertexContext<'_, 'g, M> {
    /// This vertex's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Current superstep number.
    pub fn superstep(&self) -> u32 {
        self.superstep
    }

    /// The graph being processed.
    ///
    /// Pregel vertices only know their own adjacency; programs should
    /// restrict themselves to this vertex's neighborhood (the compiler-
    /// generated programs do). The full reference is exposed for the
    /// runtime-internal iterators below.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of vertices in the graph (GPS exposes this to vertices).
    pub fn num_nodes(&self) -> u32 {
        self.graph.num_nodes()
    }

    /// Out-degree of this vertex (`getNumNbrs()` / Green-Marl `Degree()`).
    pub fn out_degree(&self) -> u32 {
        self.graph.out_degree(self.id)
    }

    /// Out-neighbors of this vertex with edge ids (for edge properties,
    /// which Pregel exposes only at the source vertex).
    pub fn out_neighbors(&self) -> OutNeighbors<'g> {
        self.graph.out_neighbors(self.id)
    }

    /// Sends `m` to every out-neighbor (GPS's `sendToNbrs`). One message is
    /// accounted per out-edge, parallel edges included.
    pub fn send_to_nbrs(&mut self, m: M) {
        // Clone per edge; route each copy to its destination's worker.
        let nbrs: OutNeighbors<'g> = self.graph.out_neighbors(self.id);
        for (t, _) in nbrs {
            self.send(t, m.clone());
        }
    }

    /// Sends `m` to an arbitrary vertex by id (GPS's `sendToVertex`).
    ///
    /// # Panics
    ///
    /// Panics if `dst` is out of range.
    pub fn send(&mut self, dst: NodeId, m: M) {
        assert!(
            dst.0 < self.graph.num_nodes(),
            "message destination {dst} out of range"
        );
        let w = self.range_starts.partition_point(|&s| s <= dst.0) - 1;
        self.outbox[w].push((dst.0, m));
    }

    /// Reads a master broadcast for this superstep.
    pub fn get_global(&self, key: &str) -> Option<GlobalValue> {
        self.broadcast.get(key)
    }

    /// Reads a master broadcast, panicking with the key name if missing.
    ///
    /// # Panics
    ///
    /// Panics if `key` was never broadcast.
    pub fn expect_global(&self, key: &str) -> GlobalValue {
        self.broadcast.expect(key)
    }

    /// Folds `value` into the named global with reduction `op`; the master
    /// observes the aggregate at the start of the next superstep.
    pub fn reduce_global(&mut self, key: &str, op: ReduceOp, value: GlobalValue) {
        self.agg.reduce(key, op, value);
    }

    /// Deactivates this vertex. It will be skipped in subsequent supersteps
    /// until a message arrives for it.
    pub fn vote_to_halt(&mut self) {
        *self.halted = true;
    }
}
