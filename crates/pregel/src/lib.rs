//! An in-process BSP vertex-centric runtime in the style of Pregel/GPS.
//!
//! This crate is the execution substrate the paper runs on. It reproduces
//! the programming model of GPS (Salihoglu & Widom), the open-source Pregel
//! implementation used in the paper:
//!
//! * computation proceeds in synchronized **supersteps** (the paper calls
//!   them timesteps);
//! * each superstep first runs a sequential [`VertexProgram::master_compute`]
//!   (GPS's `master.compute()` extension), then the vertex-parallel
//!   [`VertexProgram::vertex_compute`] on every active vertex;
//! * vertices communicate only by **messages**, delivered at the *next*
//!   superstep;
//! * a **global objects map** carries master → vertex broadcasts and
//!   vertex → master reductions ([`Globals`], [`AggMap`]);
//! * vertices may [`vote to halt`](VertexContext::vote_to_halt) and are
//!   reactivated by incoming messages.
//!
//! The runtime is multi-threaded — vertices are partitioned into contiguous,
//! edge-balanced ranges, each owned by a worker on a **persistent thread
//! pool** (threads live for the whole run and park between phases). Messages
//! cross workers through a **zero-copy exchange**: senders bucket messages
//! by destination worker, buckets are routed at the barrier as whole `Vec`s,
//! and destination workers *move* each message into double-buffered inboxes.
//! Execution stays **deterministic**: each vertex receives its messages
//! ordered by sending vertex id regardless of the worker count, and
//! aggregator merges happen in ascending worker order (see
//! [`AggMap::merge`]).
//!
//! Because the paper's headline metrics are *structural* — number of
//! timesteps and network I/O — the runtime meters every superstep,
//! including per-phase wall-clock (master / compute / combine / exchange):
//! see [`Metrics`].
//!
//! The runtime is **fault tolerant** at superstep granularity: with
//! [`CheckpointConfig`] attached, the coordinator snapshots the complete
//! BSP frontier (values, halted flags, pending inboxes, globals,
//! aggregates, master state, metrics) into checksummed files at a
//! configurable interval, [`run`] can resume a run exactly where the
//! newest valid snapshot left off, and [`run_with_recovery`] supervises
//! restarts after worker failures (injectable deterministically via
//! [`FaultPlan`]). Recovery activity is reported in [`RecoveryStats`].
//!
//! The runtime is **resource governed**: a [`ResourceBudget`] (set
//! programmatically or via the `GM_MAX_MSG_BYTES`, `GM_SUPERSTEP_DEADLINE_MS`,
//! `GM_MAX_RESIDENT_BYTES` and `GM_SPILL_DIR` environment variables) bounds
//! in-flight message bytes — sealed message buckets past the budget spill to
//! CRC-checked files and are replayed at delivery with bit-identical results
//! and structural metrics — plus superstep wall-clock (a cooperative deadline
//! watchdog) and resident value-store bytes. Worker failures of every kind
//! (kernel panics, spill I/O, deadline overruns) surface as typed
//! [`PregelError`] values with superstep/worker/vertex attribution instead of
//! aborting the process; deterministic failures that survive the whole
//! restart budget are reported as [`PregelError::Quarantined`]. Spill
//! activity is reported in [`SpillStats`].
//!
//! The runtime is **direction aware**: [`PregelConfig::schedule`] (or the
//! `GM_SCHEDULE` environment variable) selects push (the Pregel default),
//! pull, or auto. In a **gathered** (pull) superstep the exchange is
//! replaced by a gather phase — each vertex walks its in-edges via the
//! reverse CSR and folds the senders' messages in place, with no per-message
//! routing or allocation — producing bit-identical values and structural
//! metrics. A program opts in by implementing [`VertexProgram::pull_mode`]
//! (the Green-Marl compiler derives this from its pullability analysis).
//! `auto` applies the Ligra/GraphIt density heuristic per superstep: gather
//! when the active frontier's expected out-edges exceed
//! [`PregelConfig::dense_threshold`] (env `GM_DENSE_THRESHOLD`) of |E|.
//! Direction activity is reported in [`Metrics::pull_supersteps`],
//! [`Metrics::direction_switches`], and per-superstep in
//! [`SuperstepMetrics::pulled`].
//!
//! # Example
//!
//! ```
//! use gm_graph::gen;
//! use gm_pregel::{
//!     run, MasterContext, MasterDecision, PregelConfig, VertexContext, VertexProgram,
//! };
//!
//! /// Each vertex computes the number of in-neighbors (via messages).
//! struct CountIn;
//!
//! impl VertexProgram for CountIn {
//!     type VertexValue = u32;
//!     type Message = ();
//!
//!     fn message_bytes(&self, _m: &()) -> u64 {
//!         0
//!     }
//!
//!     fn master_compute(&mut self, ctx: &mut MasterContext<'_>) -> MasterDecision {
//!         if ctx.superstep() == 2 {
//!             MasterDecision::Halt
//!         } else {
//!             MasterDecision::Continue
//!         }
//!     }
//!
//!     fn vertex_compute(
//!         &self,
//!         ctx: &mut VertexContext<'_, '_, ()>,
//!         value: &mut u32,
//!         messages: &[()],
//!     ) {
//!         if ctx.superstep() == 0 {
//!             ctx.send_to_nbrs(());
//!         } else {
//!             *value = messages.len() as u32;
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), gm_pregel::PregelError> {
//! let g = gen::star(4); // hub 0 points at 1..=4
//! let result = run(&g, &mut CountIn, |_| 0u32, &PregelConfig::default())?;
//! assert_eq!(result.values[1], 1);
//! assert_eq!(result.metrics.total_messages, 4);
//! # Ok(())
//! # }
//! ```

mod checkpoint;
mod globals;
mod govern;
mod metrics;
mod persist;
mod postmortem;
mod program;
mod runtime;
mod value;

pub use checkpoint::{CheckpointConfig, RecoveryPolicy};
pub use globals::{AggMap, Globals};
pub use govern::{
    ResourceBudget, ENV_MAX_MSG_BYTES, ENV_MAX_RESIDENT_BYTES, ENV_SPILL_DIR,
    ENV_SUPERSTEP_DEADLINE_MS,
};
pub use metrics::{Metrics, RecoveryStats, SpillStats, SuperstepMetrics};
pub use postmortem::{
    PostMortemConfig, ENV_FLIGHT_RECORDER_EVENTS, ENV_POST_MORTEM_DIR, ENV_POST_MORTEM_KEEP,
};
pub use program::{MasterContext, MasterDecision, PullMode, VertexContext, VertexProgram};
pub use runtime::{
    run, run_with_recovery, PregelConfig, PregelError, PregelResult, Schedule, ENV_DENSE_THRESHOLD,
    ENV_SCHEDULE,
};
pub use value::{GlobalValue, ReduceOp};

// Checkpointing building blocks, re-exported so programs implementing
// [`VertexProgram::save_master_state`] or custom [`Persist`] encodings
// don't need a direct `gm-ckpt` dependency.
pub use gm_ckpt::{
    ByteReader, CheckpointStore, CkptError, FaultKind, FaultPlan, FaultPlanBuilder, Persist,
    Snapshot,
};
