//! Dynamic values carried through the global objects map.

use std::fmt;

/// A value stored in the global objects map (GPS's `Global.put`/`Global.get`
/// payloads). Sized to Green-Marl's scalar types.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GlobalValue {
    /// 64-bit integer (Green-Marl `Int`/`Long`).
    Int(i64),
    /// 64-bit float (Green-Marl `Float`/`Double`).
    Double(f64),
    /// Boolean.
    Bool(bool),
    /// A vertex id (Green-Marl `Node`).
    Node(u32),
}

impl GlobalValue {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not `Int`.
    pub fn as_int(&self) -> i64 {
        match self {
            GlobalValue::Int(v) => *v,
            other => panic!("expected Int global value, found {other:?}"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not `Double`.
    pub fn as_double(&self) -> f64 {
        match self {
            GlobalValue::Double(v) => *v,
            other => panic!("expected Double global value, found {other:?}"),
        }
    }

    /// The boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not `Bool`.
    pub fn as_bool(&self) -> bool {
        match self {
            GlobalValue::Bool(v) => *v,
            other => panic!("expected Bool global value, found {other:?}"),
        }
    }

    /// The vertex-id payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not `Node`.
    pub fn as_node(&self) -> u32 {
        match self {
            GlobalValue::Node(v) => *v,
            other => panic!("expected Node global value, found {other:?}"),
        }
    }
}

impl fmt::Display for GlobalValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalValue::Int(v) => write!(f, "{v}"),
            GlobalValue::Double(v) => write!(f, "{v}"),
            GlobalValue::Bool(v) => write!(f, "{v}"),
            GlobalValue::Node(v) => write!(f, "n{v}"),
        }
    }
}

impl From<i64> for GlobalValue {
    fn from(v: i64) -> Self {
        GlobalValue::Int(v)
    }
}

impl From<f64> for GlobalValue {
    fn from(v: f64) -> Self {
        GlobalValue::Double(v)
    }
}

impl From<bool> for GlobalValue {
    fn from(v: bool) -> Self {
        GlobalValue::Bool(v)
    }
}

/// Reduction operator attached to a vertex-side global write
/// (the paper's `IntSum`, `IntMin`, ... global objects).
///
/// All operators are commutative and associative so worker-merge order
/// cannot affect integer/boolean results.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `+` on `Int`/`Double`.
    Sum,
    /// Minimum on `Int`/`Double`/`Node`.
    Min,
    /// Maximum on `Int`/`Double`/`Node`.
    Max,
    /// Logical or on `Bool`.
    Or,
    /// Logical and on `Bool`.
    And,
}

impl ReduceOp {
    /// Combines `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if the operand types disagree or the operator does not apply
    /// to the operand type (e.g. `Or` on `Int`).
    pub fn combine(self, a: GlobalValue, b: GlobalValue) -> GlobalValue {
        use GlobalValue::*;
        match (self, a, b) {
            // Integer sums wrap, like the Java `int` arithmetic of the
            // generated GPS code (and like every other integer operation
            // in this workspace).
            (ReduceOp::Sum, Int(x), Int(y)) => Int(x.wrapping_add(y)),
            (ReduceOp::Sum, Double(x), Double(y)) => Double(x + y),
            (ReduceOp::Min, Int(x), Int(y)) => Int(x.min(y)),
            (ReduceOp::Min, Double(x), Double(y)) => Double(x.min(y)),
            (ReduceOp::Min, Node(x), Node(y)) => Node(x.min(y)),
            (ReduceOp::Max, Int(x), Int(y)) => Int(x.max(y)),
            (ReduceOp::Max, Double(x), Double(y)) => Double(x.max(y)),
            (ReduceOp::Max, Node(x), Node(y)) => Node(x.max(y)),
            (ReduceOp::Or, Bool(x), Bool(y)) => Bool(x || y),
            (ReduceOp::And, Bool(x), Bool(y)) => Bool(x && y),
            (op, a, b) => panic!("reduce op {op:?} not applicable to {a:?} / {b:?}"),
        }
    }
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
            ReduceOp::Or => "or",
            ReduceOp::And => "and",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_int_ops() {
        assert_eq!(
            ReduceOp::Sum.combine(GlobalValue::Int(2), GlobalValue::Int(3)),
            GlobalValue::Int(5)
        );
        assert_eq!(
            ReduceOp::Min.combine(GlobalValue::Int(2), GlobalValue::Int(3)),
            GlobalValue::Int(2)
        );
        assert_eq!(
            ReduceOp::Max.combine(GlobalValue::Int(2), GlobalValue::Int(3)),
            GlobalValue::Int(3)
        );
    }

    #[test]
    fn combine_double_and_bool_ops() {
        assert_eq!(
            ReduceOp::Sum.combine(GlobalValue::Double(0.5), GlobalValue::Double(1.5)),
            GlobalValue::Double(2.0)
        );
        assert_eq!(
            ReduceOp::Or.combine(GlobalValue::Bool(false), GlobalValue::Bool(true)),
            GlobalValue::Bool(true)
        );
        assert_eq!(
            ReduceOp::And.combine(GlobalValue::Bool(true), GlobalValue::Bool(false)),
            GlobalValue::Bool(false)
        );
    }

    #[test]
    fn combine_node_min_max() {
        assert_eq!(
            ReduceOp::Min.combine(GlobalValue::Node(7), GlobalValue::Node(3)),
            GlobalValue::Node(3)
        );
        assert_eq!(
            ReduceOp::Max.combine(GlobalValue::Node(7), GlobalValue::Node(3)),
            GlobalValue::Node(7)
        );
    }

    #[test]
    #[should_panic(expected = "not applicable")]
    fn combine_type_mismatch_panics() {
        ReduceOp::Sum.combine(GlobalValue::Int(1), GlobalValue::Bool(true));
    }

    #[test]
    fn accessors() {
        assert_eq!(GlobalValue::Int(4).as_int(), 4);
        assert_eq!(GlobalValue::Double(1.5).as_double(), 1.5);
        assert!(GlobalValue::Bool(true).as_bool());
        assert_eq!(GlobalValue::Node(2).as_node(), 2);
    }

    #[test]
    #[should_panic(expected = "expected Int")]
    fn wrong_accessor_panics() {
        GlobalValue::Bool(true).as_int();
    }

    #[test]
    fn display_forms() {
        assert_eq!(GlobalValue::Int(3).to_string(), "3");
        assert_eq!(GlobalValue::Node(3).to_string(), "n3");
        assert_eq!(ReduceOp::Sum.to_string(), "sum");
    }
}
