//! Versioned, checksummed snapshot container.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"GMCK"
//! 4       4     format version (currently 1)
//! 8       4     superstep the snapshot was taken at
//! 12      4     number of vertices
//! 16      4     section count S
//!         ---   S sections, each:
//!                 1       name length (bytes)
//!                 n       section name (ascii)
//!                 8       payload length P
//!                 P       payload bytes
//! end-4   4     CRC-32 (IEEE) over every preceding byte
//! ```
//!
//! The CRC covers the whole file, so any torn write, flipped byte, or
//! truncation is detected on read. Files are written to a `.tmp` sibling
//! and atomically renamed into place, so a crash mid-write never leaves
//! a file that passes validation.

use std::path::Path;

use crate::codec::ByteReader;
use crate::crc::crc32;
use crate::error::CkptError;

pub const MAGIC: &[u8; 4] = b"GMCK";
pub const FORMAT_VERSION: u32 = 1;

/// Accumulates named sections and encodes/writes the container.
#[derive(Debug)]
pub struct SnapshotBuilder {
    superstep: u32,
    num_nodes: u32,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    pub fn new(superstep: u32, num_nodes: u32) -> Self {
        SnapshotBuilder {
            superstep,
            num_nodes,
            sections: Vec::new(),
        }
    }

    pub fn section(mut self, name: &str, payload: Vec<u8>) -> Self {
        debug_assert!(name.len() <= u8::MAX as usize, "section name too long");
        self.sections.push((name.to_string(), payload));
        self
    }

    /// Serialize the container, including the trailing checksum.
    pub fn encode(&self) -> Vec<u8> {
        let payload_total: usize = self
            .sections
            .iter()
            .map(|(n, p)| 9 + n.len() + p.len())
            .sum();
        let mut out = Vec::with_capacity(20 + payload_total + 4);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.superstep.to_le_bytes());
        out.extend_from_slice(&self.num_nodes.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.push(name.len() as u8);
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Write the snapshot to `path` atomically (write `.tmp` sibling,
    /// fsync, rename). Returns the number of bytes written.
    pub fn write_atomic(&self, path: &Path) -> Result<u64, CkptError> {
        let bytes = self.encode();
        let tmp = path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            use std::io::Write as _;
            file.write_all(&bytes)?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(bytes.len() as u64)
    }
}

/// A decoded, checksum-validated snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    pub superstep: u32,
    pub num_nodes: u32,
    sections: Vec<(String, Vec<u8>)>,
}

impl Snapshot {
    /// Decode a container from raw bytes, validating magic, version,
    /// framing, and the trailing CRC-32.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, CkptError> {
        if bytes.len() < 24 {
            return Err(CkptError::Truncated);
        }
        if &bytes[..4] != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        let actual = crc32(body);
        if stored != actual {
            return Err(CkptError::ChecksumMismatch {
                expected: stored,
                actual,
            });
        }
        let mut r = ByteReader::new(&body[4..]);
        let version = r.read_u32()?;
        if version != FORMAT_VERSION {
            return Err(CkptError::UnsupportedVersion(version));
        }
        let superstep = r.read_u32()?;
        let num_nodes = r.read_u32()?;
        let section_count = r.read_u32()?;
        let mut sections = Vec::with_capacity(section_count.min(64) as usize);
        for _ in 0..section_count {
            let name_len = r.read_u8()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?)
                .map_err(|_| CkptError::Decode("non-utf8 section name".into()))?
                .to_string();
            let payload_len = r.read_len(1)?;
            let payload = r.take(payload_len)?.to_vec();
            sections.push((name, payload));
        }
        r.expect_end()?;
        Ok(Snapshot {
            superstep,
            num_nodes,
            sections,
        })
    }

    /// Read and validate a snapshot file.
    pub fn read(path: &Path) -> Result<Snapshot, CkptError> {
        let bytes = std::fs::read(path)?;
        Snapshot::decode(&bytes)
    }

    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }

    pub fn require(&self, name: &'static str) -> Result<&[u8], CkptError> {
        self.section(name).ok_or(CkptError::MissingSection(name))
    }

    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotBuilder {
        SnapshotBuilder::new(7, 100)
            .section("values", vec![1, 2, 3, 4])
            .section("halted", vec![0, 1])
            .section("empty", Vec::new())
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = Snapshot::decode(&sample().encode()).unwrap();
        assert_eq!(snap.superstep, 7);
        assert_eq!(snap.num_nodes, 100);
        assert_eq!(snap.section("values"), Some(&[1u8, 2, 3, 4][..]));
        assert_eq!(snap.section("halted"), Some(&[0u8, 1][..]));
        assert_eq!(snap.section("empty"), Some(&[][..]));
        assert_eq!(snap.section("missing"), None);
        assert!(matches!(
            snap.require("missing"),
            Err(CkptError::MissingSection("missing"))
        ));
        assert_eq!(
            snap.section_names().collect::<Vec<_>>(),
            vec!["values", "halted", "empty"]
        );
    }

    #[test]
    fn flipped_byte_rejected_anywhere() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(Snapshot::decode(&bad).is_err(), "flip at byte {i} accepted");
        }
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = sample().encode();
        for keep in 0..bytes.len() {
            assert!(
                Snapshot::decode(&bytes[..keep]).is_err(),
                "truncation to {keep} accepted"
            );
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert!(matches!(Snapshot::decode(&bytes), Err(CkptError::BadMagic)));

        // Rebuild with a bumped version and a fixed-up CRC: versioned
        // rejection must be distinguishable from corruption.
        let mut bytes = sample().encode();
        bytes[4] = 99;
        let body_len = bytes.len() - 4;
        let crc = crate::crc::crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Snapshot::decode(&bytes),
            Err(CkptError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn atomic_write_then_read() {
        let dir = std::env::temp_dir().join(format!("gm-ckpt-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.gmck");
        let written = sample().write_atomic(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        assert!(!path.with_extension("tmp").exists());
        let snap = Snapshot::read(&path).unwrap();
        assert_eq!(snap.superstep, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }
}
