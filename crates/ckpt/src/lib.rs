//! gm-ckpt: superstep-granular checkpointing primitives for the Pregel
//! runtime.
//!
//! The BSP model makes fault tolerance cheap: at every superstep barrier
//! the entire job state is a well-defined frontier (vertex values, halted
//! flags, undelivered inboxes, aggregator state, and the superstep
//! counter). This crate provides the pieces the runtime composes into
//! checkpoint/restore:
//!
//! - [`Persist`]/[`ByteReader`] — a deterministic, zero-dependency binary
//!   codec (little-endian, length-prefixed, `f64` via `to_bits`).
//! - [`SnapshotBuilder`]/[`Snapshot`] — a versioned container of named
//!   sections with a trailing CRC-32 over the whole file, written with
//!   an atomic temp-file-then-rename protocol.
//! - [`CheckpointStore`] — a directory of snapshots, one per superstep,
//!   with newest-valid recovery that discards corrupt files by checksum.
//! - [`FaultPlan`] — deterministic fault injection (panic at superstep k
//!   on worker w, failed or corrupted checkpoint writes) used by the
//!   recovery test matrix.
//!
//! The crate is intentionally independent of the runtime: it knows about
//! bytes, files, and checksums, not about graphs or vertex programs.

mod codec;
mod crc;
mod error;
mod fault;
mod snapshot;
mod store;

pub use codec::{ByteReader, Persist};
pub use crc::{crc32, Crc32};
pub use error::CkptError;
pub use fault::{FaultKind, FaultPlan, FaultPlanBuilder};
pub use snapshot::{Snapshot, SnapshotBuilder, FORMAT_VERSION, MAGIC};
pub use store::{CheckpointStore, RecoveredSnapshot};
