//! Error type shared by the snapshot codec, container format, and store.

use std::fmt;

/// Everything that can go wrong while writing, reading, or decoding a
/// checkpoint snapshot.
#[derive(Debug)]
pub enum CkptError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the `GMCK` magic bytes.
    BadMagic,
    /// The container version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The trailing CRC-32 does not match the stored bytes.
    ChecksumMismatch { expected: u32, actual: u32 },
    /// The file ended before the declared payload did (torn write).
    Truncated,
    /// A section payload was structurally malformed.
    Decode(String),
    /// A section the decoder requires is absent from the snapshot.
    MissingSection(&'static str),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CkptError::BadMagic => write!(f, "not a gm-ckpt snapshot (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            CkptError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch (expected {expected:#010x}, actual {actual:#010x})"
            ),
            CkptError::Truncated => write!(f, "snapshot truncated"),
            CkptError::Decode(msg) => write!(f, "snapshot decode error: {msg}"),
            CkptError::MissingSection(name) => {
                write!(f, "snapshot is missing required section {name:?}")
            }
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_human_readable() {
        let e = CkptError::ChecksumMismatch {
            expected: 0xdead_beef,
            actual: 0x1,
        };
        let s = e.to_string();
        assert!(s.contains("0xdeadbeef"), "{s}");
        assert!(CkptError::BadMagic.to_string().contains("magic"));
        assert!(CkptError::MissingSection("values")
            .to_string()
            .contains("values"));
    }

    #[test]
    fn io_errors_chain_through_source() {
        let e = CkptError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(CkptError::Truncated.source().is_none());
    }
}
