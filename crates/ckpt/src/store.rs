//! Directory of snapshot files, one per checkpointed superstep.
//!
//! Files are named `snapshot-NNNNNNNN.gmck` (zero-padded superstep), so
//! lexicographic order equals superstep order. Recovery scans newest to
//! oldest, discarding anything that fails checksum validation, and
//! restores the most recent valid snapshot.

use std::path::{Path, PathBuf};

use crate::error::CkptError;
use crate::snapshot::{Snapshot, SnapshotBuilder};

const EXTENSION: &str = "gmck";

/// Outcome of a [`CheckpointStore::latest_valid`] scan.
#[derive(Debug)]
pub struct RecoveredSnapshot {
    pub snapshot: Snapshot,
    pub path: PathBuf,
    /// Snapshots newer than the restored one that failed validation and
    /// were skipped (torn writes, flipped bytes, bad framing).
    pub discarded: u32,
}

#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Open (creating if necessary) a checkpoint directory.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn path_for(&self, superstep: u32) -> PathBuf {
        self.dir
            .join(format!("snapshot-{superstep:08}.{EXTENSION}"))
    }

    /// Atomically write a snapshot for its superstep. Returns the final
    /// path and the byte count.
    pub fn write(
        &self,
        builder: &SnapshotBuilder,
        superstep: u32,
    ) -> Result<(PathBuf, u64), CkptError> {
        let path = self.path_for(superstep);
        let bytes = builder.write_atomic(&path)?;
        Ok((path, bytes))
    }

    /// All snapshot files present, as `(superstep, path)` sorted by
    /// ascending superstep. Files that don't match the naming scheme are
    /// ignored.
    pub fn list(&self) -> Result<Vec<(u32, PathBuf)>, CkptError> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let path = entry?.path();
            if let Some(step) = parse_superstep(&path) {
                out.push((step, path));
            }
        }
        out.sort_by_key(|(step, _)| *step);
        Ok(out)
    }

    /// Scan newest→oldest and return the most recent snapshot that
    /// passes validation, counting how many newer ones were discarded.
    /// Returns `Ok(None)` when no valid snapshot exists at all.
    pub fn latest_valid(&self) -> Result<Option<RecoveredSnapshot>, CkptError> {
        let mut discarded = 0u32;
        for (_, path) in self.list()?.into_iter().rev() {
            match Snapshot::read(&path) {
                Ok(snapshot) => {
                    return Ok(Some(RecoveredSnapshot {
                        snapshot,
                        path,
                        discarded,
                    }));
                }
                Err(_) => discarded += 1,
            }
        }
        Ok(None)
    }

    /// Delete all but the newest `keep` snapshots. `keep == 0` keeps
    /// everything.
    pub fn prune(&self, keep: usize) -> Result<(), CkptError> {
        if keep == 0 {
            return Ok(());
        }
        let files = self.list()?;
        if files.len() > keep {
            for (_, path) in &files[..files.len() - keep] {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

fn parse_superstep(path: &Path) -> Option<u32> {
    if path.extension()?.to_str()? != EXTENSION {
        return None;
    }
    let stem = path.file_stem()?.to_str()?;
    stem.strip_prefix("snapshot-")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn fresh_dir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        std::env::temp_dir().join(format!(
            "gm-ckpt-store-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn snap(superstep: u32) -> SnapshotBuilder {
        SnapshotBuilder::new(superstep, 4).section("values", vec![superstep as u8; 8])
    }

    #[test]
    fn write_list_latest() {
        let dir = fresh_dir("basic");
        let store = CheckpointStore::create(&dir).unwrap();
        for step in [2u32, 4, 6] {
            store.write(&snap(step), step).unwrap();
        }
        let listed: Vec<u32> = store.list().unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(listed, vec![2, 4, 6]);
        let rec = store.latest_valid().unwrap().unwrap();
        assert_eq!(rec.snapshot.superstep, 6);
        assert_eq!(rec.discarded, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = fresh_dir("corrupt");
        let store = CheckpointStore::create(&dir).unwrap();
        for step in [1u32, 2, 3] {
            store.write(&snap(step), step).unwrap();
        }
        // Flip one byte in the newest snapshot.
        let newest = store.path_for(3);
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, bytes).unwrap();

        let rec = store.latest_valid().unwrap().unwrap();
        assert_eq!(rec.snapshot.superstep, 2);
        assert_eq!(rec.discarded, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_corrupt_yields_none() {
        let dir = fresh_dir("allbad");
        let store = CheckpointStore::create(&dir).unwrap();
        store.write(&snap(1), 1).unwrap();
        std::fs::write(store.path_for(1), b"garbage").unwrap();
        assert!(store.latest_valid().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_or_missing_dir_is_ok() {
        let dir = fresh_dir("missing");
        let store = CheckpointStore { dir: dir.clone() };
        assert!(store.list().unwrap().is_empty());
        assert!(store.latest_valid().unwrap().is_none());
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = fresh_dir("prune");
        let store = CheckpointStore::create(&dir).unwrap();
        for step in 1..=5u32 {
            store.write(&snap(step), step).unwrap();
        }
        store.prune(2).unwrap();
        let listed: Vec<u32> = store.list().unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(listed, vec![4, 5]);
        store.prune(0).unwrap();
        assert_eq!(store.list().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unrelated_files_ignored() {
        let dir = fresh_dir("noise");
        let store = CheckpointStore::create(&dir).unwrap();
        std::fs::write(dir.join("notes.txt"), b"hi").unwrap();
        std::fs::write(dir.join("snapshot-xx.gmck"), b"hi").unwrap();
        store.write(&snap(9), 9).unwrap();
        let listed: Vec<u32> = store.list().unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(listed, vec![9]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
