//! Minimal binary codec: the [`Persist`] trait plus a bounds-checked
//! [`ByteReader`].
//!
//! Encoding rules are fixed so snapshots are byte-reproducible across
//! runs and machines: integers are little-endian, `f64` is encoded via
//! `to_bits` (bit-exact, NaN-preserving), lengths are `u64`, and every
//! composite type writes its fields in declaration order. There is no
//! padding and no alignment; the format is a plain byte stream.

use crate::error::CkptError;

/// Cursor over a byte slice with bounds-checked primitive reads.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Consume exactly `n` bytes, failing with `Truncated` if the buffer
    /// is too short.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Assert the reader consumed its entire input; decoders call this
    /// to reject snapshots with trailing garbage.
    pub fn expect_end(&self) -> Result<(), CkptError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CkptError::Decode(format!(
                "{} trailing bytes after payload",
                self.remaining()
            )))
        }
    }

    pub fn read_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    pub fn read_u32(&mut self) -> Result<u32, CkptError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn read_u64(&mut self) -> Result<u64, CkptError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a `u64` length prefix and check it against the remaining
    /// bytes (`min_elem_size` per element) so corrupt lengths fail fast
    /// instead of attempting enormous allocations.
    pub fn read_len(&mut self, min_elem_size: usize) -> Result<usize, CkptError> {
        let len = self.read_u64()?;
        let len: usize = len
            .try_into()
            .map_err(|_| CkptError::Decode(format!("length {len} overflows usize")))?;
        if min_elem_size > 0 && self.remaining() / min_elem_size < len {
            return Err(CkptError::Truncated);
        }
        Ok(len)
    }
}

/// Types that can round-trip through the snapshot byte stream.
pub trait Persist: Sized {
    fn persist(&self, out: &mut Vec<u8>);
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.persist(&mut out);
        out
    }

    /// Decode from a buffer, requiring that every byte is consumed.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = ByteReader::new(bytes);
        let v = Self::restore(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

impl Persist for () {
    fn persist(&self, _out: &mut Vec<u8>) {}
    fn restore(_r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(())
    }
}

impl Persist for u8 {
    fn persist(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        r.read_u8()
    }
}

impl Persist for bool {
    fn persist(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        match r.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::Decode(format!("invalid bool byte {b:#04x}"))),
        }
    }
}

impl Persist for u32 {
    fn persist(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        r.read_u32()
    }
}

impl Persist for u64 {
    fn persist(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        r.read_u64()
    }
}

impl Persist for i64 {
    fn persist(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        r.read_u64().map(|v| v as i64)
    }
}

impl Persist for usize {
    fn persist(&self, out: &mut Vec<u8>) {
        (*self as u64).persist(out);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let v = r.read_u64()?;
        v.try_into()
            .map_err(|_| CkptError::Decode(format!("usize value {v} overflows platform")))
    }
}

impl Persist for f64 {
    fn persist(&self, out: &mut Vec<u8>) {
        self.to_bits().persist(out);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok(f64::from_bits(r.read_u64()?))
    }
}

impl Persist for std::time::Duration {
    fn persist(&self, out: &mut Vec<u8>) {
        self.as_secs().persist(out);
        self.subsec_nanos().persist(out);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let secs = u64::restore(r)?;
        let nanos = u32::restore(r)?;
        if nanos >= 1_000_000_000 {
            return Err(CkptError::Decode(format!(
                "invalid subsecond nanos {nanos}"
            )));
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Persist for String {
    fn persist(&self, out: &mut Vec<u8>) {
        (self.len() as u64).persist(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        let len = r.read_len(1)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CkptError::Decode(format!("invalid utf-8 string: {e}")))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn persist(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.persist(out);
            }
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        match r.read_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(r)?)),
            b => Err(CkptError::Decode(format!("invalid Option tag {b:#04x}"))),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn persist(&self, out: &mut Vec<u8>) {
        (self.len() as u64).persist(out);
        for item in self {
            item.persist(out);
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        // Every non-zero-sized element encodes at least one byte, so a
        // declared length larger than the remaining byte count is corrupt;
        // checking up front avoids huge speculative allocations. Zero-sized
        // elements (`()`) encode nothing, so the guard does not apply.
        let min_elem = usize::from(std::mem::size_of::<T>() != 0);
        let len = r.read_len(min_elem)?;
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn persist(&self, out: &mut Vec<u8>) {
        self.0.persist(out);
        self.1.persist(out);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn persist(&self, out: &mut Vec<u8>) {
        self.0.persist(out);
        self.1.persist(out);
        self.2.persist(out);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CkptError> {
        Ok((A::restore(r)?, B::restore(r)?, C::restore(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), v);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(true);
        round_trip(false);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(-12345i64);
        round_trip(i64::MIN);
        round_trip(usize::MAX);
        round_trip(std::f64::consts::PI);
        round_trip(-0.0f64);
        round_trip(Duration::new(12, 345_678_901));
        round_trip(String::from("héllo wörld"));
        round_trip(String::new());
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7FF8_0000_DEAD_BEEF);
        let back = f64::from_bytes(&weird.to_bytes()).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn composites_round_trip() {
        round_trip(Some(42u64));
        round_trip(Option::<u64>::None);
        round_trip(vec![1i64, -2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip(vec![(); 7]);
        round_trip((1u32, -5i64));
        round_trip((true, 2.5f64, String::from("x")));
        round_trip(vec![vec![1u8], vec![], vec![2, 3]]);
    }

    #[test]
    fn invalid_bool_and_tag_rejected() {
        assert!(matches!(bool::from_bytes(&[2]), Err(CkptError::Decode(_))));
        assert!(matches!(
            Option::<u8>::from_bytes(&[9]),
            Err(CkptError::Decode(_))
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = 7u64.to_bytes();
        assert!(matches!(
            u64::from_bytes(&bytes[..5]),
            Err(CkptError::Truncated)
        ));
        // A Vec claiming 1M elements with a 2-byte body must not allocate.
        let mut evil = (1_000_000u64).to_bytes();
        evil.extend_from_slice(&[0, 0]);
        assert!(matches!(
            Vec::<u64>::from_bytes(&evil),
            Err(CkptError::Truncated)
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 1u32.to_bytes();
        bytes.push(0);
        assert!(matches!(u32::from_bytes(&bytes), Err(CkptError::Decode(_))));
    }

    #[test]
    fn encoding_is_deterministic() {
        let a = (vec![1.5f64, 2.5], String::from("k"), Some(9u64));
        assert_eq!(a.to_bytes(), a.to_bytes());
    }
}
