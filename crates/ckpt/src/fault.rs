//! Deterministic fault injection for recovery testing.
//!
//! A [`FaultPlan`] is built once, cloned into the runtime config, and
//! consulted at well-defined points: before a worker's compute phase,
//! before a checkpoint write, and after a checkpoint write (to corrupt
//! the file on disk). Each fault trips a bounded number of times (once,
//! by default) across *all* clones — the trip counters live behind an
//! `Arc` — so a supervisor that restarts the job does not re-hit the
//! same fault forever.

use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::error::CkptError;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the compute phase of superstep `superstep`, on
    /// worker `worker` (or any worker when `None`).
    PanicInCompute { superstep: u32, worker: Option<u32> },
    /// Simulate an I/O failure of the checkpoint write at `superstep`.
    FailCheckpointWrite { superstep: u32 },
    /// After the checkpoint at `superstep` is written, flip one byte in
    /// the middle of the file (checksum must then reject it).
    CorruptSnapshot { superstep: u32 },
    /// After the checkpoint at `superstep` is written, truncate the file
    /// to half its length (simulated torn write).
    TruncateSnapshot { superstep: u32 },
    /// Spin inside the compute phase of `superstep` on worker `worker`
    /// (or any worker when `None`) until a superstep deadline cancels the
    /// phase — a simulated wedged vertex kernel.
    HangInCompute { superstep: u32, worker: Option<u32> },
    /// Simulate an I/O failure of a message-spill write at `superstep`.
    FailSpillWrite { superstep: u32 },
    /// Simulate memory exhaustion at the barrier of `superstep`: the
    /// runtime reports its resident-budget check as failed even when the
    /// real usage is under budget.
    OomAtBarrier { superstep: u32 },
    /// Simulate an I/O failure of the `record`-th append (0-based, counted
    /// by the caller) to a write-ahead journal — exercised by `gmd`'s job
    /// journal, which consults the plan before each fsync'd append.
    FailJournalAppend { record: u32 },
}

#[derive(Debug)]
struct Fault {
    kind: FaultKind,
    remaining: AtomicU32,
}

/// Immutable set of scheduled faults; cheap to clone, counters shared.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Arc<[Fault]>,
}

impl Default for FaultPlanBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
pub struct FaultPlanBuilder {
    faults: Vec<Fault>,
}

impl FaultPlanBuilder {
    pub fn new() -> Self {
        FaultPlanBuilder { faults: Vec::new() }
    }

    fn push(mut self, kind: FaultKind) -> Self {
        self.faults.push(Fault {
            kind,
            remaining: AtomicU32::new(1),
        });
        self
    }

    /// Panic in the compute phase of `superstep`; `worker` restricts the
    /// fault to one worker index, `None` fires on whichever worker asks
    /// first.
    pub fn panic_in_compute(self, superstep: u32, worker: Option<u32>) -> Self {
        self.push(FaultKind::PanicInCompute { superstep, worker })
    }

    pub fn fail_checkpoint_write(self, superstep: u32) -> Self {
        self.push(FaultKind::FailCheckpointWrite { superstep })
    }

    pub fn corrupt_snapshot(self, superstep: u32) -> Self {
        self.push(FaultKind::CorruptSnapshot { superstep })
    }

    pub fn truncate_snapshot(self, superstep: u32) -> Self {
        self.push(FaultKind::TruncateSnapshot { superstep })
    }

    /// Spin in the compute phase of `superstep` until the superstep
    /// deadline cancels the phase; `worker` as in [`panic_in_compute`].
    ///
    /// [`panic_in_compute`]: FaultPlanBuilder::panic_in_compute
    pub fn hang_in_compute(self, superstep: u32, worker: Option<u32>) -> Self {
        self.push(FaultKind::HangInCompute { superstep, worker })
    }

    pub fn fail_spill_write(self, superstep: u32) -> Self {
        self.push(FaultKind::FailSpillWrite { superstep })
    }

    pub fn oom_at_barrier(self, superstep: u32) -> Self {
        self.push(FaultKind::OomAtBarrier { superstep })
    }

    pub fn fail_journal_append(self, record: u32) -> Self {
        self.push(FaultKind::FailJournalAppend { record })
    }

    /// Rearms the most recently pushed fault to trip `n` times instead of
    /// once (`u32::MAX` ≈ every time). A deterministic poison — a fault
    /// that re-fires on every restart attempt — is `.times(u32::MAX)`.
    pub fn times(mut self, n: u32) -> Self {
        if let Some(fault) = self.faults.last_mut() {
            fault.remaining = AtomicU32::new(n);
        }
        self
    }

    pub fn build(self) -> FaultPlan {
        FaultPlan {
            faults: self.faults.into(),
        }
    }
}

impl FaultPlan {
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder::new()
    }

    /// A plan with no faults — the production default.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Try to atomically consume one trip of the first armed fault
    /// matching `pred`.
    fn trip(&self, pred: impl Fn(&FaultKind) -> bool) -> bool {
        for fault in self.faults.iter() {
            if !pred(&fault.kind) {
                continue;
            }
            // Decrement only if still armed; CAS loop keeps concurrent
            // workers from double-consuming the last trip.
            let mut cur = fault.remaining.load(Ordering::Relaxed);
            while cur > 0 {
                match fault.remaining.compare_exchange_weak(
                    cur,
                    cur - 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return true,
                    Err(now) => cur = now,
                }
            }
        }
        false
    }

    /// Should worker `worker` panic in the compute phase of `superstep`?
    pub fn trip_panic_in_compute(&self, superstep: u32, worker: u32) -> bool {
        self.trip(|k| {
            matches!(k, FaultKind::PanicInCompute { superstep: s, worker: w }
                if *s == superstep && w.is_none_or(|w| w == worker))
        })
    }

    /// Should the checkpoint write at `superstep` fail?
    pub fn trip_fail_checkpoint_write(&self, superstep: u32) -> bool {
        self.trip(
            |k| matches!(k, FaultKind::FailCheckpointWrite { superstep: s } if *s == superstep),
        )
    }

    /// Should worker `worker` wedge in the compute phase of `superstep`?
    pub fn trip_hang_in_compute(&self, superstep: u32, worker: u32) -> bool {
        self.trip(|k| {
            matches!(k, FaultKind::HangInCompute { superstep: s, worker: w }
                if *s == superstep && w.is_none_or(|w| w == worker))
        })
    }

    /// Should a message-spill write at `superstep` fail?
    pub fn trip_fail_spill_write(&self, superstep: u32) -> bool {
        self.trip(|k| matches!(k, FaultKind::FailSpillWrite { superstep: s } if *s == superstep))
    }

    /// Should the barrier of `superstep` report memory exhaustion?
    pub fn trip_oom_at_barrier(&self, superstep: u32) -> bool {
        self.trip(|k| matches!(k, FaultKind::OomAtBarrier { superstep: s } if *s == superstep))
    }

    /// Should the `record`-th journal append fail?
    pub fn trip_fail_journal_append(&self, record: u32) -> bool {
        self.trip(|k| matches!(k, FaultKind::FailJournalAppend { record: r } if *r == record))
    }

    /// Apply any post-write corruption scheduled for `superstep` to the
    /// snapshot file at `path`. Returns what was done, if anything.
    pub fn corrupt_after_write(
        &self,
        superstep: u32,
        path: &Path,
    ) -> Result<Option<&'static str>, CkptError> {
        if self
            .trip(|k| matches!(k, FaultKind::CorruptSnapshot { superstep: s } if *s == superstep))
        {
            let mut bytes = std::fs::read(path)?;
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(path, bytes)?;
            return Ok(Some("flipped byte"));
        }
        if self
            .trip(|k| matches!(k, FaultKind::TruncateSnapshot { superstep: s } if *s == superstep))
        {
            let bytes = std::fs::read(path)?;
            std::fs::write(path, &bytes[..bytes.len() / 2])?;
            return Ok(Some("truncated"));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_trips() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.trip_panic_in_compute(0, 0));
        assert!(!plan.trip_fail_checkpoint_write(3));
    }

    #[test]
    fn panic_fault_trips_exactly_once() {
        let plan = FaultPlan::builder().panic_in_compute(3, None).build();
        assert!(
            !plan.trip_panic_in_compute(2, 0),
            "wrong superstep must not trip"
        );
        assert!(plan.trip_panic_in_compute(3, 1));
        assert!(!plan.trip_panic_in_compute(3, 1), "fault must be consumed");
    }

    #[test]
    fn worker_targeted_fault_ignores_other_workers() {
        let plan = FaultPlan::builder().panic_in_compute(2, Some(1)).build();
        assert!(!plan.trip_panic_in_compute(2, 0));
        assert!(plan.trip_panic_in_compute(2, 1));
    }

    #[test]
    fn trips_shared_across_clones() {
        let plan = FaultPlan::builder().panic_in_compute(1, None).build();
        let clone = plan.clone();
        assert!(plan.trip_panic_in_compute(1, 0));
        assert!(
            !clone.trip_panic_in_compute(1, 0),
            "clone must see consumed fault"
        );
    }

    #[test]
    fn independent_faults_trip_independently() {
        let plan = FaultPlan::builder()
            .panic_in_compute(1, None)
            .panic_in_compute(4, None)
            .fail_checkpoint_write(2)
            .build();
        assert!(plan.trip_fail_checkpoint_write(2));
        assert!(plan.trip_panic_in_compute(4, 0));
        assert!(plan.trip_panic_in_compute(1, 0));
    }

    #[test]
    fn times_rearms_the_last_fault() {
        let plan = FaultPlan::builder()
            .fail_spill_write(2)
            .hang_in_compute(3, Some(1))
            .times(3)
            .build();
        // `times` applied to the hang, not the spill fault.
        assert!(plan.trip_fail_spill_write(2));
        assert!(!plan.trip_fail_spill_write(2));
        for _ in 0..3 {
            assert!(plan.trip_hang_in_compute(3, 1));
        }
        assert!(!plan.trip_hang_in_compute(3, 1));
        assert!(!plan.trip_hang_in_compute(3, 0), "worker-targeted");
    }

    #[test]
    fn oom_and_hang_trips_match_superstep() {
        let plan = FaultPlan::builder()
            .oom_at_barrier(4)
            .hang_in_compute(2, None)
            .build();
        assert!(!plan.trip_oom_at_barrier(3));
        assert!(plan.trip_oom_at_barrier(4));
        assert!(plan.trip_hang_in_compute(2, 7));
    }

    #[test]
    fn journal_append_fault_matches_record_index() {
        let plan = FaultPlan::builder().fail_journal_append(2).build();
        assert!(!plan.trip_fail_journal_append(1));
        assert!(plan.trip_fail_journal_append(2));
        assert!(!plan.trip_fail_journal_append(2), "fault must be consumed");
    }

    #[test]
    fn corrupt_after_write_flips_and_truncates() {
        let dir = std::env::temp_dir().join(format!("gm-ckpt-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("victim.gmck");
        let original = vec![7u8; 64];

        std::fs::write(&path, &original).unwrap();
        let plan = FaultPlan::builder().corrupt_snapshot(5).build();
        assert_eq!(plan.corrupt_after_write(4, &path).unwrap(), None);
        assert_eq!(
            plan.corrupt_after_write(5, &path).unwrap(),
            Some("flipped byte")
        );
        let mutated = std::fs::read(&path).unwrap();
        assert_eq!(mutated.len(), original.len());
        assert_ne!(mutated, original);

        std::fs::write(&path, &original).unwrap();
        let plan = FaultPlan::builder().truncate_snapshot(5).build();
        assert_eq!(
            plan.corrupt_after_write(5, &path).unwrap(),
            Some("truncated")
        );
        assert_eq!(std::fs::read(&path).unwrap().len(), original.len() / 2);

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
