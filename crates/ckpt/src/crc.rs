//! CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the same
//! parameterization as zlib's `crc32`, implemented with a compile-time
//! lookup table so the crate stays dependency-free.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Streaming CRC-32 state. `Crc32::new().update(a).update(b).finish()`
/// equals `crc32(a ++ b)`.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    pub fn update(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
        self
    }

    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot convenience over [`Crc32`].
pub fn crc32(bytes: &[u8]) -> u32 {
    Crc32::new().update(bytes).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32/IEEE check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let whole = crc32(b"hello world");
        let split = Crc32::new().update(b"hello").update(b" world").finish();
        assert_eq!(whole, split);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = b"superstep frontier".to_vec();
        let before = crc32(&data);
        data[7] ^= 0x20;
        assert_ne!(before, crc32(&data));
    }
}
